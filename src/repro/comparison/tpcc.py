"""TPC-C comparison workload (tpcc-uva v1.2, per §4.3).

Classic OLTP: short transactions over B-tree-resident tables with the
highest branch ratio of any compared workload (the paper quotes 30%)
and service-class front-end behaviour.
"""

from __future__ import annotations

from repro.comparison import kernels
from repro.comparison.base import NativeBenchmark
from repro.uarch.isa import IntBreakdown
from repro.uarch.profile import BranchProfile, DataFootprint

TPCC = [
    NativeBenchmark(
        name="TPC-C",
        kernel=kernels.transaction_mix,
        code_kb=26.0,
        library_kb=1024.0,
        library_weight=0.155,
        library_warm_kb=160.0,
        library_warm_share=0.80,
        ilp=1.25,
        branches=BranchProfile(
            loop_fraction=0.20,
            pattern_fraction=0.12,
            data_dependent_fraction=0.68,
            taken_prob=0.10,
            loop_trip=8,
            indirect_fraction=0.03,
            indirect_targets=5,
            static_sites=4096,
        ),
        data=DataFootprint(
            stream_bytes=4 * 1024 * 1024,
            state_bytes=6 * 1024 * 1024,  # tables + indexes
            state_fraction=0.035,
            hot_bytes=20 * 1024,
            hot_fraction=0.925,
            stream_reuse=2.0,
            state_zipf=0.65,
        ),
        int_breakdown=IntBreakdown(int_addr=0.62, fp_addr=0.03, other=0.35),
        threads=6,
    ),
]
