"""PARSEC 3.0 comparison suite (native inputs, all 12 benchmarks).

Multi-threaded CMP workloads: small hot loops, an instruction footprint
around 128 KB (the Figure 6 comparison point), shared working sets.
"""

from __future__ import annotations

from repro.comparison import kernels
from repro.comparison.base import NativeBenchmark
from repro.comparison.spec import shaped
from repro.uarch.isa import IntBreakdown
from repro.uarch.profile import BranchProfile, DataFootprint

_PARSEC_BREAKDOWN = IntBreakdown(int_addr=0.48, fp_addr=0.22, other=0.30)


def _branches(data_dep: float = 0.20, taken: float = 0.10) -> BranchProfile:
    loop = 0.85 - data_dep
    return BranchProfile(
        loop_fraction=loop,
        pattern_fraction=0.15,
        data_dependent_fraction=data_dep,
        taken_prob=taken,
        loop_trip=64,
        indirect_fraction=0.006,
        indirect_targets=2,
        static_sites=256,
    )


def _data(stream_mb: float, state_mb: float, state_fraction: float,
          zipf: float = 0.55, hot_fraction: float = 0.96) -> DataFootprint:
    hot_fraction = min(hot_fraction, 1.0 - state_fraction)
    return DataFootprint(
        stream_bytes=int(stream_mb * 1024 * 1024),
        state_bytes=int(state_mb * 1024 * 1024),
        state_fraction=state_fraction,
        hot_bytes=24 * 1024,
        hot_fraction=hot_fraction,
        stream_reuse=4.0,
        state_zipf=zipf,
    )


_BALLAST = {"fp_op": 0.14, "mem_op": 0.25, "branch_op": 0.055, "int_op": 0.02}


def _bench(name, kernel, *, ilp, data_dep=0.2, taken=0.1,
           data_args=(8, 2, 0.03), code_kb=20.0, library_kb=108.0):
    """PARSEC members share the ~128 KB total footprint of §5.4."""
    return NativeBenchmark(
        name=name,
        kernel=shaped(kernel, **_BALLAST),
        code_kb=code_kb,
        library_kb=library_kb,
        library_weight=0.018,
        ilp=ilp,
        branches=_branches(data_dep, taken),
        data=_data(*data_args),
        int_breakdown=_PARSEC_BREAKDOWN,
        threads=6,
    )


PARSEC = [
    _bench("blackscholes", kernels.monte_carlo, ilp=2.3, data_dep=0.08,
           data_args=(6, 0.5, 0.015)),
    _bench("bodytrack", kernels.nbody, ilp=1.9, data_dep=0.18,
           data_args=(6, 2, 0.012)),
    _bench("canneal", kernels.grid_sssp, ilp=1.2, data_dep=0.30, taken=0.2,
           data_args=(2, 6, 0.015, 0.55, 0.97)),
    _bench("dedup", kernels.rle_compress, ilp=1.7, data_dep=0.22,
           data_args=(16, 2, 0.012)),
    _bench("facesim", kernels.stencil2d, ilp=1.9, data_dep=0.10,
           data_args=(16, 3, 0.012)),
    _bench("ferret", kernels.hash_churn, ilp=1.6, data_dep=0.25,
           data_args=(8, 3, 0.010, 0.6)),
    _bench("fluidanimate", kernels.stencil2d, ilp=1.8, data_dep=0.12,
           data_args=(12, 3, 0.012)),
    _bench("freqmine", kernels.hash_churn, ilp=1.5, data_dep=0.24,
           data_args=(8, 3, 0.010, 0.6)),
    _bench("raytrace", kernels.nbody, ilp=1.8, data_dep=0.20,
           data_args=(8, 3, 0.012)),
    _bench("streamcluster", kernels.dgemm, ilp=2.0, data_dep=0.10,
           data_args=(20, 2, 0.02)),
    _bench("swaptions", kernels.monte_carlo, ilp=2.2, data_dep=0.08,
           data_args=(4, 0.5, 0.015)),
    _bench("x264", kernels.dp_align, ilp=1.9, data_dep=0.20,
           data_args=(16, 2, 0.012)),
]
