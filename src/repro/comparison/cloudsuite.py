"""CloudSuite 1.0 comparison suite (all six benchmarks, per §4.3).

Scale-out service workloads: deep managed-runtime stacks, stochastic
request streams, the largest instruction footprints of the comparison
set — the paper measures an average L1I MPKI of 32, higher than the
BigDataBench subset's 15, and low IPC (~0.9).
"""

from __future__ import annotations

from repro.comparison import kernels
from repro.comparison.base import NativeBenchmark
from repro.stacks.base import Meter
from repro.uarch.isa import IntBreakdown
from repro.uarch.profile import BranchProfile, DataFootprint

_CLOUD_BREAKDOWN = IntBreakdown(int_addr=0.66, fp_addr=0.05, other=0.29)


def _service_branches(sites: int = 6144) -> BranchProfile:
    return BranchProfile(
        loop_fraction=0.25,
        pattern_fraction=0.12,
        data_dependent_fraction=0.63,
        taken_prob=0.08,
        loop_trip=12,
        indirect_fraction=0.055,
        indirect_targets=6,
        static_sites=sites,
    )


def _service_data(state_mb: float, zipf: float = 0.7) -> DataFootprint:
    return DataFootprint(
        stream_bytes=8 * 1024 * 1024,
        state_bytes=int(state_mb * 1024 * 1024),
        state_fraction=0.030,
        hot_bytes=20 * 1024,
        hot_fraction=0.935,
        stream_reuse=2.0,
        state_zipf=zipf,
    )


def _request_kernel(meter: Meter, scale: float):
    """Request parsing + lookup + response formatting mix."""
    kernels.fsm_parse(meter, scale * 0.6)
    kernels.hash_churn(meter, scale * 0.6)
    total = sum(meter.op_counts.values())
    meter.ops(call=0.10 * total, compare=0.18 * total, mem_op=0.22 * total, alloc=0.02 * total)
    return None


def _service(name: str, state_mb: float, library_kb: float,
             library_weight: float, ilp: float,
             zipf: float = 0.4) -> NativeBenchmark:
    return NativeBenchmark(
        name=name,
        kernel=_request_kernel,
        code_kb=24.0,
        library_kb=library_kb,
        library_weight=library_weight,
        library_warm_kb=176.0,
        library_warm_share=0.80,
        ilp=ilp,
        branches=_service_branches(),
        data=_service_data(state_mb, zipf),
        int_breakdown=_CLOUD_BREAKDOWN,
        threads=6,
    )


CLOUDSUITE = [
    _service("data-analytics", state_mb=5, library_kb=1536,
             library_weight=0.28, ilp=1.4),
    _service("data-caching", state_mb=6, library_kb=1024,
             library_weight=0.25, ilp=1.5, zipf=0.7),
    _service("data-serving", state_mb=8, library_kb=1536,
             library_weight=0.33, ilp=1.2, zipf=0.35),
    _service("media-streaming", state_mb=6, library_kb=1280,
             library_weight=0.38, ilp=1.4, zipf=0.6),
    _service("software-testing", state_mb=6, library_kb=1280,
             library_weight=0.28, ilp=1.4),
    _service("web-search", state_mb=8, library_kb=2048,
             library_weight=0.38, ilp=1.1, zipf=0.5),
]
