"""SPEC CPU2006 comparison suites (first reference inputs, per §4.3).

Desktop single-threaded benchmarks: deep loops over modest working
sets, tiny instruction footprints, compiler-scheduled ILP.  SPECINT is
integer/branch oriented; SPECFP is floating-point dominated.
"""

from __future__ import annotations

from typing import Callable

from repro.comparison import kernels
from repro.comparison.base import NativeBenchmark
from repro.stacks.base import Meter
from repro.uarch.isa import IntBreakdown
from repro.uarch.profile import BranchProfile, DataFootprint


def shaped(kernel: Callable, **ballast: float) -> Callable:
    """Wrap a kernel with suite-flavoured arithmetic ballast.

    ``ballast`` maps abstract op names to fractions of the kernel's own
    op volume — the address arithmetic, register moves and scheduling
    filler that a compiled benchmark retires around its semantic core.
    """

    def run(meter: Meter, scale: float):
        result = kernel(meter, scale)
        total = sum(meter.op_counts.values())
        extra = {op: fraction * total for op, fraction in ballast.items()}
        if extra:
            meter.ops(**extra)
        return result

    return run


def _int_branches(taken: float = 0.12, sites: int = 512) -> BranchProfile:
    return BranchProfile(
        loop_fraction=0.55,
        pattern_fraction=0.18,
        data_dependent_fraction=0.27,
        taken_prob=taken,
        loop_trip=32,
        indirect_fraction=0.012,
        indirect_targets=3,
        static_sites=sites,
    )


def _fp_branches() -> BranchProfile:
    return BranchProfile(
        loop_fraction=0.82,
        pattern_fraction=0.10,
        data_dependent_fraction=0.08,
        taken_prob=0.05,
        loop_trip=96,
        indirect_fraction=0.002,
        indirect_targets=2,
        static_sites=128,
    )


def _data(stream_mb: float, state_mb: float, state_fraction: float,
          zipf: float = 0.5, hot_fraction: float = 0.945) -> DataFootprint:
    hot_fraction = min(hot_fraction, 1.0 - state_fraction)
    return DataFootprint(
        stream_bytes=int(stream_mb * 1024 * 1024),
        state_bytes=int(state_mb * 1024 * 1024),
        state_fraction=state_fraction,
        hot_bytes=24 * 1024,
        hot_fraction=hot_fraction,
        stream_reuse=4.0,
        state_zipf=zipf,
    )


_INT_BREAKDOWN = IntBreakdown(int_addr=0.52, fp_addr=0.03, other=0.45)
_FP_BREAKDOWN = IntBreakdown(int_addr=0.30, fp_addr=0.45, other=0.25)

#: Integer-heavy arithmetic ballast: pushes the integer share towards
#: SPECINT's measured ~41% while diluting branches below big data's.
_INT_BALLAST = {"int_op": 0.22, "mem_op": 0.55, "branch_op": 0.02}

SPECINT = [
    NativeBenchmark(
        name="400.perlbench-like",
        kernel=shaped(kernels.fsm_parse, **_INT_BALLAST),
        code_kb=28.0, library_kb=160.0, library_weight=0.035,
        ilp=1.45, branches=_int_branches(0.15, 768),
        data=_data(4, 0.5, 0.015), int_breakdown=_INT_BREAKDOWN,
    ),
    NativeBenchmark(
        name="401.bzip2-like",
        kernel=shaped(kernels.rle_compress, **_INT_BALLAST),
        code_kb=20.0, library_kb=64.0, library_weight=0.015,
        ilp=1.5, branches=_int_branches(0.10),
        data=_data(8, 2, 0.035, zipf=0.5), int_breakdown=_INT_BREAKDOWN,
    ),
    NativeBenchmark(
        name="429.mcf-like",
        kernel=shaped(kernels.grid_sssp, **_INT_BALLAST),
        code_kb=12.0, library_kb=48.0, library_weight=0.01,
        ilp=1.1, branches=_int_branches(0.18),
        data=_data(2, 20, 0.075, zipf=0.4, hot_fraction=0.90),
        int_breakdown=IntBreakdown(int_addr=0.68, fp_addr=0.02, other=0.30),
    ),
    NativeBenchmark(
        name="456.hmmer-like",
        kernel=shaped(kernels.dp_align, **_INT_BALLAST),
        code_kb=16.0, library_kb=48.0, library_weight=0.01,
        ilp=1.9, branches=_int_branches(0.06),
        data=_data(4, 1, 0.02), int_breakdown=_INT_BREAKDOWN,
    ),
    NativeBenchmark(
        name="458.sjeng-like",
        kernel=shaped(kernels.game_search, **_INT_BALLAST),
        code_kb=24.0, library_kb=96.0, library_weight=0.02,
        ilp=1.3, branches=_int_branches(0.16, 1024),
        data=_data(1, 2.5, 0.045, zipf=0.5), int_breakdown=_INT_BREAKDOWN,
    ),
    NativeBenchmark(
        name="471.omnetpp-like",
        kernel=shaped(kernels.hash_churn, **_INT_BALLAST),
        code_kb=26.0, library_kb=128.0, library_weight=0.03,
        ilp=1.2, branches=_int_branches(0.14, 896),
        data=_data(2, 3, 0.045, zipf=0.5, hot_fraction=0.94),
        int_breakdown=_INT_BREAKDOWN,
    ),
]

#: FP ballast: the loads/address arithmetic around vector loops.
_FP_BALLAST = {"fp_op": 0.55, "mem_op": 0.25, "branch_op": 0.03}

SPECFP = [
    NativeBenchmark(
        name="410.bwaves-like",
        kernel=shaped(kernels.stencil2d, **_FP_BALLAST),
        code_kb=14.0, library_kb=64.0, library_weight=0.01,
        ilp=1.8, branches=_fp_branches(),
        data=_data(24, 3, 0.03, zipf=0.45, hot_fraction=0.94),
        int_breakdown=_FP_BREAKDOWN,
    ),
    NativeBenchmark(
        name="416.gamess-like",
        kernel=shaped(kernels.dgemm, **_FP_BALLAST),
        code_kb=22.0, library_kb=96.0, library_weight=0.015,
        ilp=2.2, branches=_fp_branches(),
        data=_data(4, 2, 0.03), int_breakdown=_FP_BREAKDOWN,
    ),
    NativeBenchmark(
        name="433.milc-like",
        kernel=shaped(kernels.nbody, **_FP_BALLAST),
        code_kb=16.0, library_kb=64.0, library_weight=0.01,
        ilp=1.6, branches=_fp_branches(),
        data=_data(16, 3, 0.03, zipf=0.4, hot_fraction=0.94),
        int_breakdown=_FP_BREAKDOWN,
    ),
    NativeBenchmark(
        name="444.namd-like",
        kernel=shaped(kernels.monte_carlo, **_FP_BALLAST),
        code_kb=18.0, library_kb=64.0, library_weight=0.01,
        ilp=2.0, branches=_fp_branches(),
        data=_data(8, 1, 0.02), int_breakdown=_FP_BREAKDOWN,
    ),
    NativeBenchmark(
        name="454.calculix-like",
        kernel=shaped(kernels.linear_solve, **_FP_BALLAST),
        code_kb=20.0, library_kb=96.0, library_weight=0.015,
        ilp=1.9, branches=_fp_branches(),
        data=_data(6, 2.5, 0.035, zipf=0.45), int_breakdown=_FP_BREAKDOWN,
    ),
    NativeBenchmark(
        name="482.sphinx3-like",
        kernel=shaped(kernels.fft_kernel, **_FP_BALLAST),
        code_kb=18.0, library_kb=80.0, library_weight=0.015,
        ilp=1.7, branches=_fp_branches(),
        data=_data(12, 2.5, 0.035, zipf=0.45), int_breakdown=_FP_BREAKDOWN,
    ),
]

# The remaining official members (SPEC CPU2006 INT has twelve
# benchmarks; the FP additions cover its memory-bound and code-heavy
# corners), modelled on the same kernels at benchmark-specific
# parameters.
SPECINT.extend(
    [
        NativeBenchmark(
            name="403.gcc-like",
            kernel=shaped(kernels.fsm_parse, **_INT_BALLAST),
            code_kb=30.0, library_kb=320.0, library_weight=0.05,
            ilp=1.35, branches=_int_branches(0.16, 1536),
            data=_data(3, 4, 0.05, zipf=0.5),
            int_breakdown=_INT_BREAKDOWN,
        ),
        NativeBenchmark(
            name="445.gobmk-like",
            kernel=shaped(kernels.game_search, **_INT_BALLAST),
            code_kb=26.0, library_kb=128.0, library_weight=0.025,
            ilp=1.25, branches=_int_branches(0.17, 1024),
            data=_data(1, 3, 0.05, zipf=0.5),
            int_breakdown=_INT_BREAKDOWN,
        ),
        NativeBenchmark(
            name="462.libquantum-like",
            kernel=shaped(kernels.dp_align, **_INT_BALLAST),
            code_kb=10.0, library_kb=32.0, library_weight=0.008,
            ilp=2.1, branches=_int_branches(0.05),
            data=_data(20, 2, 0.02, zipf=0.3, hot_fraction=0.90),
            int_breakdown=_INT_BREAKDOWN,
        ),
        NativeBenchmark(
            name="464.h264ref-like",
            kernel=shaped(kernels.dp_align, **_INT_BALLAST),
            code_kb=22.0, library_kb=96.0, library_weight=0.02,
            ilp=1.9, branches=_int_branches(0.08),
            data=_data(8, 2, 0.04, zipf=0.5),
            int_breakdown=_INT_BREAKDOWN,
        ),
        NativeBenchmark(
            name="473.astar-like",
            kernel=shaped(kernels.grid_sssp, **_INT_BALLAST),
            code_kb=14.0, library_kb=48.0, library_weight=0.012,
            ilp=1.2, branches=_int_branches(0.16),
            data=_data(2, 8, 0.045, zipf=0.45, hot_fraction=0.94),
            int_breakdown=_INT_BREAKDOWN,
        ),
        NativeBenchmark(
            name="483.xalancbmk-like",
            kernel=shaped(kernels.hash_churn, **_INT_BALLAST),
            code_kb=32.0, library_kb=384.0, library_weight=0.055,
            ilp=1.3, branches=_int_branches(0.14, 2048),
            data=_data(3, 4, 0.05, zipf=0.5),
            int_breakdown=_INT_BREAKDOWN,
        ),
    ]
)

SPECFP.extend(
    [
        NativeBenchmark(
            name="437.leslie3d-like",
            kernel=shaped(kernels.stencil2d, **_FP_BALLAST),
            code_kb=16.0, library_kb=64.0, library_weight=0.01,
            ilp=1.9, branches=_fp_branches(),
            data=_data(20, 3, 0.05, zipf=0.35, hot_fraction=0.92),
            int_breakdown=_FP_BREAKDOWN,
        ),
        NativeBenchmark(
            name="450.soplex-like",
            kernel=shaped(kernels.linear_solve, **_FP_BALLAST),
            code_kb=24.0, library_kb=128.0, library_weight=0.02,
            ilp=1.5, branches=_fp_branches(),
            data=_data(6, 8, 0.05, zipf=0.4, hot_fraction=0.93),
            int_breakdown=_FP_BREAKDOWN,
        ),
        NativeBenchmark(
            name="470.lbm-like",
            kernel=shaped(kernels.stencil2d, **_FP_BALLAST),
            code_kb=8.0, library_kb=32.0, library_weight=0.006,
            ilp=2.1, branches=_fp_branches(),
            data=_data(32, 4, 0.04, zipf=0.3, hot_fraction=0.90),
            int_breakdown=_FP_BREAKDOWN,
        ),
        NativeBenchmark(
            name="453.povray-like",
            kernel=shaped(kernels.nbody, **_FP_BALLAST),
            code_kb=28.0, library_kb=160.0, library_weight=0.03,
            ilp=1.7, branches=_fp_branches(),
            data=_data(4, 1, 0.03), int_breakdown=_FP_BREAKDOWN,
        ),
    ]
)
