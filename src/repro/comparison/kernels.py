"""Miniature computational kernels underlying the comparison suites.

Each kernel really computes something (compression, shortest paths,
dense algebra, stencils, transactions) over deterministic generated
inputs and meters its abstract operations; suites compose them at
suite-appropriate intensities.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.stacks.base import Meter


def _bytes_input(n: int, seed: int = 3) -> bytes:
    rng = np.random.default_rng(seed)
    # Compressible byte stream: runs of repeated symbols.
    runs = rng.integers(1, 12, size=n // 4)
    symbols = rng.integers(65, 91, size=n // 4)
    return bytes(
        int(symbol) for symbol, run in zip(symbols, runs) for _ in range(run)
    )[:n]


def rle_compress(meter: Meter, scale: float = 1.0) -> int:
    """Run-length encoding (bzip2-like front end)."""
    data = _bytes_input(max(4096, int(40_000 * scale)))
    meter.record_in(len(data))
    out: List[int] = []
    previous = -1
    run = 0
    for byte in data:
        if byte == previous:
            run += 1
        else:
            if run:
                out.append(run)
                out.append(previous)
            previous, run = byte, 1
    out.append(run)
    meter.ops(
        str_byte=len(data), compare=len(data), int_op=len(data) // 2,
        field_store=len(out),
    )
    meter.record_out(len(out))
    return len(out)


def fsm_parse(meter: Meter, scale: float = 1.0) -> int:
    """Tokenising finite-state machine (perlbench/gcc-like)."""
    rng = np.random.default_rng(5)
    alphabet = "ab {}();="
    text = "".join(alphabet[i] for i in rng.integers(0, len(alphabet), size=max(4096, int(30_000 * scale))))
    meter.record_in(len(text))
    state = 0
    tokens = 0
    for char in text:
        if char.isalpha():
            state = 1
        elif char.isspace():
            if state == 1:
                tokens += 1
            state = 0
        else:
            tokens += 1
            state = 0
    meter.ops(
        str_byte=len(text), compare=2 * len(text), int_op=len(text) // 2,
        hash=tokens,
    )
    return tokens


def grid_sssp(meter: Meter, scale: float = 1.0) -> float:
    """Dijkstra over a grid graph (mcf/astar-like pointer chasing)."""
    import heapq

    side = max(16, int(44 * math.sqrt(scale)))
    rng = np.random.default_rng(7)
    weights = rng.integers(1, 10, size=(side, side))
    meter.record_in(int(weights.nbytes))
    distance = {(0, 0): 0}
    heap = [(0, (0, 0))]
    visited = set()
    relaxations = 0
    while heap:
        d, (x, y) = heapq.heappop(heap)
        if (x, y) in visited:
            continue
        visited.add((x, y))
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < side and 0 <= ny < side:
                relaxations += 1
                candidate = d + int(weights[nx, ny])
                if candidate < distance.get((nx, ny), 1 << 30):
                    distance[(nx, ny)] = candidate
                    heapq.heappush(heap, (candidate, (nx, ny)))
    meter.ops(
        compare=3 * relaxations, hash=2 * relaxations,
        array_access=relaxations, int_op=relaxations,
    )
    return distance[(side - 1, side - 1)]


def dp_align(meter: Meter, scale: float = 1.0) -> int:
    """Sequence-alignment dynamic programming (hmmer-like)."""
    rng = np.random.default_rng(9)
    n = max(64, int(220 * math.sqrt(scale)))
    a = rng.integers(0, 4, size=n)
    b = rng.integers(0, 4, size=n)
    meter.record_in(2 * n)
    previous = np.zeros(n + 1, dtype=np.int64)
    for i in range(1, n + 1):
        current = np.zeros(n + 1, dtype=np.int64)
        match = previous[:-1] + np.where(b == a[i - 1], 2, -1)
        current[1:] = np.maximum.reduce(
            [match, previous[1:] - 1, np.maximum.accumulate(current[:-1] - 1)[
                : n
            ]]
        )
        previous = current
    meter.ops(
        compare=3 * n * n, array_access=3 * n * n, int_op=2 * n * n,
    )
    return int(previous[-1])


def game_search(meter: Meter, scale: float = 1.0) -> int:
    """Alpha-beta game-tree search (sjeng/gobmk-like)."""
    rng = np.random.default_rng(11)
    depth = 7
    branching = max(3, int(4 * scale) or 3)
    nodes = [0]

    def search(level: int, alpha: int, beta: int, state: int) -> int:
        nodes[0] += 1
        if level == 0:
            return int((state * 2654435761) % 200) - 100
        best = -1 << 20
        for move in range(branching):
            value = -search(level - 1, -beta, -alpha, state * branching + move)
            if value > best:
                best = value
            if best > alpha:
                alpha = best
            if alpha >= beta:
                break
        return best

    result = search(depth, -1 << 20, 1 << 20, int(rng.integers(1, 1000)))
    meter.record_in(8 * nodes[0])
    meter.ops(
        compare=4 * nodes[0], call=nodes[0], int_op=3 * nodes[0],
        array_access=nodes[0],
    )
    return result


def hash_churn(meter: Meter, scale: float = 1.0) -> int:
    """Hash-table insert/lookup mix (xalancbmk/omnetpp-like)."""
    rng = np.random.default_rng(13)
    n = max(4096, int(50_000 * scale))
    keys = rng.integers(0, n // 2, size=n)
    meter.record_in(int(keys.nbytes))
    table: dict = {}
    hits = 0
    for key in keys.tolist():
        if key in table:
            table[key] += 1
            hits += 1
        else:
            table[key] = 1
    meter.ops(hash=2 * n, compare=n, int_op=n, alloc=len(table) // 8)
    return hits


# --- Floating-point kernels -------------------------------------------------

def dgemm(meter: Meter, scale: float = 1.0) -> float:
    """Dense matrix multiply (HPL/DGEMM)."""
    n = max(48, int(120 * math.sqrt(scale)))
    rng = np.random.default_rng(15)
    a = rng.random((n, n))
    b = rng.random((n, n))
    meter.record_in(int(a.nbytes + b.nbytes))
    c = a @ b
    meter.ops(fp_op=float(2 * n ** 3), array_access=float(n ** 2))
    return float(c.sum())


def stream_triad(meter: Meter, scale: float = 1.0) -> float:
    """STREAM triad: a = b + s * c."""
    n = max(10_000, int(400_000 * scale))
    rng = np.random.default_rng(17)
    b = rng.random(n)
    c = rng.random(n)
    meter.record_in(int(b.nbytes + c.nbytes))
    a = b + 3.0 * c
    meter.ops(fp_op=float(2 * n), array_access=float(3 * n))
    meter.record_out(int(a.nbytes))
    return float(a.sum())


def fft_kernel(meter: Meter, scale: float = 1.0) -> float:
    """1-D FFT (HPCC FFT / PARSEC-style transform)."""
    n = 1 << max(10, int(13 + math.log2(max(scale, 0.1))))
    rng = np.random.default_rng(19)
    signal = rng.random(n)
    meter.record_in(int(signal.nbytes))
    spectrum = np.fft.rfft(signal)
    meter.ops(fp_op=float(5 * n * math.log2(n)), array_access=float(2 * n))
    return float(np.abs(spectrum).sum())


def stencil2d(meter: Meter, scale: float = 1.0) -> float:
    """Five-point Jacobi stencil (fluidanimate/facesim-like)."""
    n = max(64, int(180 * math.sqrt(scale)))
    rng = np.random.default_rng(21)
    grid = rng.random((n, n))
    meter.record_in(int(grid.nbytes))
    for _ in range(8):
        grid[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
    meter.ops(fp_op=float(8 * 4 * (n - 2) ** 2), array_access=float(8 * 5 * (n - 2) ** 2))
    return float(grid.sum())


def nbody(meter: Meter, scale: float = 1.0) -> float:
    """All-pairs n-body step (swaptions/blackscholes-scale FP)."""
    n = max(64, int(200 * math.sqrt(scale)))
    rng = np.random.default_rng(23)
    pos = rng.random((n, 3))
    meter.record_in(int(pos.nbytes))
    delta = pos[:, None, :] - pos[None, :, :]
    dist2 = (delta ** 2).sum(axis=2) + 1e-9
    force = (delta / dist2[:, :, None] ** 1.5).sum(axis=1)
    meter.ops(fp_op=float(12 * n * n), array_access=float(3 * n * n))
    return float(np.abs(force).sum())


def random_access(meter: Meter, scale: float = 1.0) -> int:
    """HPCC RandomAccess (GUPS): xor updates at random table slots."""
    table_size = 1 << 16
    n_updates = max(20_000, int(150_000 * scale))
    rng = np.random.default_rng(25)
    table = np.arange(table_size, dtype=np.int64)
    indices = rng.integers(0, table_size, size=n_updates)
    values = rng.integers(1, 1 << 30, size=n_updates)
    meter.record_in(int(indices.nbytes))
    np.bitwise_xor.at(table, indices, values)
    meter.ops(array_access=float(2 * n_updates), int_op=float(n_updates))
    return int(table.sum() & 0xFFFF)


def monte_carlo(meter: Meter, scale: float = 1.0) -> float:
    """Monte-Carlo pricing loop (swaptions-like)."""
    n = max(20_000, int(200_000 * scale))
    rng = np.random.default_rng(27)
    draws = rng.normal(size=n)
    meter.record_in(int(draws.nbytes))
    payoff = np.maximum(0.0, 100.0 * np.exp(0.2 * draws) - 100.0)
    meter.ops(fp_op=float(6 * n), compare=float(n))
    return float(payoff.mean())


def linear_solve(meter: Meter, scale: float = 1.0) -> float:
    """Dense solve (HPL proper)."""
    n = max(48, int(100 * math.sqrt(scale)))
    rng = np.random.default_rng(29)
    a = rng.random((n, n)) + n * np.eye(n)
    b = rng.random(n)
    meter.record_in(int(a.nbytes))
    x = np.linalg.solve(a, b)
    meter.ops(fp_op=float(2 * n ** 3 / 3), array_access=float(n * n))
    return float(x.sum())


def transaction_mix(meter: Meter, scale: float = 1.0) -> int:
    """TPC-C-style new-order/payment transaction processing.

    Maintains warehouse/district/stock dictionaries and processes a mix
    of transactions with heavy per-transaction branching (the Switch-Case
    style the paper attributes to service workloads).
    """
    rng = np.random.default_rng(31)
    n_tx = max(2_000, int(12_000 * scale))
    n_items = 2_000
    stock = {i: 50 for i in range(n_items)}
    balances = {w: 0.0 for w in range(16)}
    committed = 0
    kinds = rng.integers(0, 100, size=n_tx)
    item_choices = rng.integers(0, n_items, size=(n_tx, 8))
    for t in range(n_tx):
        kind = kinds[t]
        if kind < 45:  # new order
            for item in item_choices[t][: 5 + kind % 4]:
                item = int(item)
                if stock[item] <= 0:
                    stock[item] = 60
                stock[item] -= 1
            committed += 1
        elif kind < 88:  # payment
            warehouse = int(kind) % 16
            balances[warehouse] += float(kind) * 0.5
            committed += 1
        else:  # stock-level query
            low = sum(1 for item in item_choices[t] if stock[int(item)] < 20)
            committed += 1 if low >= 0 else 0
    meter.record_in(64 * n_tx)
    meter.record_out(32 * committed)
    meter.ops(
        compare=float(22 * n_tx),
        branch_op=float(14 * n_tx),
        hash=float(6 * n_tx),
        int_op=float(4 * n_tx),
        mem_op=float(10 * n_tx),
        field_store=float(4 * n_tx),
        call=float(4 * n_tx),
        fp_op=float(n_tx // 2),
    )
    return committed
