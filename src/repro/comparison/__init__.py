"""Comparison benchmark suites (§4.3 of the paper).

SPECINT / SPECFP (desktop), PARSEC (CMP), HPCC (HPC), CloudSuite
(scale-out services) and TPC-C (OLTP) as comparison points in the same
45-metric space.  Each suite member executes a genuine miniature kernel
(compression, linear algebra, stencils, transaction processing, ...)
through the same metering machinery as the big data workloads, with a
thin native runtime model instead of a big-data software stack.
"""

from repro.comparison.base import NativeBenchmark, run_suite
from repro.comparison.spec import SPECINT, SPECFP
from repro.comparison.parsec import PARSEC
from repro.comparison.hpcc import HPCC
from repro.comparison.cloudsuite import CLOUDSUITE
from repro.comparison.tpcc import TPCC

#: All comparison suites keyed by the paper's names.
SUITES = {
    "SPECINT": SPECINT,
    "SPECFP": SPECFP,
    "PARSEC": PARSEC,
    "HPCC": HPCC,
    "CloudSuite": CLOUDSUITE,
    "TPC-C": TPCC,
}

__all__ = [
    "NativeBenchmark",
    "run_suite",
    "SPECINT",
    "SPECFP",
    "PARSEC",
    "HPCC",
    "CLOUDSUITE",
    "TPCC",
    "SUITES",
]
