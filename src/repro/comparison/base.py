"""Shared machinery for the comparison suites.

A :class:`NativeBenchmark` wraps a real miniature kernel (a callable
that does the computation and meters it) together with the behaviour
parameters a natively compiled benchmark exhibits — small instruction
footprints, no middleware dispatch, loop-dominated branching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.stacks.base import Meter
from repro.uarch.isa import IntBreakdown
from repro.uarch.profile import (
    BehaviorProfile,
    BranchProfile,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
)


@dataclass
class NativeBenchmark:
    """One comparison-suite member.

    Attributes:
        name: Benchmark name (e.g. ``"mcf"``).
        kernel: ``kernel(meter, scale) -> object``; does the real work.
        code_kb: Hot code size.
        library_kb: Total library/runtime code size.
        library_weight: Fraction of fetches from library code.
        library_warm_kb: Portion of the library that stays L2-resident
            (per-request hot paths); the rest is the cold tail.
        library_warm_share: Share of library fetches hitting the warm
            portion.
        ilp: Exploitable instruction-level parallelism.
        branches: Branch behaviour.
        data: Data working-set model.
        int_breakdown: Figure-2 style integer breakdown.
        threads: Concurrency (PARSEC/CloudSuite are multi-threaded).
    """

    name: str
    kernel: Callable[[Meter, float], object]
    code_kb: float = 20.0
    library_kb: float = 64.0
    library_weight: float = 0.03
    library_warm_kb: float = 0.0
    library_warm_share: float = 0.75
    ilp: float = 1.6
    branches: BranchProfile = field(
        default_factory=lambda: BranchProfile(
            loop_fraction=0.60,
            pattern_fraction=0.15,
            data_dependent_fraction=0.25,
            taken_prob=0.05,
            loop_trip=48,
            indirect_fraction=0.005,
            indirect_targets=2,
            static_sites=256,
        )
    )
    data: DataFootprint = field(
        default_factory=lambda: DataFootprint(
            stream_bytes=8 * 1024 * 1024,
            state_bytes=1024 * 1024,
            state_fraction=0.03,
            hot_bytes=16 * 1024,
            hot_fraction=0.95,
            stream_reuse=3.0,
            state_zipf=0.6,
        )
    )
    int_breakdown: IntBreakdown = field(
        default_factory=lambda: IntBreakdown(int_addr=0.55, fp_addr=0.12, other=0.33)
    )
    threads: int = 1

    def profile(self, scale: float = 1.0) -> BehaviorProfile:
        """Execute the kernel and build the behaviour profile."""
        meter = Meter()
        self.kernel(meter, scale)
        mix = meter.kernel_mix()
        if mix.total <= 0:
            raise ValueError(f"{self.name}: kernel metered no work")
        if meter.bytes_in <= 0:
            meter.record_in(1024)
        regions = [
            CodeRegion(
                "kernel", int(self.code_kb * 1024),
                weight=1.0 - self.library_weight, sequentiality=9.0,
            ),
        ]
        warm_kb = min(self.library_warm_kb, self.library_kb)
        cold_kb = self.library_kb - warm_kb
        if warm_kb > 0 and cold_kb > 0:
            regions.append(
                CodeRegion(
                    "library-warm", int(warm_kb * 1024),
                    weight=self.library_weight * self.library_warm_share,
                    sequentiality=5.0,
                )
            )
            regions.append(
                CodeRegion(
                    "library-cold", int(cold_kb * 1024),
                    weight=self.library_weight * (1.0 - self.library_warm_share),
                    sequentiality=4.0,
                )
            )
        else:
            regions.append(
                CodeRegion(
                    "library", int(self.library_kb * 1024),
                    weight=self.library_weight, sequentiality=5.0,
                )
            )
        return BehaviorProfile(
            name=self.name,
            mix=mix,
            int_breakdown=self.int_breakdown,
            code=CodeFootprint(regions=regions),
            data=self.data,
            branches=self.branches,
            ilp=self.ilp,
            instructions=mix.total,
            fp_ops=meter.fp_ops,
            bytes_processed=max(1, meter.bytes_in),
            threads=self.threads,
        )


def run_suite(benchmarks: List[NativeBenchmark], scale: float = 1.0):
    """Profiles for every member of a suite."""
    return [benchmark.profile(scale) for benchmark in benchmarks]
