"""HPCC 1.4 comparison suite (all seven benchmarks, per §4.3).

HPC kernels: long vector loops, very high loop regularity, the highest
IPC of the comparison set (the paper measures 1.5) and tiny
instruction footprints.
"""

from __future__ import annotations

from repro.comparison import kernels
from repro.comparison.base import NativeBenchmark
from repro.comparison.spec import shaped
from repro.stacks.base import Meter
from repro.uarch.isa import IntBreakdown
from repro.uarch.profile import BranchProfile, DataFootprint

_HPC_BREAKDOWN = IntBreakdown(int_addr=0.34, fp_addr=0.42, other=0.24)


def _branches(trip: int = 128) -> BranchProfile:
    return BranchProfile(
        loop_fraction=0.88,
        pattern_fraction=0.06,
        data_dependent_fraction=0.06,
        taken_prob=0.05,
        loop_trip=trip,
        indirect_fraction=0.001,
        indirect_targets=2,
        static_sites=96,
    )


def _data(stream_mb: float, state_mb: float, state_fraction: float,
          zipf: float = 0.3, hot_fraction: float = 0.96,
          reuse: float = 6.0) -> DataFootprint:
    hot_fraction = min(hot_fraction, 1.0 - state_fraction)
    return DataFootprint(
        stream_bytes=int(stream_mb * 1024 * 1024),
        state_bytes=int(state_mb * 1024 * 1024),
        state_fraction=state_fraction,
        hot_bytes=32 * 1024,
        hot_fraction=hot_fraction,
        stream_reuse=reuse,
        state_zipf=zipf,
    )


_BALLAST = {"fp_op": 1.2, "mem_op": 0.5, "branch_op": 0.12}


def _ptrans_kernel(meter: Meter, scale: float):
    """Matrix transpose + add (PTRANS)."""
    import numpy as np

    n = max(64, int(160 * (scale ** 0.5)))
    rng = np.random.default_rng(33)
    a = rng.random((n, n))
    meter.record_in(int(a.nbytes))
    b = a.T + a
    meter.ops(fp_op=float(n * n), array_access=float(2 * n * n))
    return float(b.trace())


def _beff_kernel(meter: Meter, scale: float):
    """Effective-bandwidth style message churn (b_eff)."""
    n = max(10_000, int(120_000 * scale))
    meter.record_in(8 * n)
    meter.record_shuffle(8 * n)
    meter.ops(mem_op=float(2 * n), int_op=float(n), branch_op=float(n // 8), fp_op=float(n // 2))
    return n


HPCC = [
    NativeBenchmark(
        name="HPL",
        kernel=shaped(kernels.linear_solve, **_BALLAST),
        code_kb=18.0, library_kb=96.0, library_weight=0.008,
        ilp=2.9, branches=_branches(256),
        data=_data(8, 3, 0.010, reuse=8.0), int_breakdown=_HPC_BREAKDOWN,
        threads=6,
    ),
    NativeBenchmark(
        name="DGEMM",
        kernel=shaped(kernels.dgemm, **_BALLAST),
        code_kb=12.0, library_kb=64.0, library_weight=0.006,
        ilp=3.1, branches=_branches(256),
        data=_data(4, 2, 0.008, reuse=10.0), int_breakdown=_HPC_BREAKDOWN,
        threads=6,
    ),
    NativeBenchmark(
        name="STREAM",
        kernel=shaped(kernels.stream_triad, **_BALLAST),
        code_kb=6.0, library_kb=32.0, library_weight=0.004,
        ilp=2.4, branches=_branches(512),
        data=_data(64, 0.25, 0.004, hot_fraction=0.94, reuse=2.0),
        int_breakdown=_HPC_BREAKDOWN, threads=6,
    ),
    NativeBenchmark(
        name="PTRANS",
        kernel=shaped(_ptrans_kernel, **_BALLAST),
        code_kb=8.0, library_kb=48.0, library_weight=0.005,
        ilp=2.4, branches=_branches(128),
        data=_data(24, 3, 0.012, reuse=3.0), int_breakdown=_HPC_BREAKDOWN,
        threads=6,
    ),
    NativeBenchmark(
        name="RandomAccess",
        kernel=shaped(kernels.random_access, int_op=0.5, array_access=0.3),
        code_kb=6.0, library_kb=32.0, library_weight=0.004,
        ilp=1.6, branches=_branches(64),
        data=_data(2, 24, 0.020, zipf=0.05, hot_fraction=0.96, reuse=1.0),
        int_breakdown=IntBreakdown(int_addr=0.72, fp_addr=0.05, other=0.23),
        threads=6,
    ),
    NativeBenchmark(
        name="FFT",
        kernel=shaped(kernels.fft_kernel, **_BALLAST),
        code_kb=14.0, library_kb=64.0, library_weight=0.006,
        ilp=2.5, branches=_branches(128),
        data=_data(16, 3, 0.012, reuse=3.0), int_breakdown=_HPC_BREAKDOWN,
        threads=6,
    ),
    NativeBenchmark(
        name="b_eff",
        kernel=_beff_kernel,
        code_kb=10.0, library_kb=80.0, library_weight=0.01,
        ilp=2.1, branches=_branches(64),
        data=_data(32, 1, 0.01, reuse=2.5), int_breakdown=_HPC_BREAKDOWN,
        threads=6,
    ),
]
