"""§5.2 implication: wimpy cores versus brawny cores.

"Architecture communities are exploring different technology road maps
for big data workloads: some focuses on scale-out wimpy core … others
try to use brawny core … We speculate that the processor architecture
should not have one-size-fits-all solution."

This experiment characterizes every representative on both platform
models and reports the Atom-relative slowdown per workload and per
subclass.  The paper's speculation predicts a *wide spread*: workloads
with modest ILP and small footprints lose little on a wimpy core, while
front-end-bound service workloads and ILP-rich analytics lose a lot —
so neither road map wins everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.experiments.runner import CATEGORY_GROUPS, ExperimentContext
from repro.report.tables import render_table
from repro.workloads import REPRESENTATIVE_WORKLOADS


@dataclass
class WimpyCoreResult:
    workload_rows: List[list] = field(default_factory=list)
    group_rows: List[list] = field(default_factory=list)
    min_slowdown: float = 0.0
    max_slowdown: float = 0.0

    @property
    def spread(self) -> float:
        """max/min per-core slowdown across workloads."""
        return self.max_slowdown / max(1e-9, self.min_slowdown)

    def render(self) -> str:
        parts = [
            render_table(
                ["workload", "Xeon IPC", "Atom IPC", "per-core slowdown"],
                self.workload_rows,
                title="§5.2 — wimpy-core (Atom D510) vs brawny-core (Xeon E5645)",
            ),
            render_table(
                ["category", "mean slowdown"],
                self.group_rows,
                title="\nsubclass means",
            ),
            (
                f"\nper-core slowdown spans {self.min_slowdown:.1f}x to "
                f"{self.max_slowdown:.1f}x (spread {self.spread:.1f}x) — "
                "no one-size-fits-all core, as §5.2 speculates"
            ),
        ]
        return "\n".join(parts)


def run(context: ExperimentContext) -> WimpyCoreResult:
    """Characterize the representatives on both platforms."""
    result = WimpyCoreResult()
    slowdowns = {}
    for definition in REPRESENTATIVE_WORKLOADS:
        xeon = context.counters(definition.workload_id, context.xeon)
        atom = context.counters(definition.workload_id, context.atom)
        # Normalise for clock: per-cycle capability ratio, then scale by
        # frequency for the per-core wall-clock slowdown.
        slowdown = (
            (xeon.ipc * context.xeon.frequency_ghz)
            / max(1e-9, atom.ipc * context.atom.frequency_ghz)
        )
        slowdowns[definition.workload_id] = slowdown
        result.workload_rows.append(
            [definition.workload_id, xeon.ipc, atom.ipc, slowdown]
        )
    result.min_slowdown = min(slowdowns.values())
    result.max_slowdown = max(slowdowns.values())

    for category in CATEGORY_GROUPS:
        members = [
            slowdowns[d.workload_id]
            for d in REPRESENTATIVE_WORKLOADS
            if context.category_of(d.workload_id) == category
        ]
        result.group_rows.append([category, sum(members) / len(members)])
    return result
