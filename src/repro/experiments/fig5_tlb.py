"""Figure 5: ITLB / DTLB behaviour of every workload.

Paper reference points: big data averages ITLB MPKI 0.05 and DTLB MPKI
0.9; ITLB per category (service 0.2, data analysis 0.04, interactive
0.04); DTLB per category (service 1.8, data analysis 1.1, interactive
0.5); CloudSuite above, HPCC/PARSEC at or below the big data numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.comparison import SUITES
from repro.experiments.runner import (
    BEHAVIOR_GROUPS,
    CATEGORY_GROUPS,
    ExperimentContext,
)
from repro.report.tables import render_table
from repro.workloads import MPI_WORKLOADS, REPRESENTATIVE_WORKLOADS

PAPER = {"bigdata_itlb": 0.05, "bigdata_dtlb": 0.9, "service_itlb": 0.2}


@dataclass
class TlbBehaviorResult:
    workload_rows: List[list] = field(default_factory=list)
    suite_rows: List[list] = field(default_factory=list)
    group_rows: List[list] = field(default_factory=list)
    bigdata_itlb: float = 0.0
    bigdata_dtlb: float = 0.0

    def fidelity_metrics(self) -> dict:
        """Registry metrics: TLB MPKI per workload/suite/group + means."""
        from repro.obs.registry import flatten_rows

        headers = ["workload", "itlb_mpki", "dtlb_mpki"]
        metrics = flatten_rows("workload", headers, self.workload_rows)
        metrics.update(flatten_rows("suite", headers, self.suite_rows))
        metrics.update(
            flatten_rows("group", ["group", "itlb_mpki", "dtlb_mpki"],
                         self.group_rows)
        )
        metrics["bigdata.itlb_mpki"] = self.bigdata_itlb
        metrics["bigdata.dtlb_mpki"] = self.bigdata_dtlb
        return metrics

    def render(self) -> str:
        parts = [
            render_table(["workload", "ITLB", "DTLB"], self.workload_rows,
                         title="Figure 5 — TLB MPKI (Xeon E5645)"),
            render_table(["suite", "ITLB", "DTLB"], self.suite_rows,
                         title="\nsuite averages"),
            render_table(["group", "ITLB", "DTLB"], self.group_rows,
                         title="\nsubclass averages"),
            (
                f"\nbig data averages: ITLB {self.bigdata_itlb:.3f} "
                f"(paper {PAPER['bigdata_itlb']}), DTLB {self.bigdata_dtlb:.2f} "
                f"(paper {PAPER['bigdata_dtlb']})"
            ),
        ]
        return "\n".join(parts)


def run(context: ExperimentContext) -> TlbBehaviorResult:
    """Regenerate Figure 5's data."""
    result = TlbBehaviorResult()
    for definition in REPRESENTATIVE_WORKLOADS + MPI_WORKLOADS:
        metrics = context.counters(definition.workload_id).metric_dict()
        result.workload_rows.append(
            [definition.workload_id, metrics["itlb_mpki"], metrics["dtlb_mpki"]]
        )
    for suite_name in SUITES:
        result.suite_rows.append(
            [
                suite_name,
                context.suite_average(suite_name, "itlb_mpki"),
                context.suite_average(suite_name, "dtlb_mpki"),
            ]
        )
    for category in CATEGORY_GROUPS:
        result.group_rows.append(
            [
                f"category: {category}",
                context.group_average("itlb_mpki", "category", category),
                context.group_average("dtlb_mpki", "category", category),
            ]
        )
    for behavior in BEHAVIOR_GROUPS:
        result.group_rows.append(
            [
                f"behavior: {behavior}",
                context.group_average("itlb_mpki", "behavior", behavior),
                context.group_average("dtlb_mpki", "behavior", behavior),
            ]
        )
    result.bigdata_itlb = context.bigdata_average("itlb_mpki")
    result.bigdata_dtlb = context.bigdata_average("dtlb_mpki")
    return result
