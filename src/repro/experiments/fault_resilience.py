"""Fault resilience of the software stacks: Hadoop vs Spark vs MPI.

The same WordCount, the same 5-node cluster, the same seeded fault plan
(one node crash mid-job) — three stacks.  Hadoop and Spark detect the
loss via heartbeat timeout, re-execute the dead node's tasks on the
survivors (with speculative duplicates chasing fault-induced
stragglers) and finish with an inflated makespan and some wasted work;
MPI has no task-level recovery and aborts the whole job.  This is the
operational face of the paper's deep-vs-thin stack contrast: the layers
that cost Hadoop and Spark an order of magnitude in L1I MPKI (§5.5) are
also the layers that let them survive the fault.

Each stack's fault run is driven by the *same* plan (crash time drawn
once from the seed, relative to the shortest fault-free makespan) and
the same seed always reproduces identical metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cluster.cluster import Cluster, SystemMetrics
from repro.cluster.faults import FaultPlan
from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table
from repro.stacks.scheduler import JobFailedError, policy_for
from repro.workloads.kernels import (
    hadoop_wordcount,
    mpi_wordcount,
    spark_wordcount,
)

#: (stack name, WordCount runner) — the §4.1 trio.
STACKS: List[tuple] = [
    ("Hadoop", hadoop_wordcount),
    ("Spark", spark_wordcount),
    ("MPI", mpi_wordcount),
]

#: Recovery-policy time constants are written for jobs lasting minutes;
#: scaled-down runs last milliseconds, so each stack's policy clock is
#: shrunk to baseline_makespan / POLICY_TIME_UNIT (i.e. a 30 s
#: heartbeat timeout becomes 30% of the job).
POLICY_TIME_UNIT = 100.0


@dataclass
class StackResilience:
    """Outcome of one stack's run under the shared fault plan."""

    stack: str
    baseline: SystemMetrics
    outcome: str  # "recovered" | "job failed"
    faulty: Optional[SystemMetrics] = None
    failure: str = ""

    @property
    def makespan_inflation(self) -> float:
        if self.faulty is None:
            return float("inf")
        return self.faulty.makespan_inflation


@dataclass
class FaultResilienceResult:
    plan: FaultPlan = None
    seed: int = 0
    results: List[StackResilience] = field(default_factory=list)

    def by_stack(self, stack: str) -> StackResilience:
        for entry in self.results:
            if entry.stack == stack:
                return entry
        raise KeyError(stack)

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-stack outcome and recovery accounting."""
        metrics = {}
        for entry in self.results:
            prefix = f"stack.{entry.stack}"
            metrics[f"{prefix}.recovered"] = float(
                entry.outcome == "recovered"
            )
            metrics[f"{prefix}.baseline.elapsed"] = entry.baseline.elapsed
            if entry.faulty is not None:
                for name, value in entry.faulty.to_dict().items():
                    metrics[f"{prefix}.faulty.{name}"] = float(value)
        return metrics

    def to_dict(self) -> dict:
        """Machine-readable form (``repro faults --json``)."""
        return {
            "seed": self.seed,
            "stacks": [
                {
                    "stack": entry.stack,
                    "outcome": entry.outcome,
                    "failure": entry.failure,
                    "baseline": entry.baseline.to_dict(),
                    "faulty": (
                        entry.faulty.to_dict()
                        if entry.faulty is not None
                        else None
                    ),
                }
                for entry in self.results
            ],
        }

    def render(self) -> str:
        rows = []
        for entry in self.results:
            if entry.faulty is not None:
                metrics = entry.faulty
                rows.append(
                    [
                        entry.stack,
                        entry.outcome,
                        entry.baseline.elapsed,
                        metrics.elapsed,
                        metrics.makespan_inflation,
                        metrics.tasks_retried,
                        f"{metrics.speculative_wins}/{metrics.speculative_launches}",
                        metrics.wasted_work_ratio,
                    ]
                )
            else:
                rows.append(
                    [
                        entry.stack,
                        entry.outcome,
                        entry.baseline.elapsed,
                        "-", "-", "-", "-", "-",
                    ]
                )
        table = render_table(
            [
                "stack", "outcome", "fault-free (s)", "faulty (s)",
                "inflation", "retried", "spec wins", "wasted",
            ],
            rows,
            title=(
                f"Fault resilience — WordCount under a seeded node crash "
                f"(seed {self.seed})"
            ),
        )
        survivors = [e.stack for e in self.results if e.outcome == "recovered"]
        casualties = [e.stack for e in self.results if e.outcome != "recovered"]
        summary = (
            f"\n{', '.join(survivors)} re-execute lost tasks and finish; "
            f"{', '.join(casualties) or 'nobody'} aborts the job — the "
            f"flip side of the thin-stack efficiency of §5.5."
        )
        return table + summary


def _run_stack(
    runner: Callable,
    scale: float,
    seed: int,
    faults: Optional[FaultPlan] = None,
    policy=None,
) -> SystemMetrics:
    result = runner(
        scale, cluster=Cluster(), seed=seed, faults=faults, recovery=policy
    )
    return result.system


def run(context: ExperimentContext) -> FaultResilienceResult:
    """Run the three stacks fault-free, then under one shared fault plan."""
    result = FaultResilienceResult(seed=context.seed)
    baselines = {
        stack: _run_stack(runner, context.scale, context.seed)
        for stack, runner in STACKS
    }
    # One crash, timed against the shortest fault-free makespan so it
    # lands while *every* stack still has work in flight.
    horizon = min(metrics.elapsed for metrics in baselines.values())
    plan = FaultPlan.seeded(7 + context.seed, horizon=horizon)
    result.plan = plan
    for stack, runner in STACKS:
        baseline = baselines[stack]
        policy = policy_for(stack).scaled(baseline.elapsed / POLICY_TIME_UNIT)
        try:
            faulty = _run_stack(
                runner, context.scale, context.seed, faults=plan, policy=policy
            )
            faulty.makespan_inflation = faulty.elapsed / baseline.elapsed
            result.results.append(
                StackResilience(
                    stack=stack,
                    baseline=baseline,
                    outcome="recovered",
                    faulty=faulty,
                )
            )
        except JobFailedError as failure:
            result.results.append(
                StackResilience(
                    stack=stack,
                    baseline=baseline,
                    outcome="job failed",
                    failure=str(failure),
                )
            )
    return result
