"""Figure 1: the retired-instruction breakdown of all workloads.

Reproduces the per-workload instruction mix (integer / FP / branch /
load / store) for the 17 representatives, the six MPI versions and the
comparison suites, plus the subclass averages quoted in §5.1:

- average big data branch ratio 18.7% (service 18%, data analysis 19%,
  interactive analysis 19%; CPU 19%, I/O 18%, hybrid 19%),
- average big data integer ratio 38% (service 40%, data analysis 38%,
  interactive 38%; CPU 37%, I/O 39%, hybrid 38%),
- compared against SPECINT 41%, CloudSuite 34%, TPC-C 33% integer and
  TPC-C's 30% branch ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.comparison import SUITES
from repro.experiments.runner import (
    BEHAVIOR_GROUPS,
    CATEGORY_GROUPS,
    ExperimentContext,
)
from repro.obs.registry import flatten_rows
from repro.report.tables import render_table
from repro.workloads import MPI_WORKLOADS, REPRESENTATIVE_WORKLOADS

#: §5.1's headline averages for comparison columns.
PAPER_AVERAGES = {
    "bigdata_branch": 0.187,
    "bigdata_integer": 0.38,
    "specint_integer": 0.41,
    "cloudsuite_integer": 0.34,
    "tpcc_integer": 0.33,
    "tpcc_branch": 0.30,
}

MIX_METRICS = ("ratio_integer", "ratio_fp", "ratio_branch", "ratio_load", "ratio_store")


@dataclass
class InstructionMixResult:
    """Per-workload and per-group instruction mixes."""

    workload_rows: List[list] = field(default_factory=list)
    suite_rows: List[list] = field(default_factory=list)
    group_rows: List[list] = field(default_factory=list)
    bigdata_branch: float = 0.0
    bigdata_integer: float = 0.0

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-workload/suite/group mixes + averages."""
        headers = ["workload"] + list(MIX_METRICS)
        metrics = flatten_rows("workload", headers, self.workload_rows)
        metrics.update(flatten_rows("suite", headers, self.suite_rows))
        metrics.update(
            flatten_rows("group", ["group", "ratio_branch", "ratio_integer"],
                         self.group_rows)
        )
        metrics["bigdata.ratio_branch"] = self.bigdata_branch
        metrics["bigdata.ratio_integer"] = self.bigdata_integer
        return metrics

    def render(self) -> str:
        headers = ["workload", "integer", "fp", "branch", "load", "store"]
        parts = [
            render_table(headers, self.workload_rows,
                         title="Figure 1 — instruction breakdown (big data workloads)"),
            render_table(headers, self.suite_rows,
                         title="\nFigure 1 — instruction breakdown (comparison suites)"),
            render_table(["group", "branch", "integer"], self.group_rows,
                         title="\n§5.1 subclass averages"),
            (
                f"\nbig data averages: branch {self.bigdata_branch:.3f} "
                f"(paper {PAPER_AVERAGES['bigdata_branch']}), integer "
                f"{self.bigdata_integer:.3f} (paper {PAPER_AVERAGES['bigdata_integer']})"
            ),
        ]
        return "\n".join(parts)


def run(context: ExperimentContext) -> InstructionMixResult:
    """Regenerate Figure 1's data."""
    result = InstructionMixResult()

    for definition in REPRESENTATIVE_WORKLOADS + MPI_WORKLOADS:
        metrics = context.counters(definition.workload_id).metric_dict()
        result.workload_rows.append(
            [definition.workload_id] + [metrics[m] for m in MIX_METRICS]
        )

    for suite_name in SUITES:
        row = [suite_name] + [
            context.suite_average(suite_name, metric) for metric in MIX_METRICS
        ]
        result.suite_rows.append(row)

    for category in CATEGORY_GROUPS:
        result.group_rows.append(
            [
                f"category: {category}",
                context.group_average("ratio_branch", "category", category),
                context.group_average("ratio_integer", "category", category),
            ]
        )
    for behavior in BEHAVIOR_GROUPS:
        result.group_rows.append(
            [
                f"behavior: {behavior}",
                context.group_average("ratio_branch", "behavior", behavior),
                context.group_average("ratio_integer", "behavior", behavior),
            ]
        )

    result.bigdata_branch = context.bigdata_average("ratio_branch")
    result.bigdata_integer = context.bigdata_average("ratio_integer")
    return result
