"""Table 4 / §5.1: branch-prediction comparison of E5645 vs D510.

The paper profiles the big data workloads on both platforms and finds
average misprediction ratios of 2.8% (Xeon E5645, hybrid predictor
with loop counter, indirect predictor and 8192-entry BTB) versus 7.8%
(Atom D510, two-level global predictor, 128-entry BTB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table
from repro.workloads import REPRESENTATIVE_WORKLOADS

PAPER = {"e5645_mispred": 0.028, "d510_mispred": 0.078}


@dataclass
class BranchStudyResult:
    rows: List[list] = field(default_factory=list)
    e5645_avg: float = 0.0
    d510_avg: float = 0.0

    @property
    def ratio(self) -> float:
        """How many times worse the D510 predicts (paper ~2.8x)."""
        return self.d510_avg / max(1e-9, self.e5645_avg)

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-workload misprediction + platform means."""
        from repro.obs.registry import flatten_rows

        metrics = flatten_rows(
            "workload", ["workload", "e5645_mispred", "d510_mispred"],
            self.rows,
        )
        metrics["summary.e5645_mispred"] = self.e5645_avg
        metrics["summary.d510_mispred"] = self.d510_avg
        metrics["summary.ratio"] = self.ratio
        return metrics

    def render(self) -> str:
        table = render_table(
            ["workload", "E5645 mispred", "D510 mispred"],
            self.rows,
            title="Table 4 study — branch misprediction by platform",
        )
        summary = (
            f"\naverages: E5645 {self.e5645_avg:.3f} "
            f"(paper {PAPER['e5645_mispred']}), D510 {self.d510_avg:.3f} "
            f"(paper {PAPER['d510_mispred']}); ratio {self.ratio:.1f}x "
            f"(paper ~2.8x)"
        )
        return table + summary


def run(context: ExperimentContext) -> BranchStudyResult:
    """Profile the 17 representatives on both platforms."""
    result = BranchStudyResult()
    n = len(REPRESENTATIVE_WORKLOADS)
    for definition in REPRESENTATIVE_WORKLOADS:
        xeon = context.counters(definition.workload_id, context.xeon)
        atom = context.counters(definition.workload_id, context.atom)
        result.rows.append(
            [
                definition.workload_id,
                xeon.branch_mispred_ratio,
                atom.branch_mispred_ratio,
            ]
        )
        result.e5645_avg += xeon.branch_mispred_ratio / n
        result.d510_avg += atom.branch_mispred_ratio / n
    return result
