"""§5.5: the software-stack impact study.

The same six algorithms implemented with MPI versus Hadoop/Spark.
Paper reference points:

- IPC: M-WordCount 1.8 vs Hadoop 1.1 and Spark 0.9; MPI average 1.4 vs
  1.16 for the others (a 21% gap).
- L1I MPKI: M-WordCount 2 vs Hadoop 7 and Spark 17 — one order of
  magnitude between stacks; MPI average 3.4 vs 12.6.
- L2/L3: M-WordCount 0.8/0.1 vs Hadoop 8.4/1.9 and Spark 16/2.7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table

#: Algorithm -> implementations present in the catalog (or MPI set).
ALGORITHM_STACKS = {
    "WordCount": ("M-WordCount", "H-WordCount", "S-WordCount"),
    "Grep": ("M-Grep", "H-Grep", "S-Grep"),
    "Sort": ("M-Sort", "H-Sort", "S-Sort"),
    "Kmeans": ("M-Kmeans", "H-Kmeans", "S-Kmeans"),
    "PageRank": ("M-PageRank", "H-PageRank", "S-PageRank"),
    "Bayes": ("M-Bayes", "H-NaiveBayes"),
}

PAPER = {
    "m_wordcount_ipc": 1.8,
    "h_wordcount_ipc": 1.1,
    "s_wordcount_ipc": 0.9,
    "mpi_avg_ipc": 1.4,
    "others_avg_ipc": 1.16,
    "m_wordcount_l1i": 2.0,
    "h_wordcount_l1i": 7.0,
    "s_wordcount_l1i": 17.0,
    "mpi_avg_l1i": 3.4,
    "others_avg_l1i": 12.6,
}


@dataclass
class StackImpactResult:
    rows: List[list] = field(default_factory=list)
    mpi_avg: Dict[str, float] = field(default_factory=dict)
    others_avg: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc_gap(self) -> float:
        """Relative IPC advantage of the MPI versions (§5.5's 21%)."""
        return self.mpi_avg["ipc"] / self.others_avg["ipc"] - 1.0

    @property
    def l1i_ratio(self) -> float:
        """How many times larger the JVM stacks' L1I MPKI is."""
        return self.others_avg["l1i_mpki"] / max(1e-9, self.mpi_avg["l1i_mpki"])

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-workload numbers + §5.5 summary gaps."""
        from repro.obs.registry import flatten_rows

        metrics = flatten_rows(
            "workload", ["workload"] + list(METRICS), self.rows
        )
        for metric in METRICS:
            metrics[f"mpi_avg.{metric}"] = self.mpi_avg[metric]
            metrics[f"others_avg.{metric}"] = self.others_avg[metric]
        metrics["summary.ipc_gap"] = self.ipc_gap
        metrics["summary.l1i_ratio"] = self.l1i_ratio
        return metrics

    def to_dict(self) -> dict:
        """Machine-readable form (``repro stacks --json`` payload)."""
        return {
            "rows": [list(row) for row in self.rows],
            "mpi_avg": dict(self.mpi_avg),
            "others_avg": dict(self.others_avg),
            "ipc_gap": self.ipc_gap,
            "l1i_ratio": self.l1i_ratio,
        }

    def render(self) -> str:
        table = render_table(
            ["workload", "IPC", "L1I", "L2", "L3"],
            self.rows,
            title="§5.5 — software-stack impact (Xeon E5645)",
        )
        summary = (
            f"\nMPI averages: IPC {self.mpi_avg['ipc']:.2f} "
            f"(paper {PAPER['mpi_avg_ipc']}), L1I {self.mpi_avg['l1i_mpki']:.1f} "
            f"(paper {PAPER['mpi_avg_l1i']})\n"
            f"Hadoop/Spark averages: IPC {self.others_avg['ipc']:.2f} "
            f"(paper {PAPER['others_avg_ipc']}), L1I {self.others_avg['l1i_mpki']:.1f} "
            f"(paper {PAPER['others_avg_l1i']})\n"
            f"IPC gap {100 * self.ipc_gap:.0f}% (paper 21%), "
            f"L1I ratio {self.l1i_ratio:.1f}x (paper ~3.7x; "
            f"order of magnitude for WordCount)"
        )
        return table + summary


METRICS = ("ipc", "l1i_mpki", "l2_mpki", "l3_mpki")


def run(context: ExperimentContext) -> StackImpactResult:
    """Regenerate the §5.5 comparison."""
    result = StackImpactResult()
    mpi_samples: List[Dict[str, float]] = []
    other_samples: List[Dict[str, float]] = []
    for algorithm, workload_ids in ALGORITHM_STACKS.items():
        for workload_id in workload_ids:
            metrics = context.counters(workload_id).metric_dict()
            result.rows.append(
                [workload_id] + [metrics[m] for m in METRICS]
            )
            bucket = mpi_samples if workload_id.startswith("M-") else other_samples
            bucket.append(metrics)
    for metric in METRICS:
        result.mpi_avg[metric] = sum(s[metric] for s in mpi_samples) / len(mpi_samples)
        result.others_avg[metric] = sum(
            s[metric] for s in other_samples
        ) / len(other_samples)
    return result
