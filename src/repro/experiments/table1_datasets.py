"""Table 1: the seven seed datasets and their generators.

Regenerates the catalog (description, generator tool, record size) and
verifies each generator produces data with the expected shape at a
small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.datagen import (
    DATASETS,
    EcommerceTransactions,
    FacebookSocialGraph,
    GoogleWebGraph,
    ProfSearchResumes,
    TpcDsWebTables,
    WikipediaCorpus,
)
from repro.datagen.text import AmazonReviews
from repro.report.tables import render_table


@dataclass
class DatasetCatalogResult:
    rows: List[list] = field(default_factory=list)

    def fidelity_metrics(self) -> dict:
        """Registry metrics: the numeric shape statistics per dataset."""
        from repro.obs.registry import flatten_rows

        return flatten_rows(
            "dataset",
            ["dataset", "generator", "record_bytes", "sample"],
            self.rows,
        )

    def render(self) -> str:
        return render_table(
            ["dataset", "generator", "record bytes", "sample statistic"],
            self.rows,
            title="Table 1 — datasets and generation tools",
        )


def run(scale: float = 0.01) -> DatasetCatalogResult:
    """Exercise every generator and report a shape statistic."""
    result = DatasetCatalogResult()

    wiki = WikipediaCorpus()
    docs = list(wiki.documents(20))
    mean_words = sum(len(d.split()) for d in docs) / len(docs)
    samples = {
        "wikipedia": f"{mean_words:.0f} words/article",
    }

    amazon = AmazonReviews()
    reviews = list(amazon.reviews(50))
    five_star = sum(1 for _, score in reviews if score == 5) / len(reviews)
    samples["amazon"] = f"{100 * five_star:.0f}% five-star"

    google = GoogleWebGraph(scale=scale)
    edges = google.edges()
    samples["google_graph"] = (
        f"{google.config.n_nodes} nodes, {len(edges)} edges"
    )

    facebook = FacebookSocialGraph(scale=0.2)
    fb_edges = facebook.edges()
    samples["facebook_graph"] = (
        f"mean degree {len(fb_edges) / facebook.config.n_nodes:.1f}"
    )

    ecommerce = EcommerceTransactions()
    orders = list(ecommerce.orders(100))
    items = list(ecommerce.items(100))
    samples["ecommerce"] = f"{len(items) / len(orders):.1f} items/order"

    resumes = ProfSearchResumes()
    row = next(resumes.rows(1))
    samples["profsearch"] = f"{row.size_bytes()} bytes/resume"

    tpcds = TpcDsWebTables(scale=0.05).generate()
    sizes = TpcDsWebTables.sizes(tpcds)
    samples["tpcds_web"] = f"{len(sizes)} tables, {sizes['web_sales']} sales"

    for name, spec in DATASETS.items():
        result.rows.append(
            [name, spec.generator_tool, spec.record_bytes, samples[name]]
        )
    return result
