"""Figure 4: L1I / L2 / L3 cache behaviour of every workload.

Paper reference points: big data averages L1I MPKI 15 (CloudSuite 32),
L2 MPKI 11, L3 MPKI 1.2; subclass L1I (service 51, data analysis 13,
interactive 14; CPU 8, I/O 22, hybrid 9); H-Read's L1I of 51; L2 per
category (service 32, data analysis 11, interactive 8); L3 per
category (service 1.2, data analysis 1.7, interactive 0.8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.comparison import SUITES
from repro.experiments.runner import (
    BEHAVIOR_GROUPS,
    CATEGORY_GROUPS,
    ExperimentContext,
)
from repro.report.tables import render_table
from repro.workloads import MPI_WORKLOADS, REPRESENTATIVE_WORKLOADS

PAPER = {
    "bigdata_l1i": 15.0,
    "bigdata_l2": 11.0,
    "bigdata_l3": 1.2,
    "cloudsuite_l1i": 32.0,
    "h_read_l1i": 51.0,
    "service_l1i": 51.0,
    "data_analysis_l1i": 13.0,
    "interactive_l1i": 14.0,
}

LEVELS = ("l1i_mpki", "l1d_mpki", "l2_mpki", "l3_mpki")


@dataclass
class CacheBehaviorResult:
    workload_rows: List[list] = field(default_factory=list)
    suite_rows: List[list] = field(default_factory=list)
    group_rows: List[list] = field(default_factory=list)
    bigdata: Dict[str, float] = field(default_factory=dict)

    def fidelity_metrics(self) -> dict:
        """Registry metrics: MPKI per workload/suite/group + means."""
        from repro.obs.registry import flatten_rows

        headers = ["workload"] + list(LEVELS)
        metrics = flatten_rows("workload", headers, self.workload_rows)
        metrics.update(flatten_rows("suite", headers, self.suite_rows))
        metrics.update(
            flatten_rows("group",
                         ["group", "l1i_mpki", "l2_mpki", "l3_mpki"],
                         self.group_rows)
        )
        for level, value in self.bigdata.items():
            metrics[f"bigdata.{level}"] = value
        return metrics

    def render(self) -> str:
        headers = ["workload", "L1I", "L1D", "L2", "L3"]
        parts = [
            render_table(headers, self.workload_rows,
                         title="Figure 4 — cache MPKI (Xeon E5645)"),
            render_table(["suite", "L1I", "L1D", "L2", "L3"], self.suite_rows,
                         title="\nsuite averages"),
            render_table(["group", "L1I", "L2", "L3"], self.group_rows,
                         title="\nsubclass averages"),
            (
                f"\nbig data averages: L1I {self.bigdata['l1i_mpki']:.1f} "
                f"(paper {PAPER['bigdata_l1i']}), L2 {self.bigdata['l2_mpki']:.1f} "
                f"(paper {PAPER['bigdata_l2']}), L3 {self.bigdata['l3_mpki']:.2f} "
                f"(paper {PAPER['bigdata_l3']})"
            ),
        ]
        return "\n".join(parts)


def run(context: ExperimentContext) -> CacheBehaviorResult:
    """Regenerate Figure 4's data."""
    result = CacheBehaviorResult()
    for definition in REPRESENTATIVE_WORKLOADS + MPI_WORKLOADS:
        metrics = context.counters(definition.workload_id).metric_dict()
        result.workload_rows.append(
            [definition.workload_id] + [metrics[level] for level in LEVELS]
        )
    for suite_name in SUITES:
        result.suite_rows.append(
            [suite_name]
            + [context.suite_average(suite_name, level) for level in LEVELS]
        )
    for category in CATEGORY_GROUPS:
        result.group_rows.append(
            [f"category: {category}"]
            + [
                context.group_average(level, "category", category)
                for level in ("l1i_mpki", "l2_mpki", "l3_mpki")
            ]
        )
    for behavior in BEHAVIOR_GROUPS:
        result.group_rows.append(
            [f"behavior: {behavior}"]
            + [
                context.group_average(level, "behavior", behavior)
                for level in ("l1i_mpki", "l2_mpki", "l3_mpki")
            ]
        )
    for level in LEVELS:
        result.bigdata[level] = context.bigdata_average(level)
    return result
