"""Figures 6-9: miss ratio versus cache capacity (the §5.4 MARSSx86 study).

The paper's simulator configuration: Atom-like in-order single core,
8-way L1 with 64-byte lines, L1 size swept from 16 KB to 8192 KB;
Hadoop workloads sampled in five segments (Map 0-1%, Map 50-51%,
Map 99-100%, Reduce 0-1%, Reduce 99-100%) and compared against PARSEC
(simsmall) and, for Figure 9, the MPI versions.

Expected shapes:

- Figure 6 (instruction): Hadoop's curve sits far above PARSEC's and
  flattens only around 1024 KB; PARSEC flattens by 128 KB.
- Figure 7 (data): the curves are close beyond 64 KB.
- Figure 8 (unified): the curves converge beyond 1024 KB.
- Figure 9: the MPI versions match PARSEC, far below Hadoop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.comparison import PARSEC
from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_series
from repro.uarch.simulator import DEFAULT_SIZES_KB, CacheSweepSimulator, SweepResult

#: The Hadoop workloads of the §5.4 case study.
HADOOP_WORKLOADS = ("H-WordCount", "H-Grep", "H-Sort", "H-NaiveBayes", "H-Index")

#: The MPI versions added for Figure 9.
MPI_WORKLOADS_F9 = ("M-WordCount", "M-Grep", "M-Sort", "M-Bayes")

PAPER_KNEES_KB = {"hadoop_instruction": 1024, "parsec_instruction": 128}


@dataclass
class LocalityResult:
    """All four figures' curves."""

    sizes_kb: List[int]
    instruction: Dict[str, List[float]]  # Figure 6 (+ MPI for Figure 9)
    data: Dict[str, List[float]]         # Figure 7
    unified: Dict[str, List[float]]      # Figure 8
    knees_kb: Dict[str, int]

    def fidelity_metrics(self) -> dict:
        """Registry metrics: the footprint knees + each curve's floor."""
        metrics = {
            f"knee_kb.{label}": float(knee)
            for label, knee in self.knees_kb.items()
        }
        for kind, curves in (
            ("instruction", self.instruction),
            ("data", self.data),
            ("unified", self.unified),
        ):
            for label, ratios in curves.items():
                metrics[f"floor.{kind}.{label}"] = min(ratios)
                metrics[f"start.{kind}.{label}"] = ratios[0]
        return metrics

    def render(self) -> str:
        parts = [
            render_series("KB", self.sizes_kb,
                          {k: v for k, v in self.instruction.items()
                           if k != "MPI-workloads"},
                          title="Figure 6 — instruction cache miss ratio vs size"),
            render_series("KB", self.sizes_kb, self.data,
                          title="\nFigure 7 — data cache miss ratio vs size"),
            render_series("KB", self.sizes_kb, self.unified,
                          title="\nFigure 8 — unified miss ratio vs size"),
            render_series("KB", self.sizes_kb, self.instruction,
                          title="\nFigure 9 — instruction miss ratio incl. MPI"),
            f"\nfootprint knees (curve within 10% of its floor): {self.knees_kb}"
            f"\npaper: Hadoop ≈ {PAPER_KNEES_KB['hadoop_instruction']} KB, "
            f"PARSEC ≈ {PAPER_KNEES_KB['parsec_instruction']} KB",
        ]
        return "\n".join(parts)


def _average(simulator: CacheSweepSimulator, curves: List[SweepResult],
             name: str) -> SweepResult:
    return CacheSweepSimulator.average_curves(name, curves)


def run(context: ExperimentContext, trace_refs: int = 40_000) -> LocalityResult:
    """Regenerate Figures 6-9.

    Hadoop workloads are simulated per the paper's five-segment rule:
    each run is sampled at Map 0-1% / 50-51% / 99-100% and Reduce
    0-1% / 99-100%, and the per-segment sweeps are combined as a
    weighted mean (:meth:`CacheSweepSimulator.weighted_curve`).
    """
    simulator = CacheSweepSimulator(trace_refs=trace_refs)

    hadoop_results = [
        context.result(workload_id) for workload_id in HADOOP_WORKLOADS
    ]
    parsec_profiles = [bench.profile(scale=context.scale) for bench in PARSEC[:6]]
    mpi_profiles = [
        context.result(workload_id).profile for workload_id in MPI_WORKLOADS_F9
    ]

    def one_curve(profile, kind: str) -> SweepResult:
        if kind == "instruction":
            return simulator.instruction_curve(profile.name, profile.code)
        if kind == "data":
            return simulator.data_curve(profile.name, profile.data)
        return simulator.unified_curve(profile.name, profile.code, profile.data)

    def curves(profiles, kind: str) -> List[SweepResult]:
        return [one_curve(profile, kind) for profile in profiles]

    def hadoop_curves(kind: str) -> List[SweepResult]:
        """One five-segment weighted curve per Hadoop workload."""
        results = []
        for result in hadoop_results:
            if result.segments:
                parts = [
                    (one_curve(profile, kind), weight)
                    for profile, weight in result.segments
                ]
                results.append(
                    CacheSweepSimulator.weighted_curve(result.name, parts)
                )
            else:
                results.append(one_curve(result.profile, kind))
        return results

    instruction = {}
    data = {}
    unified = {}
    knees = {}
    for label, curve_sets in (
        ("Hadoop-workloads",
         {kind: hadoop_curves(kind) for kind in ("instruction", "data", "unified")}),
        ("PARSEC-workloads",
         {kind: curves(parsec_profiles, kind)
          for kind in ("instruction", "data", "unified")}),
    ):
        icurve = _average(simulator, curve_sets["instruction"], label)
        dcurve = _average(simulator, curve_sets["data"], label)
        ucurve = _average(simulator, curve_sets["unified"], label)
        instruction[label] = icurve.miss_ratios
        data[label] = dcurve.miss_ratios
        unified[label] = ucurve.miss_ratios
        knee = icurve.knee_kb()
        knees[label] = knee if knee is not None else -1

    mpi_curve = _average(
        simulator, curves(mpi_profiles, "instruction"), "MPI-workloads"
    )
    instruction["MPI-workloads"] = mpi_curve.miss_ratios
    knee = mpi_curve.knee_kb()
    knees["MPI-workloads"] = knee if knee is not None else -1

    return LocalityResult(
        sizes_kb=list(DEFAULT_SIZES_KB),
        instruction=instruction,
        data=data,
        unified=unified,
        knees_kb=knees,
    )
