"""Figure 3: IPC of every workload on the Xeon E5645.

Paper reference points: big data average 1.28 vs SPECFP 1.1, SPECINT
0.9, PARSEC 1.28, HPCC 1.5; subclass averages (service 0.8, data
analysis 1.2, interactive 1.3; CPU 1.3, I/O 1.2, hybrid 1.3); notable
individuals H-Read 0.8, S-Project 1.6, S-TPC-DS-query8 1.7 and the
CloudSuite service average 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.comparison import SUITES
from repro.experiments.runner import (
    BEHAVIOR_GROUPS,
    CATEGORY_GROUPS,
    ExperimentContext,
)
from repro.report.tables import render_table
from repro.workloads import MPI_WORKLOADS, REPRESENTATIVE_WORKLOADS

PAPER = {
    "bigdata": 1.28,
    "SPECINT": 0.9,
    "SPECFP": 1.1,
    "PARSEC": 1.28,
    "HPCC": 1.5,
    "service": 0.8,
    "data analysis": 1.2,
    "interactive analysis": 1.3,
    "H-Read": 0.8,
}


@dataclass
class IpcResult:
    workload_rows: List[list] = field(default_factory=list)
    suite_ipcs: Dict[str, float] = field(default_factory=dict)
    group_rows: List[list] = field(default_factory=list)
    bigdata_ipc: float = 0.0

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-workload/suite/group IPC + the mean."""
        from repro.obs.registry import flatten_rows

        metrics = flatten_rows("workload", ["workload", "ipc"],
                               self.workload_rows)
        for name, ipc in self.suite_ipcs.items():
            metrics[f"suite.{name}.ipc"] = ipc
        metrics.update(flatten_rows("group", ["group", "ipc"],
                                    self.group_rows))
        metrics["bigdata.ipc"] = self.bigdata_ipc
        return metrics

    def render(self) -> str:
        parts = [
            render_table(["workload", "IPC"], self.workload_rows,
                         title="Figure 3 — IPC (Xeon E5645)"),
            render_table(
                ["suite", "IPC", "paper"],
                [
                    [name, ipc, PAPER.get(name, "-")]
                    for name, ipc in self.suite_ipcs.items()
                ],
                title="\nsuite averages",
            ),
            render_table(["group", "IPC"], self.group_rows,
                         title="\nsubclass averages"),
            f"\nbig data average IPC {self.bigdata_ipc:.2f} (paper {PAPER['bigdata']})",
        ]
        return "\n".join(parts)


def run(context: ExperimentContext) -> IpcResult:
    """Regenerate Figure 3's data."""
    result = IpcResult()
    for definition in REPRESENTATIVE_WORKLOADS + MPI_WORKLOADS:
        ipc = context.counters(definition.workload_id).ipc
        result.workload_rows.append([definition.workload_id, ipc])
    for suite_name in SUITES:
        result.suite_ipcs[suite_name] = context.suite_average(suite_name, "ipc")
    for category in CATEGORY_GROUPS:
        result.group_rows.append(
            [f"category: {category}",
             context.group_average("ipc", "category", category)]
        )
    for behavior in BEHAVIOR_GROUPS:
        result.group_rows.append(
            [f"behavior: {behavior}",
             context.group_average("ipc", "behavior", behavior)]
        )
    result.bigdata_ipc = context.bigdata_average("ipc")
    return result
