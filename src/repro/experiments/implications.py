"""§5.1 implications: floating-point capacity utilisation.

"The E5645 processors can achieve 57.6 GFLOPS in theory, but the
average floating point performance of big data workloads is about 0.1
GFLOPS … incurring a serious waste of floating point capacity and
hence die size."  This experiment regenerates that statistic per
workload and per suite, plus the branch-prediction implication numbers
(misprediction × penalty = flushed-cycle share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.comparison import SUITES
from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table
from repro.workloads import REPRESENTATIVE_WORKLOADS

PAPER = {
    "peak_gflops": 57.6,
    "bigdata_gflops": 0.1,
}


@dataclass
class ImplicationsResult:
    workload_rows: List[list] = field(default_factory=list)
    suite_rows: List[list] = field(default_factory=list)
    bigdata_gflops: float = 0.0
    bigdata_fp_utilization: float = 0.0
    bigdata_flush_share: float = 0.0

    def render(self) -> str:
        parts = [
            render_table(
                ["workload", "GFLOPS", "FP capacity used", "flush cycle share"],
                self.workload_rows,
                title="§5.1 implications — FP capacity and speculation waste",
            ),
            render_table(
                ["suite", "GFLOPS", "FP capacity used"],
                self.suite_rows,
                title="\nsuite averages",
            ),
            (
                f"\nbig data mean {self.bigdata_gflops:.2f} GFLOPS of "
                f"{PAPER['peak_gflops']} peak "
                f"({100 * self.bigdata_fp_utilization:.1f}% used; paper: "
                f"~{PAPER['bigdata_gflops']} GFLOPS) — "
                f"{100 * self.bigdata_flush_share:.1f}% of cycles lost to "
                f"branch flushes"
            ),
        ]
        return "\n".join(parts)


def run(context: ExperimentContext) -> ImplicationsResult:
    """Regenerate the §5.1 implication statistics."""
    result = ImplicationsResult()
    peak = context.xeon.peak_gflops
    n = len(REPRESENTATIVE_WORKLOADS)
    for definition in REPRESENTATIVE_WORKLOADS:
        metrics = context.counters(definition.workload_id).metric_dict()
        gflops = metrics["gflops"]
        flush = metrics["branch_stall_ratio"]
        result.workload_rows.append(
            [definition.workload_id, gflops, gflops / peak, flush]
        )
        result.bigdata_gflops += gflops / n
        result.bigdata_flush_share += flush / n
    result.bigdata_fp_utilization = result.bigdata_gflops / peak

    for suite_name in SUITES:
        gflops = context.suite_average(suite_name, "gflops")
        result.suite_rows.append([suite_name, gflops, gflops / peak])
    return result
