"""Chaos soak: seeded fault campaigns with full invariant auditing.

Where ``fault_resilience`` demonstrates *stack* behaviour under one
crash, the soak interrogates the *simulator*: every campaign seed
derives a fresh scenario per workload x stack cell (crash storms,
rolling degradations, partition flaps, crashes landing inside recovery
windows) and an :class:`~repro.chaos.InvariantAuditor` watches each run
from the inside.  Jobs may recover or abort — both are legitimate —
but conservation laws, leak-freedom and clock monotonicity must hold
for every seed, which is what makes the paper's fault-injected numbers
trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.chaos import CampaignResult, run_campaign
from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table

#: Campaign seeds per soak (the CLI's ``--seeds`` overrides this).
DEFAULT_SEEDS = 5

#: The default soak sweeps two workloads so the experiment stays
#: interactive; ``repro chaos`` can widen to the full matrix.
DEFAULT_WORKLOADS = ("wordcount", "grep")


@dataclass
class ChaosSoakResult:
    """Verdicts for every campaign in one soak."""

    scale: float
    campaigns: List[CampaignResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(campaign.clean for campaign in self.campaigns)

    @property
    def n_cases(self) -> int:
        return sum(len(campaign.cases) for campaign in self.campaigns)

    @property
    def n_violations(self) -> int:
        return sum(
            len(case.violations)
            for campaign in self.campaigns
            for case in campaign.cases
        )

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-campaign verdicts + soak summary."""
        metrics = {}
        for campaign in self.campaigns:
            outcomes = [case.outcome for case in campaign.cases]
            prefix = f"campaign.{campaign.seed}"
            metrics[f"{prefix}.cases"] = float(len(campaign.cases))
            metrics[f"{prefix}.recovered"] = float(
                outcomes.count("recovered")
            )
            metrics[f"{prefix}.aborted"] = float(outcomes.count("aborted"))
            metrics[f"{prefix}.violations"] = float(
                sum(len(case.violations) for case in campaign.cases)
            )
        metrics["summary.cases"] = float(self.n_cases)
        metrics["summary.violations"] = float(self.n_violations)
        metrics["summary.clean"] = float(self.clean)
        return metrics

    def to_dict(self) -> dict:
        """Machine-readable form (``repro chaos --json``)."""
        return {
            "scale": self.scale,
            "clean": self.clean,
            "cases": self.n_cases,
            "violations": self.n_violations,
            "campaigns": [campaign.to_dict() for campaign in self.campaigns],
        }

    def render(self) -> str:
        rows = []
        for campaign in self.campaigns:
            outcomes = [case.outcome for case in campaign.cases]
            scenarios = sorted({case.case.scenario for case in campaign.cases})
            rows.append(
                [
                    campaign.seed,
                    len(campaign.cases),
                    outcomes.count("recovered"),
                    outcomes.count("aborted"),
                    sum(len(case.violations) for case in campaign.cases),
                    ", ".join(scenarios),
                ]
            )
        table = render_table(
            ["seed", "cases", "recovered", "aborted", "violations",
             "scenarios"],
            rows,
            title=f"Chaos soak — seeded fault campaigns (scale {self.scale})",
        )
        if self.clean:
            verdict = (
                f"\nall {self.n_cases} audited cases clean: conservation, "
                f"leak and clock invariants held under every campaign."
            )
        else:
            dirty = [
                f"seed {campaign.seed} {case.case.workload}/{case.case.stack}"
                f" ({case.violations[0].invariant})"
                for campaign in self.campaigns
                for case in campaign.cases
                if not case.clean
            ]
            verdict = (
                f"\n{self.n_violations} INVARIANT VIOLATION(S): "
                + "; ".join(dirty)
            )
        return table + verdict


def run(
    context: ExperimentContext,
    seeds: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    stacks: Optional[Sequence[str]] = None,
) -> ChaosSoakResult:
    """Run ``seeds`` campaigns starting at ``context.seed``."""
    n_seeds = seeds if seeds is not None else DEFAULT_SEEDS
    chosen = workloads if workloads is not None else DEFAULT_WORKLOADS
    result = ChaosSoakResult(scale=context.scale)
    for seed in range(context.seed, context.seed + n_seeds):
        with context.time_experiment(f"chaos-seed-{seed}"):
            result.campaigns.append(
                run_campaign(
                    seed, workloads=chosen, stacks=stacks,
                    scale=context.scale,
                )
            )
    return result
