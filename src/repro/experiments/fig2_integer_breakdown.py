"""Figure 2: what the integer instructions of big data workloads do.

The paper instruments the source code and finds, on average, 64% of
integer instructions calculating integer-array addresses, 18%
calculating floating-point-array addresses and 18% other computation —
and combines this with Figure 1 into the headline statistic: ~73% of
all instructions are data movement (load/store + address arithmetic),
rising to 92% with branches included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table
from repro.uarch.isa import data_movement_share, data_movement_with_branches
from repro.workloads import REPRESENTATIVE_WORKLOADS

PAPER = {
    "int_addr": 0.64,
    "fp_addr": 0.18,
    "other": 0.18,
    "data_movement": 0.73,
    "with_branches": 0.92,
}


@dataclass
class IntegerBreakdownResult:
    rows: List[list] = field(default_factory=list)
    avg_int_addr: float = 0.0
    avg_fp_addr: float = 0.0
    avg_other: float = 0.0
    avg_data_movement: float = 0.0
    avg_with_branches: float = 0.0

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-workload breakdown + §5.1 averages."""
        from repro.obs.registry import flatten_rows

        metrics = flatten_rows(
            "workload",
            ["workload", "int_addr", "fp_addr", "other", "data_movement",
             "with_branches"],
            self.rows,
        )
        metrics.update(
            {
                "avg.int_addr": self.avg_int_addr,
                "avg.fp_addr": self.avg_fp_addr,
                "avg.other": self.avg_other,
                "avg.data_movement": self.avg_data_movement,
                "avg.with_branches": self.avg_with_branches,
            }
        )
        return metrics

    def render(self) -> str:
        table = render_table(
            ["workload", "int addr", "fp addr", "other", "data movement", "+branches"],
            self.rows,
            title="Figure 2 — integer instruction breakdown",
        )
        summary = (
            f"\naverages: int addr {self.avg_int_addr:.2f} (paper {PAPER['int_addr']}), "
            f"fp addr {self.avg_fp_addr:.2f} (paper {PAPER['fp_addr']}), "
            f"other {self.avg_other:.2f} (paper {PAPER['other']})\n"
            f"data movement share {self.avg_data_movement:.2f} (paper ~{PAPER['data_movement']}), "
            f"with branches {self.avg_with_branches:.2f} (paper up to {PAPER['with_branches']})"
        )
        return table + summary


def run(context: ExperimentContext) -> IntegerBreakdownResult:
    """Regenerate Figure 2's data plus the §5.1 shares."""
    result = IntegerBreakdownResult()
    n = len(REPRESENTATIVE_WORKLOADS)
    for definition in REPRESENTATIVE_WORKLOADS:
        counters = context.counters(definition.workload_id)
        breakdown = counters.int_breakdown
        movement = data_movement_share(counters.mix, breakdown)
        with_branches = data_movement_with_branches(counters.mix, breakdown)
        result.rows.append(
            [
                definition.workload_id,
                breakdown.int_addr,
                breakdown.fp_addr,
                breakdown.other,
                movement,
                with_branches,
            ]
        )
        result.avg_int_addr += breakdown.int_addr / n
        result.avg_fp_addr += breakdown.fp_addr / n
        result.avg_other += breakdown.other / n
        result.avg_data_movement += movement / n
        result.avg_with_branches += with_branches / n
    return result
