"""Table 2 / §3: the WCRT reduction of the 77 workloads to 17.

Runs the full pipeline (characterize all 77 → normalise → PCA →
K-means with K = 17 → pick centroid-nearest representatives) and
compares the resulting cluster structure with Table 2: seventeen
clusters whose sizes sum to 77, with the paper's representatives (or
close stack/operation relatives) leading the large clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.subsetting import ReductionResult
from repro.core.wcrt import Wcrt
from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table
from repro.workloads import ALL_WORKLOADS, REPRESENTATIVE_WORKLOADS

#: Table 2's representative -> represents counts.
PAPER_CLUSTER_SIZES = {
    definition.workload_id: definition.represents
    for definition in REPRESENTATIVE_WORKLOADS
}


@dataclass
class ReductionExperimentResult:
    reduction: ReductionResult = None
    rows: List[list] = field(default_factory=list)
    representative_hits: int = 0

    @property
    def n_clusters(self) -> int:
        return self.reduction.n_clusters

    @property
    def members_total(self) -> int:
        return sum(len(m) for m in self.reduction.clusters.values())

    def fidelity_metrics(self) -> dict:
        """Registry metrics: cluster structure + Table 2 summary."""
        metrics = {
            f"cluster.{representative}.size": float(len(members))
            for representative, members in self.reduction.clusters.items()
        }
        metrics["summary.n_clusters"] = float(self.n_clusters)
        metrics["summary.members_total"] = float(self.members_total)
        metrics["summary.representative_hits"] = float(
            self.representative_hits
        )
        return metrics

    def to_dict(self) -> dict:
        """Machine-readable form (``repro reduce --json`` payload)."""
        return {
            "n_clusters": self.n_clusters,
            "members_total": self.members_total,
            "representative_hits": self.representative_hits,
            "clusters": {
                representative: sorted(members)
                for representative, members in self.reduction.clusters.items()
            },
        }

    def render(self) -> str:
        table = render_table(
            ["representative", "represents", "members"],
            self.rows,
            title="Table 2 — WCRT reduction (77 workloads, K = 17)",
        )
        summary = (
            f"\nclusters: {self.n_clusters} (paper: 17); "
            f"cluster sizes sum to "
            f"{sum(len(m) for m in self.reduction.clusters.values())} (paper: 77)\n"
            f"{self.representative_hits}/17 clusters are led by a paper "
            f"representative or contain one"
        )
        return table + summary


def run(
    context: ExperimentContext, k: int = 17, seed: int = 0
) -> ReductionExperimentResult:
    """Run the reduction on the full 77-workload catalog."""
    wcrt = Wcrt(n_profilers=5, scale=context.scale)
    reduction = wcrt.reduce(ALL_WORKLOADS, k=k, seed=seed)

    result = ReductionExperimentResult(reduction=reduction)
    paper_ids = set(PAPER_CLUSTER_SIZES)
    for representative in reduction.representatives:
        members = reduction.clusters[representative]
        result.rows.append(
            [
                representative,
                len(members),
                ", ".join(m for m in members if m != representative)[:72],
            ]
        )
        if representative in paper_ids or any(m in paper_ids for m in members):
            result.representative_hits += 1
    return result
