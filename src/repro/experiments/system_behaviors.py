"""§3.2: system- and data-behaviour classification of the representatives.

Runs each of the 17 representatives on the 5-node discrete-event
cluster, measures CPU utilisation / I/O wait / weighted disk I/O time,
applies the paper's §3.2.1 rules, and derives the §3.2.2 data-behaviour
buckets — regenerating the corresponding Table 2 columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.experiments.runner import ExperimentContext
from repro.report.tables import render_table
from repro.system.classify import characterize_system
from repro.workloads import REPRESENTATIVE_WORKLOADS


@dataclass
class SystemBehaviorResult:
    rows: List[list] = field(default_factory=list)
    matches: int = 0
    total: int = 0

    @property
    def match_ratio(self) -> float:
        return self.matches / max(1, self.total)

    def fidelity_metrics(self) -> dict:
        """Registry metrics: per-workload utilisation + match summary."""
        from repro.obs.registry import flatten_rows

        metrics = flatten_rows(
            "workload",
            ["workload", "cpu_utilization", "io_wait_ratio",
             "weighted_io_time_ratio"],
            [row[:4] for row in self.rows],
        )
        for row in self.rows:
            metrics[f"workload.{row[0]}.matches"] = float(row[4] == row[5])
        metrics["summary.matches"] = float(self.matches)
        metrics["summary.total"] = float(self.total)
        metrics["summary.match_ratio"] = self.match_ratio
        return metrics

    def to_dict(self) -> dict:
        """Machine-readable form (``repro system --json`` payload)."""
        return {
            "rows": [list(row) for row in self.rows],
            "matches": self.matches,
            "total": self.total,
            "match_ratio": self.match_ratio,
        }

    def render(self) -> str:
        table = render_table(
            ["workload", "cpu util", "iowait", "wIO", "measured", "Table 2",
             "data behaviour"],
            self.rows,
            title="§3.2 — system behaviour classification (5-node cluster)",
        )
        summary = (
            f"\n{self.matches}/{self.total} match Table 2's system-"
            f"behaviour column"
        )
        return table + summary


def run(context: ExperimentContext) -> SystemBehaviorResult:
    """Classify every representative."""
    result = SystemBehaviorResult()
    for definition in REPRESENTATIVE_WORKLOADS:
        characterization = characterize_system(
            definition, scale=context.scale, seed=context.seed
        )
        metrics = characterization.metrics
        result.rows.append(
            [
                definition.workload_id,
                metrics.cpu_utilization,
                metrics.io_wait_ratio,
                metrics.weighted_io_time_ratio,
                characterization.system_behavior.value,
                definition.expected_system_behavior.value,
                characterization.data_behavior.describe(),
            ]
        )
        result.total += 1
        if characterization.matches_expected:
            result.matches += 1
    return result
