"""Shared experiment context: run-once caching of characterizations.

Figures 1, 3, 4 and 5 all consume the same per-workload perf-counter
samples; the context memoises workload executions, behaviour profiles
and characterizations per platform so a full experiment session costs
one sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.comparison import SUITES
from repro.obs.metrics import CounterRegistry
from repro.obs.registry import RunRecord, build_provenance
from repro.stacks.base import WorkloadResult
from repro.uarch.counters import PerfCounters, characterize
from repro.uarch.platforms import ATOM_D510, XEON_E5645, Platform
from repro.workloads import MPI_WORKLOADS, REPRESENTATIVE_WORKLOADS, workload

#: Application-category and system-behaviour groupings used by several
#: figures ("from the application category dimension ...").
CATEGORY_GROUPS = ("data analysis", "service", "interactive analysis")
BEHAVIOR_GROUPS = ("CPU-Intensive", "IO-Intensive", "Hybrid")


class ExperimentContext:
    """Caches workload runs and characterizations for one session."""

    def __init__(self, scale: float = 0.5, seed: int = 0):
        self.scale = scale
        self.seed = seed
        self._results: Dict[str, WorkloadResult] = {}
        self._counters: Dict[tuple, PerfCounters] = {}
        self._suite_counters: Dict[tuple, List[PerfCounters]] = {}
        #: Wall-clock accounting: ``workload.<id>.seconds/.calls`` per
        #: cached execution, read back via :meth:`timing_lines`.
        self.registry = CounterRegistry()

    # ---- workload layer ---------------------------------------------------
    def result(self, workload_id: str) -> WorkloadResult:
        """Functional + profiled execution of one catalog workload."""
        if workload_id not in self._results:
            definition = workload(workload_id)
            with self.registry.timer(f"workload.{workload_id}"):
                self._results[workload_id] = definition.runner(
                    scale=self.scale, seed=self.seed
                )
        return self._results[workload_id]

    def counters(
        self, workload_id: str, platform: Platform = XEON_E5645
    ) -> PerfCounters:
        """Characterization of one workload on one platform."""
        key = (workload_id, platform.name)
        if key not in self._counters:
            profile = self.result(workload_id).profile
            self._counters[key] = characterize(
                profile, platform, seed=1234 + self.seed
            )
        return self._counters[key]

    def representative_counters(
        self, platform: Platform = XEON_E5645
    ) -> Dict[str, PerfCounters]:
        """Counters for the 17 representatives, in Table 2 order."""
        return {
            definition.workload_id: self.counters(
                definition.workload_id, platform
            )
            for definition in REPRESENTATIVE_WORKLOADS
        }

    def mpi_counters(
        self, platform: Platform = XEON_E5645
    ) -> Dict[str, PerfCounters]:
        """Counters for the six MPI workloads of §4.1."""
        return {
            definition.workload_id: self.counters(
                definition.workload_id, platform
            )
            for definition in MPI_WORKLOADS
        }

    # ---- comparison suites ---------------------------------------------------
    def suite_counters(
        self, suite_name: str, platform: Platform = XEON_E5645
    ) -> List[PerfCounters]:
        """Counters for every member of a comparison suite."""
        key = (suite_name, platform.name)
        if key not in self._suite_counters:
            benchmarks = SUITES[suite_name]
            samples = []
            for benchmark in benchmarks:
                profile = benchmark.profile(scale=self.scale)
                samples.append(
                    characterize(profile, platform, seed=1234 + self.seed)
                )
            self._suite_counters[key] = samples
        return self._suite_counters[key]

    def suite_average(
        self, suite_name: str, metric: str, platform: Platform = XEON_E5645
    ) -> float:
        """Suite-mean of one metric."""
        samples = self.suite_counters(suite_name, platform)
        values = [sample.metric_dict()[metric] for sample in samples]
        return sum(values) / len(values)

    # ---- grouping helpers -------------------------------------------------------
    def category_of(self, workload_id: str) -> str:
        return workload(workload_id).category.value

    def behavior_of(self, workload_id: str) -> str:
        return workload(workload_id).expected_system_behavior.value

    def group_average(
        self,
        metric: str,
        group_kind: str,
        group_value: str,
        platform: Platform = XEON_E5645,
    ) -> float:
        """Mean of a metric over a category or behaviour subgroup of the
        17 representatives (the paper's per-subclass averages)."""
        chooser = (
            self.category_of if group_kind == "category" else self.behavior_of
        )
        values = [
            self.counters(d.workload_id, platform).metric_dict()[metric]
            for d in REPRESENTATIVE_WORKLOADS
            if chooser(d.workload_id) == group_value
        ]
        if not values:
            raise ValueError(f"no representatives in group {group_value!r}")
        return sum(values) / len(values)

    def bigdata_average(
        self, metric: str, platform: Platform = XEON_E5645
    ) -> float:
        """Mean of a metric over all 17 representatives."""
        values = [
            self.counters(d.workload_id, platform).metric_dict()[metric]
            for d in REPRESENTATIVE_WORKLOADS
        ]
        return sum(values) / len(values)

    @property
    def atom(self) -> Platform:
        return ATOM_D510

    @property
    def xeon(self) -> Platform:
        return XEON_E5645

    # ---- cell decomposition (parallel sweeps) -----------------------------
    # A session's expensive substrate is the per-(workload, platform)
    # characterization; each is an independent seeded cell the
    # repro.exec executor can run in another process and hand back as a
    # lossless PerfCounters payload for the cache below.
    def counter_cells(self, pairs) -> list:
        """Sweep cells for the (workload_id, platform) pairs not cached."""
        from repro.exec.cells import SweepCell

        platform_keys = {XEON_E5645.name: "e5645", ATOM_D510.name: "d510"}
        cells = []
        for workload_id, platform in pairs:
            if (workload_id, platform.name) in self._counters:
                continue
            cells.append(SweepCell(
                workload=workload_id,
                platform=platform_keys[platform.name],
                scale=self.scale,
                seed=self.seed,
            ))
        return cells

    def adopt_cells(self, results) -> int:
        """Install completed characterize cells into the counters cache.

        ``results`` is a ``cell_id -> CellResult`` mapping whose
        ``counters`` payloads were produced by
        :func:`repro.exec.cells.characterize_cell`; rehydration is
        lossless, so a primed context is bit-identical to a serial one.
        """
        from repro.exec.cells import platform_for

        adopted = 0
        for result in results.values():
            if result.status != "ok" or not result.counters:
                continue
            counters = PerfCounters.from_dict(result.counters)
            platform = platform_for(
                "e5645" if counters.platform == XEON_E5645.name else "d510"
            )
            self._counters[(counters.workload, platform.name)] = counters
            adopted += 1
        return adopted

    def prime(
        self,
        pairs,
        *,
        jobs: int,
        cell_timeout: float = None,
        checkpoint=None,
        resume: bool = False,
        tracer=None,
        observer=None,
    ):
        """Characterize the given pairs across ``jobs`` worker processes.

        Returns the executor's :class:`~repro.exec.supervisor.SweepOutcome`
        (telemetry rides into the run record's quarantined ``timings``).
        Quarantined cells are simply not adopted: the experiment falls
        back to computing them serially in-process, so a poison cell
        degrades throughput, never correctness.  ``tracer``/``observer``
        pass straight through to the executor's observability hooks.
        """
        from repro.exec.supervisor import DEFAULT_CELL_TIMEOUT, SweepExecutor

        cells = self.counter_cells(pairs)
        executor = SweepExecutor(
            jobs=jobs,
            cell_timeout=(
                cell_timeout if cell_timeout else DEFAULT_CELL_TIMEOUT
            ),
            tracer=tracer,
            observer=observer,
        )
        outcome = executor.run(cells, checkpoint=checkpoint, resume=resume)
        self.adopt_cells(outcome.results)
        for name, value in outcome.telemetry.items():
            self.registry.add(f"exec.{name}", value)
        return outcome

    # ---- wall-clock accounting ---------------------------------------------
    def time_experiment(self, name: str):
        """Context manager timing one experiment under ``experiment.<name>``."""
        return self.registry.timer(f"experiment.{name}")

    def timing_lines(self) -> List[str]:
        """One ``name: seconds`` line per timed workload and experiment."""
        lines = []
        for key, value in self.registry.snapshot().items():
            if not key.endswith(".seconds"):
                continue
            name = key[: -len(".seconds")]
            lines.append(f"{name}: {value:.3f}s wall")
        return lines

    # ---- run records --------------------------------------------------------
    def make_record(
        self,
        experiment: str,
        metrics: Dict[str, float],
        *,
        kind: str = "experiment",
        platforms: Optional[List[str]] = None,
        series: Optional[Dict[str, object]] = None,
        config: Optional[Dict[str, object]] = None,
    ) -> RunRecord:
        """A registry record of one experiment run under this context.

        Provenance captures this context's seed/scale plus any
        experiment-specific ``config``; the wall-clock counter snapshot
        rides along under ``timings`` (informational — never part of a
        drift comparison).
        """
        return RunRecord(
            experiment=experiment,
            kind=kind,
            metrics=dict(metrics),
            provenance=build_provenance(
                experiment=experiment,
                seed=self.seed,
                scale=self.scale,
                platforms=(
                    list(platforms)
                    if platforms is not None
                    else [XEON_E5645.name]
                ),
                config=config,
            ),
            series=dict(series) if series else {},
            timings=self.registry.snapshot(),
        )
