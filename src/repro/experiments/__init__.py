"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(context) -> result`` where ``context`` is an
:class:`repro.experiments.runner.ExperimentContext` (which caches
workload characterizations so the figures share one measurement sweep),
and each result renders the same rows/series the paper reports next to
the paper's own numbers.
"""

from repro.experiments.runner import ExperimentContext

__all__ = ["ExperimentContext"]
