"""Set-associative cache simulation.

A straightforward trace-driven LRU model: the same machinery serves the
perf-counter pipeline (L1I/L1D/L2/L3 MPKI of Figure 4) and the MARSSx86-
style capacity sweeps of Figures 6-9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.uarch.profile import LINE_BYTES


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        name: Level label ("L1I", "L2", ...).
        size_bytes: Total capacity.
        ways: Associativity.
        line_bytes: Cache line size.
    """

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


class SetAssociativeCache:
    """An LRU set-associative cache over cache-line addresses.

    Addresses passed to :meth:`access` are *line numbers* (byte address
    divided by the line size); the caller is responsible for that
    conversion so that traces can be generated directly in line space.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._ways = config.ways
        # Per-set list of tags; index 0 is LRU, the last element is MRU.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses / accesses (0 when no accesses occurred)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def access(self, line: int) -> bool:
        """Reference a line; returns True on hit.

        Misses allocate the line (write-allocate, fetch-on-miss) and evict
        the LRU way when the set is full.
        """
        index = line % self._num_sets
        tag = line // self._num_sets
        ways = self._sets[index]
        if tag in ways:
            # Move to MRU position.
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self._ways:
            ways.pop(0)
        ways.append(tag)
        return False

    def run(self, lines: Iterable[int]) -> int:
        """Access a whole trace; returns the number of misses it caused."""
        before = self.misses
        access = self.access
        for line in lines:
            access(line)
        return self.misses - before

    def reset_stats(self) -> None:
        """Zero hit/miss counters without flushing cache contents."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Empty the cache and zero the counters."""
        self._sets = [[] for _ in range(self._num_sets)]
        self.reset_stats()


@dataclass
class LevelStats:
    """Access/miss statistics for one level of a hierarchy."""

    name: str
    accesses: int
    misses: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: float) -> float:
        """Misses per kilo-instruction for a run of ``instructions``."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.misses / instructions


class CacheHierarchy:
    """L1I + L1D backed by a unified L2 and a shared L3.

    Inclusive counting model: every L1 miss is an L2 access; every L2 miss
    is an L3 access; L3 misses go off-core.  This matches how the paper's
    MPKI metrics are computed from PMU events.
    """

    def __init__(
        self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        l3: Optional[CacheConfig] = None,
    ):
        self.l1i = SetAssociativeCache(l1i)
        self.l1d = SetAssociativeCache(l1d)
        self.l2 = SetAssociativeCache(l2)
        self.l3 = SetAssociativeCache(l3) if l3 is not None else None
        self.offcore_accesses = 0
        # Per-source refill accounting: where instruction-side and
        # data-side L1 misses were ultimately served from.  Keys are
        # ("l2" | "l3" | "mem"); the pipeline model weights each by its
        # latency.
        self.fetch_fills = {"l2": 0, "l3": 0, "mem": 0}
        self.data_fills = {"l2": 0, "l3": 0, "mem": 0}

    def fetch(self, line: int) -> None:
        """Instruction fetch of one cache line."""
        if not self.l1i.access(line):
            self._fill_from_l2(line, self.fetch_fills)

    def load_store(self, line: int) -> None:
        """Data reference of one cache line."""
        if not self.l1d.access(line):
            self._fill_from_l2(line, self.data_fills)

    def _fill_from_l2(self, line: int, fills: dict) -> None:
        if self.l2.access(line):
            fills["l2"] += 1
            return
        if self.l3 is None:
            fills["mem"] += 1
            self.offcore_accesses += 1
            return
        if self.l3.access(line):
            fills["l3"] += 1
        else:
            fills["mem"] += 1
            self.offcore_accesses += 1

    def stats(self) -> List[LevelStats]:
        """Per-level statistics, L1I first."""
        levels = [
            LevelStats("L1I", self.l1i.accesses, self.l1i.misses),
            LevelStats("L1D", self.l1d.accesses, self.l1d.misses),
            LevelStats("L2", self.l2.accesses, self.l2.misses),
        ]
        if self.l3 is not None:
            levels.append(LevelStats("L3", self.l3.accesses, self.l3.misses))
        return levels

    def reset_stats(self) -> None:
        """Zero every level's counters (cache contents are preserved)."""
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            if cache is not None:
                cache.reset_stats()
        self.offcore_accesses = 0
        self.fetch_fills = {"l2": 0, "l3": 0, "mem": 0}
        self.data_fills = {"l2": 0, "l3": 0, "mem": 0}
