"""Machine configurations used in the paper (Tables 3 and 4).

Two platforms are modelled:

- **Intel Xeon E5645** (Table 3) — the paper's main testbed: 6 cores at
  2.40 GHz, 32 KB L1I + 32 KB L1D per core, 256 KB L2 per core, 12 MB
  shared L3; out-of-order; hybrid branch prediction with loop counter,
  indirect predictor and an 8192-entry BTB (Table 4).
- **Intel Atom D510** (Table 4) — the low-power comparison point for the
  branch study: in-order, two-level adaptive predictor with a global
  history table, no indirect predictor, 128-entry BTB, 15-cycle
  misprediction penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.uarch.branch import HybridPredictor, Predictor, SimplePredictor
from repro.uarch.cache import CacheConfig, CacheHierarchy
from repro.uarch.tlb import Tlb, TlbConfig


@dataclass(frozen=True)
class MemoryLatencies:
    """Load-to-use latencies beyond L1, in core cycles."""

    l2_hit: float
    l3_hit: float
    memory: float

    def __post_init__(self) -> None:
        if not 0 < self.l2_hit <= self.l3_hit <= self.memory:
            raise ValueError("latencies must be positive and increasing")


@dataclass(frozen=True)
class Platform:
    """A complete machine model.

    Attributes:
        name: Marketing name.
        frequency_ghz: Core clock.
        cores: Core count.
        issue_width: Sustainable retire width (instructions/cycle).
        out_of_order: Whether the core reorders around stalls.
        l1i / l1d / l2 / l3: Cache geometries (``l3`` may be None).
        itlb / dtlb: TLB geometries.
        predictor_factory: Builds a fresh branch predictor.
        branch_penalty: Pipeline-flush cost of a misprediction (cycles).
        latencies: Memory hierarchy latencies.
        tlb_penalty: Page-walk cost on a TLB miss (cycles).
        stall_hiding: Fraction of (l2, l3, memory) data-stall cycles the
            core overlaps with useful work; an out-of-order window hides
            much of the L2/L3 latency, an in-order core almost none.
        peak_gflops: Theoretical FP throughput (the §5.1 implication about
            wasted floating-point capacity).
    """

    name: str
    frequency_ghz: float
    cores: int
    issue_width: int
    out_of_order: bool
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    l3: Optional[CacheConfig]
    itlb: TlbConfig
    dtlb: TlbConfig
    predictor_factory: Callable[[], Predictor] = field(repr=False)
    branch_penalty: float = 12.0
    latencies: MemoryLatencies = MemoryLatencies(10.0, 38.0, 190.0)
    tlb_penalty: float = 30.0
    stall_hiding: tuple = (0.85, 0.65, 0.40)
    peak_gflops: float = 57.6

    def make_hierarchy(self) -> CacheHierarchy:
        """A fresh cache hierarchy for one characterization run."""
        return CacheHierarchy(self.l1i, self.l1d, self.l2, self.l3)

    def make_predictor(self) -> Predictor:
        """A fresh branch predictor for one characterization run."""
        return self.predictor_factory()

    def make_itlb(self) -> Tlb:
        return Tlb(self.itlb)

    def make_dtlb(self) -> Tlb:
        return Tlb(self.dtlb)


#: The paper's main testbed (Table 3), micro-architectural details from
#: Table 4 and the Nehalem/Westmere documentation.
XEON_E5645 = Platform(
    name="Intel Xeon E5645",
    frequency_ghz=2.40,
    cores=6,
    issue_width=4,
    out_of_order=True,
    l1i=CacheConfig("L1I", 32 * 1024, ways=4),
    l1d=CacheConfig("L1D", 32 * 1024, ways=8),
    l2=CacheConfig("L2", 256 * 1024, ways=8),
    l3=CacheConfig("L3", 12 * 1024 * 1024, ways=16),
    itlb=TlbConfig("ITLB", entries=512, ways=4),
    dtlb=TlbConfig("DTLB", entries=512, ways=4),
    predictor_factory=HybridPredictor,
    branch_penalty=12.0,  # Table 4: 11-13 cycles
    latencies=MemoryLatencies(l2_hit=10.0, l3_hit=38.0, memory=190.0),
    tlb_penalty=30.0,
    stall_hiding=(0.85, 0.65, 0.40),
    peak_gflops=57.6,  # quoted in §5.1 implications
)

#: The low-power comparison platform of the branch-prediction study.
ATOM_D510 = Platform(
    name="Intel Atom D510",
    frequency_ghz=1.66,
    cores=2,
    issue_width=2,
    out_of_order=False,
    l1i=CacheConfig("L1I", 32 * 1024, ways=8),
    l1d=CacheConfig("L1D", 24 * 1024, ways=6),
    l2=CacheConfig("L2", 512 * 1024, ways=8),
    l3=None,
    itlb=TlbConfig("ITLB", entries=32, ways=4),
    dtlb=TlbConfig("DTLB", entries=64, ways=4),
    predictor_factory=SimplePredictor,
    branch_penalty=15.0,  # Table 4
    latencies=MemoryLatencies(l2_hit=15.0, l3_hit=16.0, memory=140.0),
    tlb_penalty=30.0,
    stall_hiding=(0.15, 0.10, 0.05),
    peak_gflops=6.6,
)
