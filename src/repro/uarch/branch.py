"""Branch predictor simulation (Table 4 and §5.1 of the paper).

Two predictor organisations are modelled after the paper's comparison:

- :class:`SimplePredictor` — the Intel Atom D510: a two-level adaptive
  predictor with a global history table, no indirect-branch predictor
  (indirect targets come from the BTB's last-target entry) and a
  128-entry BTB.
- :class:`HybridPredictor` — the Intel Xeon E5645: a hybrid combining a
  (local-history) two-level predictor, a bimodal fallback with a chooser,
  and a loop counter; plus a history-based indirect predictor and an
  8192-entry BTB.

Branch event streams are synthesised from a workload's
:class:`repro.uarch.profile.BranchProfile` by :class:`BranchStreamGenerator`
and replayed through a predictor by :func:`simulate_branches`.

Outcome accounting distinguishes *mispredictions* (wrong direction or
wrong indirect target — a full pipeline flush) from *misfetches* (correct
direction but the BTB lacked the target — a short fetch bubble); hardware
counts these separately and so do we.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.uarch.profile import BranchProfile


class BranchOutcome(enum.Enum):
    """Result of one prediction."""

    CORRECT = "correct"
    MISPREDICT = "mispredict"
    MISFETCH = "misfetch"


@dataclass(frozen=True)
class BranchEvent:
    """One dynamic branch: its site, outcome and (if taken) target."""

    pc: int
    taken: bool
    is_indirect: bool
    target: int


def _hash_pc(pc: int) -> int:
    """Scatter branch PCs across prediction tables.

    Real tables index with low PC bits, which are well-distributed for
    real code layouts; our synthetic PCs are strided within per-kind
    regions, so a multiplicative hash restores uniform spread and avoids
    pathological aliasing between regions.
    """
    return ((pc >> 4) * 0x9E3779B1) >> 8


class SaturatingCounterTable:
    """A table of 2-bit saturating counters, the classic PHT building block."""

    def __init__(self, entries: int, initial: int = 2):
        if entries <= 0:
            raise ValueError("entries must be positive")
        if not 0 <= initial <= 3:
            raise ValueError("initial counter value must be in [0, 3]")
        self._mask = entries - 1
        if entries & self._mask:
            raise ValueError("entries must be a power of two")
        self._counters = [initial] * entries

    def predict(self, index: int) -> bool:
        """Predict taken when the counter's high bit is set."""
        return self._counters[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        value = self._counters[i]
        if taken:
            if value < 3:
                self._counters[i] = value + 1
        elif value > 0:
            self._counters[i] = value - 1


class BranchTargetBuffer:
    """A set-associative BTB over branch PCs.

    A taken branch whose PC misses in the BTB is a *misfetch*: the front
    end cannot redirect until the target is computed, costing a short
    bubble rather than a full flush.
    """

    def __init__(self, entries: int, ways: int = 4):
        if entries % ways != 0:
            raise ValueError("entries must be divisible by ways")
        self._ways = ways
        self._num_sets = entries // ways
        self._sets: List[List[List[int]]] = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> Optional[int]:
        """Return the stored target for ``pc``, or None on BTB miss."""
        ways = self._sets[_hash_pc(pc) % self._num_sets]
        for i, entry in enumerate(ways):
            if entry[0] == pc:
                ways.append(ways.pop(i))
                self.hits += 1
                return entry[1]
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        ways = self._sets[_hash_pc(pc) % self._num_sets]
        for i, entry in enumerate(ways):
            if entry[0] == pc:
                entry[1] = target
                ways.append(ways.pop(i))
                return
        if len(ways) >= self._ways:
            ways.pop(0)
        ways.append([pc, target])

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class TwoLevelGlobalPredictor:
    """Two-level adaptive predictor with a global history register.

    The global history is XOR-folded with the branch PC (gshare indexing)
    into a pattern history table of 2-bit counters.  This is the paper's
    model of the Atom D510 conditional predictor: with many interleaved
    branch sites the global history carries little per-branch signal, so
    accuracy degrades towards bimodal behaviour with aliasing noise.
    """

    def __init__(self, history_bits: int = 2, table_entries: int = 4096):
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._pht = SaturatingCounterTable(table_entries)

    def _index(self, pc: int) -> int:
        # PC-dominant indexing: with a short global history the PHT entry
        # is mostly per-branch, degrading gracefully towards bimodal
        # behaviour when history carries no per-branch signal.
        return _hash_pc(pc) ^ (self._history << 1)

    def predict(self, pc: int) -> bool:
        return self._pht.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._pht.update(self._index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask


class LocalHistoryPredictor:
    """Two-level predictor with per-branch (local) history.

    Each branch PC owns a shift register of its own recent outcomes; the
    pattern table is indexed by (PC, local history).  Local history makes
    per-branch patterns learnable even when many branch sites interleave
    arbitrarily — the key accuracy advantage modelled for the E5645's
    hybrid predictor over the Atom's global-history scheme.
    """

    def __init__(
        self,
        history_bits: int = 8,
        history_entries: int = 4096,
        table_entries: int = 1 << 18,
    ):
        self._history_mask = (1 << history_bits) - 1
        self._history_bits = history_bits
        self._histories = [0] * history_entries
        self._history_index_mask = history_entries - 1
        if history_entries & self._history_index_mask:
            raise ValueError("history_entries must be a power of two")
        self._pht = SaturatingCounterTable(table_entries)

    def _index(self, pc: int) -> int:
        slot = _hash_pc(pc) & self._history_index_mask
        history = self._histories[slot]
        return (slot << self._history_bits) | history

    def predict(self, pc: int) -> bool:
        return self._pht.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._pht.update(self._index(pc), taken)
        slot = _hash_pc(pc) & self._history_index_mask
        self._histories[slot] = (
            (self._histories[slot] << 1) | int(taken)
        ) & self._history_mask


class BimodalPredictor:
    """Per-PC 2-bit counters — the floor any decent predictor achieves."""

    def __init__(self, table_entries: int = 16384):
        self._pht = SaturatingCounterTable(table_entries)

    def predict(self, pc: int) -> bool:
        return self._pht.predict(_hash_pc(pc))

    def update(self, pc: int, taken: bool) -> None:
        self._pht.update(_hash_pc(pc), taken)


class LoopPredictor:
    """Detects branches with fixed trip counts and predicts the exit.

    Per-PC entries track the current iteration count and the last observed
    trip count; once the same trip count has been seen twice, the entry is
    confident and predicts not-taken exactly at the trip boundary.
    Entries are managed LRU so hot loops stay resident.
    """

    def __init__(self, entries: int = 1024):
        self._entries = entries
        # pc -> [current_count, last_trip, confident]; dict order is LRU.
        self._table: dict = {}

    def _touch(self, pc: int, entry: list) -> None:
        # Re-insert to refresh recency (Python dicts preserve order).
        del self._table[pc]
        self._table[pc] = entry

    def predict(self, pc: int) -> Optional[bool]:
        """Confident prediction for ``pc`` or None when unsure."""
        entry = self._table.get(pc)
        if entry is None or not entry[2]:
            return None
        current, trip, _ = entry
        return current < trip

    def update(self, pc: int, taken: bool) -> None:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self._entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = [1 if taken else 0, -1, False]
            return
        if taken:
            entry[0] += 1
        else:
            observed_trip = entry[0]
            entry[2] = entry[1] == observed_trip
            entry[1] = observed_trip
            entry[0] = 0
        self._touch(pc, entry)


class IndirectPredictor:
    """Target predictor for indirect jumps and calls.

    Models the E5645's dedicated indirect predictor (Table 4): a
    history-indexed target cache backed by a per-PC most-frequent-target
    table (real predictors converge on the dominant target of mostly-
    monomorphic virtual-dispatch sites; plain last-target BTBs do not).
    """

    def __init__(self, entries: int = 2048, history_bits: int = 4):
        self._history_table: dict = {}
        self._freq_table: dict = {}
        self._entries = entries
        self._history = 0
        self._mask = (1 << history_bits) - 1

    def _dominant(self, pc: int) -> Optional[int]:
        counts = self._freq_table.get(pc)
        if not counts:
            return None
        return max(counts, key=counts.get)

    def predict(self, pc: int) -> Optional[int]:
        predicted = self._history_table.get((pc, self._history))
        if predicted is not None:
            return predicted
        return self._dominant(pc)

    def update(self, pc: int, target: int) -> None:
        if len(self._history_table) >= self._entries:
            self._history_table.pop(next(iter(self._history_table)))
        self._history_table[(pc, self._history)] = target
        counts = self._freq_table.get(pc)
        if counts is None:
            if len(self._freq_table) >= self._entries:
                self._freq_table.pop(next(iter(self._freq_table)))
            counts = self._freq_table[pc] = {}
        counts[target] = counts.get(target, 0) + 1
        if len(counts) > 8:
            # Periodically halve so stale targets age out.
            for key in list(counts):
                counts[key] //= 2
                if counts[key] == 0:
                    del counts[key]
        self._history = ((self._history << 1) ^ (target & 0x7)) & self._mask


class Predictor:
    """Common front-end predictor interface: direction + target."""

    name = "abstract"

    def predict_and_update(self, event: BranchEvent) -> BranchOutcome:
        """Process one branch and classify the prediction outcome."""
        raise NotImplementedError


class SimplePredictor(Predictor):
    """Atom-D510-class front end (Table 4, left column)."""

    name = "two-level-global"

    def __init__(
        self,
        history_bits: int = 2,
        table_entries: int = 4096,
        btb_entries: int = 128,
    ):
        self.direction = TwoLevelGlobalPredictor(history_bits, table_entries)
        self.btb = BranchTargetBuffer(btb_entries)

    def predict_and_update(self, event: BranchEvent) -> BranchOutcome:
        if event.is_indirect:
            # No indirect predictor: the BTB's last target is the guess;
            # a wrong target is a full misprediction.
            predicted_target = self.btb.lookup(event.pc)
            self.btb.update(event.pc, event.target)
            if predicted_target == event.target:
                return BranchOutcome.CORRECT
            return BranchOutcome.MISPREDICT
        predicted = self.direction.predict(event.pc)
        self.direction.update(event.pc, event.taken)
        if predicted != event.taken:
            return BranchOutcome.MISPREDICT
        if event.taken:
            in_btb = self.btb.lookup(event.pc) == event.target
            self.btb.update(event.pc, event.target)
            if not in_btb:
                return BranchOutcome.MISFETCH
        return BranchOutcome.CORRECT


class HybridPredictor(Predictor):
    """Xeon-E5645-class front end (Table 4, right column)."""

    name = "hybrid"

    def __init__(
        self,
        history_bits: int = 8,
        table_entries: int = 1 << 18,
        btb_entries: int = 8192,
        loop_entries: int = 1024,
    ):
        self.local = LocalHistoryPredictor(
            history_bits=history_bits, table_entries=table_entries
        )
        self.bimodal = BimodalPredictor()
        self.chooser = SaturatingCounterTable(16384)
        self.loop = LoopPredictor(loop_entries)
        self.indirect = IndirectPredictor()
        self.btb = BranchTargetBuffer(btb_entries)

    def predict_and_update(self, event: BranchEvent) -> BranchOutcome:
        if event.is_indirect:
            predicted_target = self.indirect.predict(event.pc)
            if predicted_target is None:
                predicted_target = self.btb.lookup(event.pc)
            else:
                self.btb.lookup(event.pc)  # keep BTB stats comparable
            self.indirect.update(event.pc, event.target)
            self.btb.update(event.pc, event.target)
            if predicted_target == event.target:
                return BranchOutcome.CORRECT
            return BranchOutcome.MISPREDICT

        loop_prediction = self.loop.predict(event.pc)
        local_prediction = self.local.predict(event.pc)
        bimodal_prediction = self.bimodal.predict(event.pc)
        # The chooser tracks which component has served this PC better.
        use_local = self.chooser.predict(_hash_pc(event.pc))
        if loop_prediction is not None:
            predicted = loop_prediction
        elif use_local:
            predicted = local_prediction
        else:
            predicted = bimodal_prediction

        # Update every component; train the chooser towards the component
        # that was right when they disagreed.
        if local_prediction != bimodal_prediction:
            self.chooser.update(_hash_pc(event.pc), local_prediction == event.taken)
        self.local.update(event.pc, event.taken)
        self.bimodal.update(event.pc, event.taken)
        self.loop.update(event.pc, event.taken)

        if predicted != event.taken:
            return BranchOutcome.MISPREDICT
        if event.taken:
            in_btb = self.btb.lookup(event.pc) == event.target
            self.btb.update(event.pc, event.target)
            if not in_btb:
                return BranchOutcome.MISFETCH
        return BranchOutcome.CORRECT


class BranchStreamGenerator:
    """Synthesises dynamic branch events from a :class:`BranchProfile`.

    Static sites are instantiated per kind (loop / patterned /
    data-dependent / indirect) and dynamic branches are drawn from a
    skewed (Zipf-like) popularity distribution over the sites, reflecting
    hot kernel loops versus cold framework code.
    """

    #: Skew of dynamic execution over static branch sites.  Real programs
    #: concentrate the vast majority of dynamic branches in a few hot
    #: sites (inner loops); 1.3 puts most dynamic branches in the top few
    #: dozen sites while still exercising the long tail.
    SITE_ZIPF = 1.6

    #: Taken bias within repeating patterns (e.g. a bounds check that
    #: passes three times out of four).
    PATTERN_TAKEN_BIAS = 0.75

    #: Probability that an indirect branch jumps to its site's dominant
    #: target (virtual dispatch is usually monomorphic-dominated).
    INDIRECT_DOMINANT_PROB = 0.85

    def __init__(self, profile: BranchProfile, seed: int = 7):
        self.profile = profile
        self._rng = np.random.default_rng(seed)
        kinds = np.array(
            [
                profile.loop_fraction,
                profile.pattern_fraction,
                profile.data_dependent_fraction,
            ]
        )
        site_counts = np.maximum(1, (kinds * profile.static_sites).astype(int))
        self._loop_sites = self._make_loop_sites(int(site_counts[0]))
        self._pattern_sites = self._make_pattern_sites(int(site_counts[1]))
        self._datadep_sites = int(site_counts[2])
        self._indirect_sites = max(1, profile.static_sites // 32)

    def _make_loop_sites(self, count: int) -> List[int]:
        trips = self._rng.geometric(1.0 / self.profile.loop_trip, size=count)
        # Degenerate 2-3 iteration "loops" behave like patterned branches
        # and are modelled there; loop sites get at least 4 trips.
        return [max(4, int(t)) for t in trips]

    def _make_pattern_sites(self, count: int) -> List[np.ndarray]:
        period = self.profile.pattern_period
        n_taken = max(1, int(round(self.PATTERN_TAKEN_BIAS * period)))
        sites = []
        for _ in range(count):
            pattern = np.zeros(period, dtype=bool)
            pattern[: min(n_taken, period)] = True
            self._rng.shuffle(pattern)
            sites.append(pattern)
        return sites

    def _site_popularity(self, count: int, size: int) -> np.ndarray:
        """Zipf-skewed choice of ``size`` site indices in ``[0, count)``."""
        if size == 0:
            return np.empty(0, dtype=np.int64)
        ranks = np.arange(1, count + 1, dtype=float)
        weights = np.power(ranks, -self.SITE_ZIPF)
        weights /= weights.sum()
        return self._rng.choice(count, size=size, p=weights)

    def generate(self, n: int) -> List[BranchEvent]:
        """Generate ``n`` dynamic branch events."""
        profile = self.profile
        rng = self._rng
        events: List[BranchEvent] = []

        kind_probs = np.array(
            [
                profile.loop_fraction * (1 - profile.indirect_fraction),
                profile.pattern_fraction * (1 - profile.indirect_fraction),
                profile.data_dependent_fraction * (1 - profile.indirect_fraction),
                profile.indirect_fraction,
            ]
        )
        kind_probs /= kind_probs.sum()
        kinds = rng.choice(4, size=n, p=kind_probs)

        counts = np.bincount(kinds, minlength=4)
        loop_choice = self._site_popularity(len(self._loop_sites), counts[0])
        pattern_choice = self._site_popularity(len(self._pattern_sites), counts[1])
        datadep_choice = self._site_popularity(self._datadep_sites, counts[2])
        indirect_choice = self._site_popularity(self._indirect_sites, counts[3])
        datadep_outcomes = rng.random(counts[2]) < profile.taken_prob
        indirect_dominant = rng.random(counts[3]) < self.INDIRECT_DOMINANT_PROB
        indirect_minor = rng.integers(
            1, max(2, profile.indirect_targets), size=counts[3]
        )

        loop_iter: dict = {}
        pattern_pos: dict = {}
        idx = [0, 0, 0, 0]
        for kind in kinds:
            if kind == 0:
                site = int(loop_choice[idx[0]])
                idx[0] += 1
                trip = self._loop_sites[site]
                it = loop_iter.get(site, 0)
                taken = it < trip - 1
                loop_iter[site] = 0 if not taken else it + 1
                pc = 0x10000 + site * 16
                events.append(BranchEvent(pc, taken, False, pc - 64))
            elif kind == 1:
                site = int(pattern_choice[idx[1]])
                idx[1] += 1
                pattern = self._pattern_sites[site]
                pos = pattern_pos.get(site, 0)
                taken = bool(pattern[pos])
                pattern_pos[site] = (pos + 1) % len(pattern)
                pc = 0x200000 + site * 16
                events.append(BranchEvent(pc, taken, False, pc + 128))
            elif kind == 2:
                site = int(datadep_choice[idx[2]])
                taken = bool(datadep_outcomes[idx[2]])
                idx[2] += 1
                pc = 0x400000 + site * 16
                events.append(BranchEvent(pc, taken, False, pc + 256))
            else:
                site = int(indirect_choice[idx[3]])
                if indirect_dominant[idx[3]]:
                    target_id = 0
                else:
                    target_id = int(indirect_minor[idx[3]])
                idx[3] += 1
                pc = 0x800000 + site * 16
                events.append(
                    BranchEvent(pc, True, True, 0x900000 + target_id * 64)
                )
        return events


@dataclass
class BranchStats:
    """Outcome of replaying a branch stream through a predictor."""

    branches: int
    mispredictions: int
    misfetches: int
    btb_miss_ratio: float

    @property
    def misprediction_ratio(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def misfetch_ratio(self) -> float:
        return self.misfetches / self.branches if self.branches else 0.0

    def mispredictions_pki(self, instructions: float) -> float:
        """Mispredictions per kilo-instruction."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.mispredictions / instructions


def simulate_branches(
    events: Sequence[BranchEvent], predictor: Predictor
) -> BranchStats:
    """Replay ``events`` through ``predictor`` and collect statistics."""
    mispredictions = 0
    misfetches = 0
    for event in events:
        outcome = predictor.predict_and_update(event)
        if outcome is BranchOutcome.MISPREDICT:
            mispredictions += 1
        elif outcome is BranchOutcome.MISFETCH:
            misfetches += 1
    btb = getattr(predictor, "btb", None)
    btb_miss_ratio = btb.miss_ratio if btb is not None else 0.0
    return BranchStats(
        branches=len(events),
        mispredictions=mispredictions,
        misfetches=misfetches,
        btb_miss_ratio=btb_miss_ratio,
    )
