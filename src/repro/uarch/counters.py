"""Perf-counter collection: the 45-metric characterization of the paper.

:func:`characterize` plays a workload's behaviour profile through the
cache hierarchy, TLBs and branch predictor of a platform (with a warm-up
phase, like the paper's 30-second ramp-up before sampling) and assembles
a :class:`PerfCounters` sample.  :meth:`PerfCounters.metric_vector`
serialises it into the 45-dimensional space used by WCRT for PCA and
K-means clustering (§3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.uarch.branch import BranchStats, BranchStreamGenerator, simulate_branches
from repro.uarch.isa import (
    InstructionClass,
    InstructionMix,
    IntBreakdown,
    data_movement_share,
)
from repro.uarch.pipeline import PipelineStats, model_pipeline
from repro.uarch.platforms import Platform
from repro.uarch.profile import LINE_BYTES, BehaviorProfile
from repro.uarch.trace import (
    code_line_ranges,
    data_line_ranges,
    generate_data_trace,
    generate_fetch_trace,
)
from repro.uarch.tlb import LINES_PER_PAGE

#: Mean retired instructions represented by one fetch-line reference
#: (x86 packs ~16 four-byte instructions per line; taken branches cut
#: fetch runs short well before that).
INSTRUCTIONS_PER_FETCH = 8.0

#: Retired instructions represented by the measured phase of one run.
DEFAULT_SAMPLE_INSTRUCTIONS = 150_000

#: Names of the 45 metrics, in canonical order.  These instantiate the
#: paper's eight metric groups: instruction mix, cache behaviour, TLB
#: behaviour, branch execution, pipeline behaviour, off-core requests and
#: snoop responses, parallelism, and operation intensity.
METRIC_NAMES: List[str] = [
    # instruction mix (9)
    "ratio_load",
    "ratio_store",
    "ratio_branch",
    "ratio_integer",
    "ratio_fp",
    "ratio_other",
    "int_addr_share",
    "fp_addr_share",
    "data_movement_share",
    # cache behaviour (9)
    "l1i_mpki",
    "l1i_miss_ratio",
    "l1d_mpki",
    "l1d_miss_ratio",
    "l2_mpki",
    "l2_miss_ratio",
    "l3_mpki",
    "l3_miss_ratio",
    "l2_instruction_share",
    # TLB behaviour (4)
    "itlb_mpki",
    "itlb_miss_ratio",
    "dtlb_mpki",
    "dtlb_miss_ratio",
    # branch execution (4)
    "branches_pki",
    "branch_mispred_ratio",
    "branch_mispred_pki",
    "btb_miss_ratio",
    # pipeline behaviour (6)
    "ipc",
    "cpi",
    "frontend_stall_ratio",
    "backend_stall_ratio",
    "branch_stall_ratio",
    "retire_utilization",
    # off-core requests and snoop responses (5)
    "offcore_read_pki",
    "offcore_write_pki",
    "offcore_bandwidth_gbps",
    "snoop_hit_ratio",
    "snoop_hitm_ratio",
    # parallelism (4)
    "ilp",
    "mlp",
    "tlp",
    "speculation_ratio",
    # operation intensity (4)
    "int_ops_per_byte",
    "fp_ops_per_byte",
    "instructions_per_byte",
    "gflops",
]


@dataclass
class PerfCounters:
    """One characterization sample: everything the paper reports.

    Attributes mirror PMU-derived quantities; :meth:`metric_vector`
    flattens them into the 45-metric space.
    """

    workload: str
    platform: str
    instructions: float
    mix: InstructionMix
    int_breakdown: IntBreakdown
    l1i_mpki: float
    l1i_miss_ratio: float
    l1d_mpki: float
    l1d_miss_ratio: float
    l2_mpki: float
    l2_miss_ratio: float
    l3_mpki: float
    l3_miss_ratio: float
    l2_instruction_share: float
    itlb_mpki: float
    itlb_miss_ratio: float
    dtlb_mpki: float
    dtlb_miss_ratio: float
    branch_stats: BranchStats
    pipeline: PipelineStats
    offcore_read_pki: float
    offcore_write_pki: float
    offcore_bandwidth_gbps: float
    snoop_hit_ratio: float
    snoop_hitm_ratio: float
    tlp: float
    speculation_ratio: float
    int_ops_per_byte: float
    fp_ops_per_byte: float
    instructions_per_byte: float
    gflops: float
    ilp: float

    @property
    def ipc(self) -> float:
        return self.pipeline.ipc

    @property
    def branch_mispred_ratio(self) -> float:
        return self.branch_stats.misprediction_ratio

    def metric_dict(self) -> Dict[str, float]:
        """All 45 metrics, keyed by :data:`METRIC_NAMES` entries."""
        mix = self.mix
        values = {
            "ratio_load": mix.ratio(InstructionClass.LOAD),
            "ratio_store": mix.ratio(InstructionClass.STORE),
            "ratio_branch": mix.ratio(InstructionClass.BRANCH),
            "ratio_integer": mix.ratio(InstructionClass.INTEGER),
            "ratio_fp": mix.ratio(InstructionClass.FP),
            "ratio_other": mix.ratio(InstructionClass.OTHER),
            "int_addr_share": self.int_breakdown.int_addr,
            "fp_addr_share": self.int_breakdown.fp_addr,
            "data_movement_share": data_movement_share(mix, self.int_breakdown),
            "l1i_mpki": self.l1i_mpki,
            "l1i_miss_ratio": self.l1i_miss_ratio,
            "l1d_mpki": self.l1d_mpki,
            "l1d_miss_ratio": self.l1d_miss_ratio,
            "l2_mpki": self.l2_mpki,
            "l2_miss_ratio": self.l2_miss_ratio,
            "l3_mpki": self.l3_mpki,
            "l3_miss_ratio": self.l3_miss_ratio,
            "l2_instruction_share": self.l2_instruction_share,
            "itlb_mpki": self.itlb_mpki,
            "itlb_miss_ratio": self.itlb_miss_ratio,
            "dtlb_mpki": self.dtlb_mpki,
            "dtlb_miss_ratio": self.dtlb_miss_ratio,
            "branches_pki": 1000.0 * mix.ratio(InstructionClass.BRANCH),
            "branch_mispred_ratio": self.branch_stats.misprediction_ratio,
            "branch_mispred_pki": self.branch_stats.mispredictions_pki(
                self.instructions
            ),
            "btb_miss_ratio": self.branch_stats.btb_miss_ratio,
            "ipc": self.pipeline.ipc,
            "cpi": self.pipeline.cpi,
            "frontend_stall_ratio": self.pipeline.frontend_stall_ratio,
            "backend_stall_ratio": self.pipeline.backend_stall_ratio,
            "branch_stall_ratio": self.pipeline.branch_stall_ratio,
            "retire_utilization": self.pipeline.ipc / 4.0,
            "offcore_read_pki": self.offcore_read_pki,
            "offcore_write_pki": self.offcore_write_pki,
            "offcore_bandwidth_gbps": self.offcore_bandwidth_gbps,
            "snoop_hit_ratio": self.snoop_hit_ratio,
            "snoop_hitm_ratio": self.snoop_hitm_ratio,
            "ilp": self.ilp,
            "mlp": self.pipeline.mlp,
            "tlp": self.tlp,
            "speculation_ratio": self.speculation_ratio,
            "int_ops_per_byte": self.int_ops_per_byte,
            "fp_ops_per_byte": self.fp_ops_per_byte,
            "instructions_per_byte": self.instructions_per_byte,
            "gflops": self.gflops,
        }
        return values

    def metric_vector(self) -> np.ndarray:
        """The 45 metrics as a float vector in canonical order."""
        values = self.metric_dict()
        return np.array([values[name] for name in METRIC_NAMES])

    # ---- lossless serialisation ------------------------------------------
    # The sweep executor ships samples between worker processes as JSON;
    # raw fields (not derived ratios) round-trip exactly, so a rehydrated
    # sample is bit-identical to one characterized in-process.
    def to_dict(self) -> dict:
        """Full-fidelity JSON form (inverse of :meth:`from_dict`)."""
        data = {
            "workload": self.workload,
            "platform": self.platform,
            "instructions": self.instructions,
            "mix_counts": {
                cls.value: count for cls, count in self.mix.counts.items()
            },
            "int_breakdown": {
                "int_addr": self.int_breakdown.int_addr,
                "fp_addr": self.int_breakdown.fp_addr,
                "other": self.int_breakdown.other,
            },
            "branch_stats": {
                "branches": self.branch_stats.branches,
                "mispredictions": self.branch_stats.mispredictions,
                "misfetches": self.branch_stats.misfetches,
                "btb_miss_ratio": self.branch_stats.btb_miss_ratio,
            },
            "pipeline": {
                "cpi": self.pipeline.cpi,
                "ipc": self.pipeline.ipc,
                "base_cpi": self.pipeline.base_cpi,
                "frontend_stall_cpi": self.pipeline.frontend_stall_cpi,
                "branch_stall_cpi": self.pipeline.branch_stall_cpi,
                "backend_stall_cpi": self.pipeline.backend_stall_cpi,
                "mlp": self.pipeline.mlp,
            },
        }
        for name in _SCALAR_FIELDS:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PerfCounters":
        """Rehydrate a sample serialised by :meth:`to_dict`."""
        mix = InstructionMix()
        for name, count in data["mix_counts"].items():
            mix.counts[InstructionClass(name)] = float(count)
        return cls(
            workload=data["workload"],
            platform=data["platform"],
            instructions=float(data["instructions"]),
            mix=mix,
            int_breakdown=IntBreakdown(**data["int_breakdown"]),
            branch_stats=BranchStats(**data["branch_stats"]),
            pipeline=PipelineStats(**data["pipeline"]),
            **{name: float(data[name]) for name in _SCALAR_FIELDS},
        )


#: The flat float attributes of :class:`PerfCounters` (everything except
#: the nested mix/breakdown/branch/pipeline structures and identity).
_SCALAR_FIELDS = (
    "l1i_mpki", "l1i_miss_ratio", "l1d_mpki", "l1d_miss_ratio",
    "l2_mpki", "l2_miss_ratio", "l3_mpki", "l3_miss_ratio",
    "l2_instruction_share", "itlb_mpki", "itlb_miss_ratio",
    "dtlb_mpki", "dtlb_miss_ratio", "offcore_read_pki",
    "offcore_write_pki", "offcore_bandwidth_gbps", "snoop_hit_ratio",
    "snoop_hitm_ratio", "tlp", "speculation_ratio", "int_ops_per_byte",
    "fp_ops_per_byte", "instructions_per_byte", "gflops", "ilp",
)


def characterize(
    profile: BehaviorProfile,
    platform: Platform,
    seed: int = 1234,
    sample_instructions: int = DEFAULT_SAMPLE_INSTRUCTIONS,
) -> PerfCounters:
    """Characterize ``profile`` on ``platform``.

    Runs a warm-up phase (mirroring the paper's 30-second ramp-up before
    sampling) followed by a measured phase through fresh cache, TLB and
    branch-predictor simulators, then composes the measured event counts
    into the 45-metric sample.
    """
    if sample_instructions <= 0:
        raise ValueError("sample_instructions must be positive")

    mix_ratios = profile.mix.ratios()
    load_ratio = mix_ratios[InstructionClass.LOAD]
    store_ratio = mix_ratios[InstructionClass.STORE]
    branch_ratio = mix_ratios[InstructionClass.BRANCH]

    n_fetch = max(2000, int(sample_instructions / INSTRUCTIONS_PER_FETCH))
    n_data = max(2000, int(sample_instructions * (load_ratio + store_ratio)))
    n_branch = max(1000, int(sample_instructions * branch_ratio))

    # Warm-up needs to touch a representative fraction of the code
    # footprint and resident data state, which may exceed the measured
    # trace length (mirroring the paper's 30-second ramp-up).
    footprint_lines = profile.code.total_bytes // LINE_BYTES
    n_fetch_warm = max(n_fetch, min(4 * footprint_lines, 400_000))
    state_lines = profile.data.state_bytes // LINE_BYTES
    state_fraction = max(profile.data.state_fraction, 1e-3)
    warm_for_state = int(2.5 * state_lines / state_fraction)
    n_data_warm = max(n_data, min(warm_for_state, 300_000))

    fetch_trace = generate_fetch_trace(
        profile.code, n_fetch_warm + n_fetch, seed=seed
    )
    data_trace = generate_data_trace(
        profile.data, n_data_warm + n_data, seed=seed + 1
    )

    hierarchy = platform.make_hierarchy()
    itlb = platform.make_itlb()
    dtlb = platform.make_dtlb()

    fetch_list = fetch_trace.tolist()
    data_list = data_trace.tolist()

    # --- Resident-region LLC pre-warm ------------------------------------
    # The paper samples after a 30-second ramp-up, by which time the code
    # and resident data state have long been pulled into the last-level
    # cache.  The sampled trace window is far too short to reproduce that
    # history, so touch each resident line once in the LLC (streams stay
    # cold: their misses are genuinely compulsory).
    if hierarchy.l3 is not None:
        llc = hierarchy.l3
        budget = 2 * llc.config.num_sets * llc.config.ways
        prewarm_ranges = list(code_line_ranges(profile.code))
        data_ranges = data_line_ranges(profile.data)
        prewarm_ranges.append(data_ranges["hot"])
        prewarm_ranges.append(data_ranges["state"])
        for base, n_lines in prewarm_ranges:
            for line in range(base, base + min(n_lines, budget)):
                llc.access(line)
        llc.reset_stats()

    # --- Warm-up phase --------------------------------------------------
    for line in fetch_list[:n_fetch_warm]:
        hierarchy.fetch(line)
        itlb.access(line // LINES_PER_PAGE)
    for line in data_list[:n_data_warm]:
        hierarchy.load_store(line)
        dtlb.access(line // LINES_PER_PAGE)
    hierarchy.reset_stats()
    itlb_warm_misses = itlb.misses
    dtlb_warm_misses = dtlb.misses

    # --- Measured phase -------------------------------------------------
    for line in fetch_list[n_fetch_warm:]:
        hierarchy.fetch(line)
        itlb.access(line // LINES_PER_PAGE)
    for line in data_list[n_data_warm:]:
        hierarchy.load_store(line)
        dtlb.access(line // LINES_PER_PAGE)
    itlb_misses = itlb.misses - itlb_warm_misses
    dtlb_misses = dtlb.misses - dtlb_warm_misses

    # --- Branch predictor -----------------------------------------------
    predictor = platform.make_predictor()
    generator = BranchStreamGenerator(profile.branches, seed=seed + 2)
    warm_events = generator.generate(n_branch)
    simulate_branches(warm_events, predictor)
    events = generator.generate(n_branch)
    branch_stats = simulate_branches(events, predictor)

    instructions = float(sample_instructions)

    pipeline = model_pipeline(
        profile,
        platform,
        hierarchy,
        branch_stats,
        itlb_misses,
        dtlb_misses,
        instructions,
    )

    stats = {s.name: s for s in hierarchy.stats()}
    l1i = stats["L1I"]
    l1d = stats["L1D"]
    l2 = stats["L2"]
    l3 = stats.get("L3")

    l2_instruction_share = (
        (l1i.misses / l2.accesses) if l2.accesses else 0.0
    )

    # --- Off-core traffic and snoops -------------------------------------
    mem_fills = hierarchy.fetch_fills["mem"] + hierarchy.data_fills["mem"]
    offcore_read_pki = 1000.0 * mem_fills / instructions
    write_share = profile.offcore_write_share
    offcore_write_pki = offcore_read_pki * write_share / max(1e-9, 1.0 - write_share)
    instr_per_second = pipeline.ipc * platform.frequency_ghz * 1e9
    offcore_bandwidth_gbps = (
        (offcore_read_pki + offcore_write_pki)
        / 1000.0
        * LINE_BYTES
        * instr_per_second
        / 1e9
    )
    # Snoop hits scale with the number of threads sharing the LLC.
    snoop_hit_ratio = min(0.6, 0.05 * profile.threads)
    snoop_hitm_ratio = profile.snoop_hitm_rate

    # --- Parallelism and operation intensity -----------------------------
    tlp = min(float(platform.cores), float(profile.threads))
    speculation_ratio = (
        branch_stats.mispredictions_pki(instructions)
        / 1000.0
        * platform.branch_penalty
        * pipeline.ipc
    )
    total_instr = profile.instructions
    int_ops = total_instr * mix_ratios[InstructionClass.INTEGER]
    fp_ops = profile.fp_ops
    int_ops_per_byte = int_ops / profile.bytes_processed
    fp_ops_per_byte = fp_ops / profile.bytes_processed
    instructions_per_byte = total_instr / profile.bytes_processed
    fp_per_instr = mix_ratios[InstructionClass.FP]
    gflops = (
        fp_per_instr
        * pipeline.ipc
        * platform.frequency_ghz
        * tlp
    )

    return PerfCounters(
        workload=profile.name,
        platform=platform.name,
        instructions=instructions,
        mix=profile.mix,
        int_breakdown=profile.int_breakdown,
        l1i_mpki=l1i.mpki(instructions),
        l1i_miss_ratio=l1i.miss_ratio,
        l1d_mpki=l1d.mpki(instructions),
        l1d_miss_ratio=l1d.miss_ratio,
        l2_mpki=l2.mpki(instructions),
        l2_miss_ratio=l2.miss_ratio,
        l3_mpki=l3.mpki(instructions) if l3 is not None else 0.0,
        l3_miss_ratio=l3.miss_ratio if l3 is not None else 0.0,
        l2_instruction_share=l2_instruction_share,
        itlb_mpki=1000.0 * itlb_misses / instructions,
        itlb_miss_ratio=itlb_misses / max(1, n_fetch),
        dtlb_mpki=1000.0 * dtlb_misses / instructions,
        dtlb_miss_ratio=dtlb_misses / max(1, n_data),
        branch_stats=branch_stats,
        pipeline=pipeline,
        offcore_read_pki=offcore_read_pki,
        offcore_write_pki=offcore_write_pki,
        offcore_bandwidth_gbps=offcore_bandwidth_gbps,
        snoop_hit_ratio=snoop_hit_ratio,
        snoop_hitm_ratio=snoop_hitm_ratio,
        tlp=tlp,
        speculation_ratio=speculation_ratio,
        int_ops_per_byte=int_ops_per_byte,
        fp_ops_per_byte=fp_ops_per_byte,
        instructions_per_byte=instructions_per_byte,
        gflops=gflops,
        ilp=profile.ilp,
    )
