"""MARSSx86-style cache capacity sweeps (§5.4, Figures 6-9).

The paper's locality study fixes an Atom-like single-core configuration
(8-way L1 with 64-byte lines, shared 8-way L2) and sweeps the L1 size
from 16 KB to 8192 KB, recording the miss ratio at every size.  The same
study is reproduced here with the trace-driven
:class:`repro.uarch.cache.SetAssociativeCache` fed by the synthetic
instruction/data streams of :mod:`repro.uarch.trace`.

Workloads may be simulated in *segments* (the paper samples Hadoop
executions at Map 0-1%, Map 50-51%, Map 99-100%, Reduce 0-1% and
Reduce 99-100% and takes the weighted mean); pass several profiles with
weights to :meth:`CacheSweepSimulator.weighted_curve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.profiler import phase
from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.profile import CodeFootprint, DataFootprint
from repro.uarch.trace import generate_data_trace, generate_fetch_trace

#: The paper's sweep points, in KB (Figures 6-9 x-axis).
DEFAULT_SIZES_KB: Tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class SweepResult:
    """Miss-ratio-versus-capacity curve for one workload."""

    name: str
    sizes_kb: List[int]
    miss_ratios: List[float]

    def at(self, size_kb: int) -> float:
        """Miss ratio at a specific swept size."""
        try:
            return self.miss_ratios[self.sizes_kb.index(size_kb)]
        except ValueError:
            raise KeyError(f"size {size_kb} KB was not swept") from None

    def knee_kb(self, threshold: Optional[float] = None) -> Optional[int]:
        """Smallest swept size where the curve has flattened.

        This estimates the workload *footprint* the way the paper reads
        Figures 6-9 ("the footprint of PARSEC is about 128 KB ... that of
        big data Hadoop workloads is about 1024 KB").  With ``threshold``
        given, returns the first size whose miss ratio drops below it;
        otherwise uses a relative criterion — within 10% (plus a small
        absolute epsilon) of the curve's floor, which is robust to the
        residual compulsory misses of finite sampled traces.  Returns
        None when the curve never flattens.
        """
        if threshold is None:
            floor = min(self.miss_ratios)
            threshold = 1.10 * floor + 0.002
            for size, ratio in zip(self.sizes_kb, self.miss_ratios):
                if ratio <= threshold:
                    return size
            return None
        for size, ratio in zip(self.sizes_kb, self.miss_ratios):
            if ratio < threshold:
                return size
        return None


class CacheSweepSimulator:
    """Sweeps a single cache level's capacity over a synthetic trace."""

    def __init__(
        self,
        sizes_kb: Sequence[int] = DEFAULT_SIZES_KB,
        ways: int = 8,
        trace_refs: int = 60_000,
        seed: int = 2024,
    ):
        if not sizes_kb:
            raise ValueError("need at least one sweep size")
        self.sizes_kb = list(sizes_kb)
        self.ways = ways
        self.trace_refs = trace_refs
        self.seed = seed

    def _sweep(self, name: str, trace: np.ndarray) -> SweepResult:
        """Run ``trace`` through each cache size; measure the second half."""
        half = len(trace) // 2
        warm, measured = trace[:half].tolist(), trace[half:].tolist()
        ratios = []
        for size_kb in self.sizes_kb:
            cache = SetAssociativeCache(
                CacheConfig(f"L1@{size_kb}KB", size_kb * 1024, ways=self.ways)
            )
            with phase("uarch.warmup"):
                cache.run(warm)
            cache.reset_stats()
            with phase("uarch.measure"):
                cache.run(measured)
            ratios.append(cache.miss_ratio)
        return SweepResult(name=name, sizes_kb=list(self.sizes_kb), miss_ratios=ratios)

    def instruction_curve(
        self, name: str, footprint: CodeFootprint
    ) -> SweepResult:
        """Instruction-cache miss ratio versus capacity (Figures 6, 9)."""
        with phase("uarch.trace-gen"):
            trace = generate_fetch_trace(
                footprint, 2 * self.trace_refs, seed=self.seed
            )
        return self._sweep(name, trace)

    def data_curve(self, name: str, data: DataFootprint) -> SweepResult:
        """Data-cache miss ratio versus capacity (Figure 7)."""
        with phase("uarch.trace-gen"):
            trace = generate_data_trace(
                data, 2 * self.trace_refs, seed=self.seed + 1
            )
        return self._sweep(name, trace)

    def unified_curve(
        self,
        name: str,
        footprint: CodeFootprint,
        data: DataFootprint,
        fetch_share: float = 0.6,
    ) -> SweepResult:
        """Unified (instruction + data) miss ratio versus capacity (Figure 8).

        ``fetch_share`` is the fraction of references that are instruction
        fetches; the two streams are interleaved deterministically.
        """
        if not 0.0 < fetch_share < 1.0:
            raise ValueError("fetch_share must be in (0, 1)")
        total = 2 * self.trace_refs
        n_fetch = int(total * fetch_share)
        n_data = total - n_fetch
        with phase("uarch.trace-gen"):
            fetch = generate_fetch_trace(footprint, n_fetch, seed=self.seed)
            data_trace = generate_data_trace(data, n_data, seed=self.seed + 1)
            rng = np.random.default_rng(self.seed + 2)
            merged = np.empty(total, dtype=np.int64)
            is_fetch = np.zeros(total, dtype=bool)
            is_fetch[rng.choice(total, size=n_fetch, replace=False)] = True
            merged[is_fetch] = fetch
            merged[~is_fetch] = data_trace
        return self._sweep(name, merged)

    @staticmethod
    def weighted_curve(
        name: str, parts: Sequence[Tuple[SweepResult, float]]
    ) -> SweepResult:
        """Weighted mean of segment curves (the paper's five-segment rule)."""
        if not parts:
            raise ValueError("need at least one segment")
        sizes = parts[0][0].sizes_kb
        for result, _ in parts:
            if result.sizes_kb != sizes:
                raise ValueError("segment sweeps use different size grids")
        total_weight = sum(weight for _, weight in parts)
        if total_weight <= 0:
            raise ValueError("total weight must be positive")
        ratios = [
            sum(result.miss_ratios[i] * weight for result, weight in parts)
            / total_weight
            for i in range(len(sizes))
        ]
        return SweepResult(name=name, sizes_kb=list(sizes), miss_ratios=ratios)

    @staticmethod
    def average_curves(name: str, curves: Sequence[SweepResult]) -> SweepResult:
        """Unweighted mean across workloads (the figures plot suite means)."""
        return CacheSweepSimulator.weighted_curve(
            name, [(curve, 1.0) for curve in curves]
        )
