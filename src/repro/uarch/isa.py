"""Instruction taxonomy used throughout the characterization.

The paper breaks retired instructions into five visible classes (Figure 1:
integer, floating point, branch, load, store) and further splits the
integer class (Figure 2) into integer address calculation, floating-point
address calculation and "other" computation.  This module defines those
classes and the arithmetic over instruction-mix vectors.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping


class InstructionClass(enum.Enum):
    """Retired-instruction classes reported in Figure 1 of the paper."""

    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    INTEGER = "integer"
    FP = "fp"
    OTHER = "other"


#: Canonical ordering used when serialising mixes into metric vectors.
INSTRUCTION_CLASSES = (
    InstructionClass.LOAD,
    InstructionClass.STORE,
    InstructionClass.BRANCH,
    InstructionClass.INTEGER,
    InstructionClass.FP,
    InstructionClass.OTHER,
)


@dataclass
class InstructionMix:
    """A count of retired instructions per :class:`InstructionClass`.

    Counts are absolute (dynamic instruction counts), not ratios; ratios
    are derived on demand so mixes can be accumulated across execution
    phases without loss.
    """

    counts: Dict[InstructionClass, float] = field(
        default_factory=lambda: {cls: 0.0 for cls in INSTRUCTION_CLASSES}
    )

    @classmethod
    def from_counts(cls, **kwargs: float) -> "InstructionMix":
        """Build a mix from keyword counts, e.g. ``load=10, branch=2``."""
        mix = cls()
        for name, value in kwargs.items():
            mix.counts[InstructionClass(name)] = float(value)
        return mix

    @classmethod
    def from_ratios(cls, total: float, **kwargs: float) -> "InstructionMix":
        """Build a mix of ``total`` instructions from per-class ratios.

        Ratios must sum to 1 within a small tolerance.
        """
        ratio_sum = sum(kwargs.values())
        if not math.isclose(ratio_sum, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"ratios must sum to 1, got {ratio_sum!r}")
        mix = cls()
        for name, value in kwargs.items():
            mix.counts[InstructionClass(name)] = float(value) * total
        return mix

    @property
    def total(self) -> float:
        """Total retired instructions in the mix."""
        return sum(self.counts.values())

    def ratio(self, kind: InstructionClass) -> float:
        """Fraction of retired instructions in ``kind`` (0 if empty)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.counts[kind] / total

    def ratios(self) -> Dict[InstructionClass, float]:
        """All class ratios as a dict (zeros if the mix is empty)."""
        return {cls: self.ratio(cls) for cls in INSTRUCTION_CLASSES}

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a copy with every count multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        result = InstructionMix()
        for cls, count in self.counts.items():
            result.counts[cls] = count * factor
        return result

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        result = InstructionMix()
        for cls in INSTRUCTION_CLASSES:
            result.counts[cls] = self.counts[cls] + other.counts[cls]
        return result

    def __iadd__(self, other: "InstructionMix") -> "InstructionMix":
        for cls in INSTRUCTION_CLASSES:
            self.counts[cls] += other.counts[cls]
        return self

    def add(self, kind: InstructionClass, count: float = 1.0) -> None:
        """Accumulate ``count`` instructions of class ``kind`` in place."""
        self.counts[kind] += count

    @property
    def data_movement_ratio(self) -> float:
        """Load + store fraction — the first component of the paper's
        "data movement dominated computing" observation."""
        return self.ratio(InstructionClass.LOAD) + self.ratio(InstructionClass.STORE)

    def as_vector(self) -> Iterable[float]:
        """Ratios in canonical class order (for metric vectors)."""
        return [self.ratio(cls) for cls in INSTRUCTION_CLASSES]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{cls.value}={self.ratio(cls):.3f}" for cls in INSTRUCTION_CLASSES
        )
        return f"InstructionMix(total={self.total:.0f}, {parts})"


@dataclass(frozen=True)
class IntBreakdown:
    """Figure 2: what the integer instructions are *for*.

    Fractions of the integer-class instructions that perform integer-array
    address calculation, floating-point-array address calculation, and
    everything else (computation proper, branch condition setup).  The
    three fractions must sum to 1.
    """

    int_addr: float
    fp_addr: float
    other: float

    def __post_init__(self) -> None:
        total = self.int_addr + self.fp_addr + self.other
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"integer breakdown must sum to 1, got {total!r}")
        for name in ("int_addr", "fp_addr", "other"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def address_calculation(self) -> float:
        """Total fraction of integer instructions doing address math."""
        return self.int_addr + self.fp_addr


def data_movement_share(mix: InstructionMix, breakdown: IntBreakdown) -> float:
    """The paper's §5.1 "roughly 73%" statistic.

    Load/store instructions plus the address-calculation share of the
    integer instructions, as a fraction of all retired instructions.
    """
    int_ratio = mix.ratio(InstructionClass.INTEGER)
    return mix.data_movement_ratio + int_ratio * breakdown.address_calculation


def data_movement_with_branches(mix: InstructionMix, breakdown: IntBreakdown) -> float:
    """The paper's headline "up to 92%" statistic: data movement share plus
    branch instructions."""
    return data_movement_share(mix, breakdown) + mix.ratio(InstructionClass.BRANCH)


def combine_breakdowns(
    parts: Iterable[tuple[IntBreakdown, float]],
) -> IntBreakdown:
    """Weighted combination of integer breakdowns.

    ``parts`` is an iterable of ``(breakdown, integer_instruction_count)``
    pairs; the result is the breakdown of the pooled integer instructions.
    """
    total_weight = 0.0
    int_addr = fp_addr = other = 0.0
    for breakdown, weight in parts:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        total_weight += weight
        int_addr += breakdown.int_addr * weight
        fp_addr += breakdown.fp_addr * weight
        other += breakdown.other * weight
    if total_weight == 0:
        raise ValueError("cannot combine breakdowns with zero total weight")
    return IntBreakdown(
        int_addr=int_addr / total_weight,
        fp_addr=fp_addr / total_weight,
        other=other / total_weight,
    )


def validate_mix_mapping(mapping: Mapping[str, float]) -> Dict[InstructionClass, float]:
    """Validate a string-keyed mix mapping and convert keys to classes.

    Raises ``ValueError`` for unknown class names or negative counts.
    """
    result: Dict[InstructionClass, float] = {}
    for name, value in mapping.items():
        kind = InstructionClass(name)
        if value < 0:
            raise ValueError(f"count for {name} must be non-negative")
        result[kind] = float(value)
    return result
