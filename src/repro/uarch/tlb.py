"""Translation look-aside buffer simulation (Figure 5 of the paper).

TLBs are modelled as small set-associative caches over page numbers and
driven by the same synthetic fetch/data streams as the cache hierarchy,
downsampled to page granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.uarch.cache import CacheConfig, SetAssociativeCache
from repro.uarch.profile import LINE_BYTES, PAGE_BYTES

#: Cache lines per page, used to convert line traces into page traces.
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of a TLB.

    Attributes:
        name: "ITLB" or "DTLB".
        entries: Number of page entries.
        ways: Associativity (``entries`` for fully associative).
    """

    name: str
    entries: int
    ways: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("TLB geometry values must be positive")
        if self.entries % self.ways != 0:
            raise ValueError("entries must be divisible by ways")


class Tlb:
    """A TLB as an LRU set-associative structure over page numbers."""

    def __init__(self, config: TlbConfig):
        self.config = config
        # Reuse the cache machinery with a 1-byte "line": addresses passed
        # in are already page numbers.
        self._cache = SetAssociativeCache(
            CacheConfig(
                name=config.name,
                size_bytes=config.entries,
                ways=config.ways,
                line_bytes=1,
            )
        )

    @property
    def accesses(self) -> int:
        return self._cache.accesses

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def miss_ratio(self) -> float:
        return self._cache.miss_ratio

    def access(self, page: int) -> bool:
        """Translate ``page``; returns True on TLB hit."""
        return self._cache.access(page)

    def run(self, pages: Iterable[int]) -> int:
        """Translate a page trace; returns the number of misses."""
        return self._cache.run(pages)

    def mpki(self, instructions: float) -> float:
        """Misses per kilo-instruction given a run length."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.misses / instructions

    def flush(self) -> None:
        self._cache.flush()


def lines_to_pages(lines: Iterable[int]) -> Iterable[int]:
    """Convert a cache-line trace to the corresponding page trace."""
    return (line // LINES_PER_PAGE for line in lines)
