"""Synthetic instruction-fetch and data-access stream generation.

The generators turn the statistical models in
:class:`repro.uarch.profile.BehaviorProfile` into concrete cache-line
address traces.  Instruction fetch follows a region/visit model (pick a
code region by dynamic weight, enter at a random point, run sequentially
for a basic-block-sized burst); data access is a mixture of streaming
(compulsory) references and skewed references into resident state.

All generators are deterministic given a seed, so experiments and tests
are reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.uarch.profile import (
    LINE_BYTES,
    PAGE_BYTES,
    CodeFootprint,
    DataFootprint,
)

#: Large prime used as a multiplicative scrambler so that "hot" state
#: lines are scattered across cache sets instead of clustering at the
#: bottom of the region.
_SCRAMBLE_PRIME = 2654435761

#: Gap, in cache lines, left between generated regions so that distinct
#: regions never alias to the same lines.
_REGION_GAP_LINES = 1 << 14


def code_line_ranges(footprint: CodeFootprint) -> list:
    """(base_line, n_lines) for every code region, matching the fetch
    trace generator's address assignment."""
    ranges = []
    cursor = 0
    for region in footprint.regions:
        ranges.append((cursor, region.lines))
        cursor += region.lines + _REGION_GAP_LINES
    return ranges


def data_line_ranges(data: DataFootprint, base_line: int = 1 << 24) -> dict:
    """(base_line, n_lines) for the hot/state/stream data regions,
    matching the data trace generator's address assignment."""
    hot_lines = max(1, data.hot_bytes // LINE_BYTES)
    state_lines = max(1, data.state_bytes // LINE_BYTES)
    stream_lines = max(1, data.stream_bytes // LINE_BYTES)
    hot_base = base_line
    state_base = hot_base + hot_lines + _REGION_GAP_LINES
    stream_base = state_base + state_lines + _REGION_GAP_LINES
    return {
        "hot": (hot_base, hot_lines),
        "state": (state_base, state_lines),
        "stream": (stream_base, stream_lines),
    }


def generate_fetch_trace(
    footprint: CodeFootprint, n_refs: int, seed: int = 11
) -> np.ndarray:
    """Generate ``n_refs`` instruction-fetch line addresses.

    Each "visit" selects a region according to its dynamic weight, enters
    at a uniformly random line, and fetches a geometrically distributed
    run of consecutive lines whose mean is the region's sequentiality.

    Returns an int64 array of cache-line numbers.
    """
    if n_refs <= 0:
        raise ValueError("n_refs must be positive")
    rng = np.random.default_rng(seed)
    regions = footprint.regions
    weights = np.array(footprint.normalized_weights())

    # Assign non-overlapping line bases to regions.
    bases_arr = np.array(
        [base for base, _ in code_line_ranges(footprint)], dtype=np.int64
    )
    sizes_arr = np.array([r.lines for r in regions], dtype=np.int64)
    seq_arr = np.array([r.sequentiality for r in regions])

    # Estimate the number of visits needed, then trim to n_refs.
    mean_run = float(np.dot(weights, seq_arr))
    n_visits = max(1, int(n_refs / mean_run * 1.3) + 8)

    region_idx = rng.choice(len(regions), size=n_visits, p=weights)
    run_lengths = rng.geometric(
        1.0 / np.maximum(seq_arr[region_idx], 1.0)
    ).astype(np.int64)
    starts_within = (rng.random(n_visits) * sizes_arr[region_idx]).astype(
        np.int64
    )
    starts = bases_arr[region_idx] + starts_within

    total = int(run_lengths.sum())
    # Offsets 0..run_len-1 within each run, built without a Python loop.
    ends = np.cumsum(run_lengths)
    run_starts = ends - run_lengths
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        run_starts, run_lengths
    )
    trace = np.repeat(starts, run_lengths) + offsets

    # Keep runs inside their region by wrapping at the region end.
    region_of_ref = np.repeat(region_idx, run_lengths)
    rel = trace - bases_arr[region_of_ref]
    rel %= sizes_arr[region_of_ref]
    trace = bases_arr[region_of_ref] + rel
    return trace[:n_refs]


def _stream_refs(
    n_stream: int, stream_lines: int, reuse: float, rng: np.random.Generator
) -> np.ndarray:
    """Sequential walk with short-range re-references (record parsing)."""
    refs_per_line = 1.0 + reuse
    n_new_lines = max(1, int(n_stream / refs_per_line))
    new_lines = np.arange(n_new_lines, dtype=np.int64) % stream_lines
    repeats = np.full(n_new_lines, int(round(refs_per_line)), dtype=np.int64)
    deficit = n_stream - int(repeats.sum())
    if deficit > 0:
        bump = rng.choice(n_new_lines, size=deficit)
        np.add.at(repeats, bump, 1)
    elif deficit < 0:
        candidates = np.where(repeats > 1)[0]
        trim = rng.choice(candidates, size=min(-deficit, candidates.size))
        np.subtract.at(repeats, trim, 1)
    trace = np.repeat(new_lines, np.maximum(repeats, 1))[:n_stream]
    # Small random back-jitter: re-references land on recently touched
    # lines rather than strictly the current one.
    jitter = rng.integers(0, 3, size=trace.size)
    return np.maximum(trace - jitter, 0)


def _skewed_refs(
    n: int, lines: int, zipf: float, rng: np.random.Generator
) -> np.ndarray:
    """Power-law-skewed references over ``lines``.

    Hot ranks are scrambled at *page* granularity: hot lines stay
    clustered within hot pages (allocators and hash tables have page-
    level locality, which the TLB exploits) while hot pages scatter
    across cache sets.
    """
    lines_per_page = PAGE_BYTES // LINE_BYTES
    alpha = min(zipf, 0.95)
    gamma = 1.0 / (1.0 - alpha)
    u = rng.random(n)
    ranks = np.floor(lines * np.power(u, gamma)).astype(np.int64)
    ranks = np.minimum(ranks, lines - 1)
    if lines <= lines_per_page:
        return ranks
    n_pages = lines // lines_per_page
    pages = ranks // lines_per_page
    offsets = ranks % lines_per_page
    scrambled_pages = (pages * _SCRAMBLE_PRIME) % n_pages
    return np.minimum(
        scrambled_pages * lines_per_page + offsets, lines - 1
    )


def generate_data_trace(
    data: DataFootprint,
    n_refs: int,
    seed: int = 13,
    base_line: int = 1 << 24,
) -> np.ndarray:
    """Generate ``n_refs`` data-access line addresses.

    The trace interleaves three access kinds per the
    :class:`~repro.uarch.profile.DataFootprint` model:

    - *hot* references (stack, locals, hot fields) hit a small region
      with mild skew and dominate the reference count,
    - *state* references select lines from the resident-state region with
      a power-law skew controlled by ``state_zipf``,
    - *stream* references walk sequentially through the stream region;
      each newly touched line is re-referenced ``stream_reuse`` times on
      average while its record is parsed.

    Hot lines are scrambled across the region so they do not collide in
    one cache set.  Returns an int64 array of cache-line numbers (offset
    by ``base_line`` so data never aliases with code).
    """
    if n_refs <= 0:
        raise ValueError("n_refs must be positive")
    rng = np.random.default_rng(seed)

    ranges = data_line_ranges(data, base_line)
    hot_base, hot_lines = ranges["hot"]
    state_base, state_lines = ranges["state"]
    stream_base, stream_lines = ranges["stream"]

    fractions = np.array(
        [
            data.hot_fraction if data.hot_bytes else 0.0,
            data.state_fraction if data.state_bytes else 0.0,
            data.stream_fraction if data.stream_bytes else 0.0,
        ]
    )
    if fractions.sum() == 0:
        raise ValueError("data footprint has no referencable region")
    fractions /= fractions.sum()
    kinds = rng.choice(3, size=n_refs, p=fractions)
    counts = np.bincount(kinds, minlength=3)

    parts = [
        hot_base + _skewed_refs(max(1, counts[0]), hot_lines, 0.3, rng),
        state_base
        + _skewed_refs(max(1, counts[1]), state_lines, data.state_zipf, rng),
        stream_base
        + _stream_refs(max(1, counts[2]), stream_lines, data.stream_reuse, rng),
    ]

    trace = np.empty(n_refs, dtype=np.int64)
    for kind in range(3):
        if counts[kind] > 0:
            trace[kinds == kind] = parts[kind][: counts[kind]]
    return trace


def split_for_tlb(trace: np.ndarray) -> np.ndarray:
    """Downsample a line trace to its page-number sequence."""
    from repro.uarch.tlb import LINES_PER_PAGE

    return trace // LINES_PER_PAGE


def fetch_and_data_traces(
    footprint: CodeFootprint,
    data: DataFootprint,
    n_fetch: int,
    n_data: int,
    seed: int = 17,
) -> Tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper producing both streams from one seed."""
    fetch = generate_fetch_trace(footprint, n_fetch, seed=seed)
    data_trace = generate_data_trace(data, n_data, seed=seed + 1)
    return fetch, data_trace
