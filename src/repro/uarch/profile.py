"""Behaviour profiles: the contract between workloads and the simulators.

A :class:`BehaviorProfile` is what a workload execution (a real algorithm
run inside a software-stack engine) distils into: an instruction mix, a
code footprint, a data working-set model, and a branch-behaviour model.
The :mod:`repro.uarch.trace` generators turn a profile into concrete
instruction-fetch, data-access and branch streams, and the cache / TLB /
branch-predictor simulators measure miss behaviour from those streams.

This mirrors the paper's methodology: the hardware PMU observes streams
produced by real software; here the streams are synthesised from
mechanistic models of the same software, and the "PMU" is a simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Sequence

from repro.uarch.isa import (
    InstructionClass,
    InstructionMix,
    IntBreakdown,
    combine_breakdowns,
)

#: Cache line size used throughout (matches the paper's MARSSx86 config).
LINE_BYTES = 64

#: Page size used for TLB simulation.
PAGE_BYTES = 4096


@dataclass(frozen=True)
class CodeRegion:
    """A contiguous chunk of executed code.

    Workload kernels contribute a small, hot region; software stacks
    contribute large, cooler regions (the framework long-tail that gives
    Hadoop/Spark their ~1 MB instruction footprints in §5.4).

    Attributes:
        name: Human-readable label ("kernel-loop", "hadoop-framework", ...).
        size_bytes: Static code size of the region.
        weight: Relative share of dynamic instruction fetches drawn from
            this region (normalised across the footprint's regions).
        sequentiality: Mean number of consecutive cache lines fetched per
            visit — the basic-block run length in lines.  Tight loops have
            small regions visited with high weight; framework code has long
            call chains wandering across a large region.
    """

    name: str
    size_bytes: int
    weight: float
    sequentiality: float = 4.0

    def __post_init__(self) -> None:
        if self.size_bytes < LINE_BYTES:
            raise ValueError("code region must be at least one cache line")
        if self.weight < 0:
            raise ValueError("region weight must be non-negative")
        if self.sequentiality < 1.0:
            raise ValueError("sequentiality must be >= 1 line")

    @property
    def lines(self) -> int:
        """Region size in cache lines."""
        return max(1, self.size_bytes // LINE_BYTES)


@dataclass
class CodeFootprint:
    """The set of code regions a workload's dynamic execution touches."""

    regions: List[CodeRegion] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("code footprint needs at least one region")
        if sum(r.weight for r in self.regions) <= 0:
            raise ValueError("total region weight must be positive")

    @property
    def total_bytes(self) -> int:
        """Total static code size — the paper's 'instruction footprint'."""
        return sum(r.size_bytes for r in self.regions)

    def normalized_weights(self) -> List[float]:
        """Region fetch weights normalised to sum to 1."""
        total = sum(r.weight for r in self.regions)
        return [r.weight / total for r in self.regions]

    def merged_with(self, other: "CodeFootprint") -> "CodeFootprint":
        """Union of two footprints (e.g. kernel + framework)."""
        return CodeFootprint(regions=list(self.regions) + list(other.regions))

    def scaled_weights(self, factor: float) -> "CodeFootprint":
        """Return a copy with every region weight multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("weight factor must be non-negative")
        return CodeFootprint(
            regions=[replace(r, weight=r.weight * factor) for r in self.regions]
        )


@dataclass(frozen=True)
class DataFootprint:
    """Working-set model of a workload's data references.

    Data accesses are modelled as a mixture of three regions:

    - a *hot* region: stack slots, loop-local variables and hot object
      fields — a few KB that absorb the large majority of loads/stores
      and essentially always hit the L1D;
    - a *state* region: resident structures (hash tables, centroid arrays,
      shuffle/sort buffers, memstores) accessed with a skewed
      distribution; its size relative to L2/L3 determines mid-level
      behaviour;
    - a *stream* region: input/output records flowing through the
      workload (compulsory misses; each line is touched, reused a few
      times while the record is parsed, and abandoned).

    Attributes:
        stream_bytes: Bytes of streaming data flowing through a sampled
            execution window.
        state_bytes: Size of the resident state region.
        hot_bytes: Size of the hot stack/locals region.
        hot_fraction: Fraction of data references hitting the hot region.
        state_fraction: Fraction hitting the state region (the remainder,
            ``1 - hot_fraction - state_fraction``, walks the stream).
        stream_reuse: Mean number of near-in-time re-references to each
            streamed cache line after its first touch.
        state_zipf: Skew parameter of the Zipf-like distribution over state
            lines (0 = uniform; ~1 = heavily skewed towards hot lines).
    """

    stream_bytes: int
    state_bytes: int
    state_fraction: float
    hot_bytes: int = 16 * 1024
    hot_fraction: float = 0.82
    stream_reuse: float = 2.0
    state_zipf: float = 0.6

    def __post_init__(self) -> None:
        if self.stream_bytes < 0 or self.state_bytes < 0 or self.hot_bytes < 0:
            raise ValueError("footprint sizes must be non-negative")
        if self.stream_bytes == 0 and self.state_bytes == 0 and self.hot_bytes == 0:
            raise ValueError("data footprint cannot be entirely empty")
        if not 0.0 <= self.state_fraction <= 1.0:
            raise ValueError("state_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_fraction + self.state_fraction > 1.0 + 1e-9:
            raise ValueError("hot_fraction + state_fraction must not exceed 1")
        if self.stream_reuse < 0:
            raise ValueError("stream_reuse must be non-negative")
        if self.state_zipf < 0:
            raise ValueError("state_zipf must be non-negative")

    @property
    def stream_fraction(self) -> float:
        """Fraction of data references that walk the stream region."""
        return max(0.0, 1.0 - self.hot_fraction - self.state_fraction)

    @property
    def total_bytes(self) -> int:
        """Total data footprint in bytes."""
        return self.stream_bytes + self.state_bytes + self.hot_bytes


@dataclass(frozen=True)
class BranchProfile:
    """Statistical model of a workload's branch behaviour.

    Dynamic branches are drawn from a population of static branch sites of
    three kinds:

    - *loop* branches: back-edges taken ``loop_trip - 1`` times out of
      ``loop_trip`` (very predictable for a loop-aware predictor such as
      the Xeon E5645's, per Table 4);
    - *patterned* branches: short repeating taken/not-taken patterns
      (capturable by two-level history predictors);
    - *data-dependent* branches: outcome is Bernoulli(``taken_prob``),
      essentially unpredictable beyond its bias — the dominant kind in big
      data kernels full of compare-and-branch record processing.

    Attributes:
        loop_fraction: Share of dynamic branches that are loop back-edges.
        pattern_fraction: Share following short repeating patterns.
        data_dependent_fraction: Share that are data-dependent.
        taken_prob: Taken probability of data-dependent branches.
        loop_trip: Mean loop trip count.
        pattern_period: Period of patterned branches.
        indirect_fraction: Share of dynamic branches that are indirect
            jumps/calls (virtual dispatch — large for JVM-hosted stacks).
        indirect_targets: Mean number of distinct targets per indirect site.
        static_sites: Number of distinct static branch sites (pressure on
            BTB and pattern tables; scales with code footprint).
    """

    loop_fraction: float
    pattern_fraction: float
    data_dependent_fraction: float
    taken_prob: float = 0.5
    loop_trip: int = 16
    pattern_period: int = 4
    indirect_fraction: float = 0.02
    indirect_targets: int = 4
    static_sites: int = 512

    def __post_init__(self) -> None:
        total = (
            self.loop_fraction + self.pattern_fraction + self.data_dependent_fraction
        )
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(
                f"branch kind fractions must sum to 1, got {total!r}"
            )
        if not 0.0 <= self.taken_prob <= 1.0:
            raise ValueError("taken_prob must be in [0, 1]")
        if self.loop_trip < 2:
            raise ValueError("loop_trip must be >= 2")
        if self.pattern_period < 2:
            raise ValueError("pattern_period must be >= 2")
        if not 0.0 <= self.indirect_fraction <= 1.0:
            raise ValueError("indirect_fraction must be in [0, 1]")
        if self.indirect_targets < 1:
            raise ValueError("indirect_targets must be >= 1")
        if self.static_sites < 1:
            raise ValueError("static_sites must be >= 1")


@dataclass
class BehaviorProfile:
    """Everything the uarch simulators need to characterize a workload.

    Produced by :mod:`repro.stacks` engines from real kernel executions;
    consumed by :func:`repro.uarch.counters.characterize`.

    Attributes:
        name: Workload identifier (e.g. ``"S-WordCount"``).
        mix: Dynamic instruction mix (Figure 1).
        int_breakdown: What the integer instructions do (Figure 2).
        code: Instruction footprint model (§5.4 locality study).
        data: Data working-set model.
        branches: Branch behaviour model.
        ilp: Mean exploitable instruction-level parallelism — the number of
            independent instructions the out-of-order core can overlap per
            cycle before dependency chains bind it.
        instructions: Total dynamic instructions of the (scaled) run.
        fp_ops: Dynamic floating-point operations (for operation intensity
            and the GFLOPS discussion in §5.1's implications).
        bytes_processed: Input bytes consumed (for operation intensity).
        threads: Worker threads/tasks per node (parallelism metrics).
        offcore_write_share: Fraction of off-core traffic that is writes
            (dirty evictions / shuffle spills).
        snoop_hitm_rate: Fraction of snoop responses that hit modified
            lines in a sibling core's cache (cross-core sharing).
    """

    name: str
    mix: InstructionMix
    int_breakdown: IntBreakdown
    code: CodeFootprint
    data: DataFootprint
    branches: BranchProfile
    ilp: float
    instructions: float
    fp_ops: float = 0.0
    bytes_processed: float = 1.0
    threads: int = 1
    offcore_write_share: float = 0.3
    snoop_hitm_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.ilp <= 0:
            raise ValueError("ilp must be positive")
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        if self.bytes_processed <= 0:
            raise ValueError("bytes_processed must be positive")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if not 0.0 <= self.offcore_write_share <= 1.0:
            raise ValueError("offcore_write_share must be in [0, 1]")
        if not 0.0 <= self.snoop_hitm_rate <= 1.0:
            raise ValueError("snoop_hitm_rate must be in [0, 1]")


def merge_profiles(name: str, parts: Sequence[BehaviorProfile]) -> BehaviorProfile:
    """Merge phase profiles into a whole-run profile.

    Used to combine e.g. map/shuffle/reduce phases, weighting every
    statistical component by each phase's dynamic instruction count.
    Timed under the ``uarch.merge-profiles`` phase when a
    :mod:`repro.obs.profiler` profiler is installed.
    """
    from repro.obs.profiler import phase

    with phase("uarch.merge-profiles"):
        return _merge_profiles(name, parts)


def _merge_profiles(
    name: str, parts: Sequence[BehaviorProfile]
) -> BehaviorProfile:
    if not parts:
        raise ValueError("cannot merge zero profiles")
    total_instructions = sum(p.instructions for p in parts)
    mix = InstructionMix()
    for part in parts:
        mix += part.mix

    weights = [p.instructions / total_instructions for p in parts]

    def wavg(values: Sequence[float]) -> float:
        return sum(w * v for w, v in zip(weights, values))

    int_weights = [p.mix.counts[InstructionClass.INTEGER] for p in parts]
    breakdown = combine_breakdowns(
        [(p.int_breakdown, max(w, 1e-9)) for p, w in zip(parts, int_weights)]
    )

    code = parts[0].code
    for part, weight in zip(parts[1:], weights[1:]):
        code = code.merged_with(part.code.scaled_weights(weight / max(weights[0], 1e-9)))

    hot_fraction = wavg([p.data.hot_fraction for p in parts])
    state_fraction = wavg([p.data.state_fraction for p in parts])
    if hot_fraction + state_fraction > 1.0:
        scale = 1.0 / (hot_fraction + state_fraction)
        hot_fraction *= scale
        state_fraction *= scale
    data = DataFootprint(
        stream_bytes=int(sum(p.data.stream_bytes for p in parts)),
        state_bytes=int(max(p.data.state_bytes for p in parts)),
        state_fraction=state_fraction,
        hot_bytes=int(max(p.data.hot_bytes for p in parts)),
        hot_fraction=hot_fraction,
        stream_reuse=wavg([p.data.stream_reuse for p in parts]),
        state_zipf=wavg([p.data.state_zipf for p in parts]),
    )

    branch_parts = [p.branches for p in parts]
    branches = BranchProfile(
        loop_fraction=wavg([b.loop_fraction for b in branch_parts]),
        pattern_fraction=wavg([b.pattern_fraction for b in branch_parts]),
        data_dependent_fraction=wavg(
            [b.data_dependent_fraction for b in branch_parts]
        ),
        taken_prob=wavg([b.taken_prob for b in branch_parts]),
        loop_trip=max(2, int(round(wavg([b.loop_trip for b in branch_parts])))),
        pattern_period=max(
            2, int(round(wavg([b.pattern_period for b in branch_parts])))
        ),
        indirect_fraction=wavg([b.indirect_fraction for b in branch_parts]),
        indirect_targets=max(
            1, int(round(wavg([b.indirect_targets for b in branch_parts])))
        ),
        static_sites=max(b.static_sites for b in branch_parts),
    )

    # Re-normalise the branch kind fractions against float drift.
    kind_total = (
        branches.loop_fraction
        + branches.pattern_fraction
        + branches.data_dependent_fraction
    )
    branches = replace(
        branches,
        loop_fraction=branches.loop_fraction / kind_total,
        pattern_fraction=branches.pattern_fraction / kind_total,
        data_dependent_fraction=branches.data_dependent_fraction / kind_total,
    )

    return BehaviorProfile(
        name=name,
        mix=mix,
        int_breakdown=breakdown,
        code=code,
        data=data,
        branches=branches,
        ilp=wavg([p.ilp for p in parts]),
        instructions=total_instructions,
        fp_ops=sum(p.fp_ops for p in parts),
        bytes_processed=sum(p.bytes_processed for p in parts),
        threads=max(p.threads for p in parts),
        offcore_write_share=wavg([p.offcore_write_share for p in parts]),
        snoop_hitm_rate=wavg([p.snoop_hitm_rate for p in parts]),
    )
