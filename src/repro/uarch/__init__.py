"""Trace-driven micro-architecture simulation substrate.

This package stands in for the hardware performance counters (Intel PMU +
Perf) and the MARSSx86 simulator used by the paper.  Workload behaviour
models (instruction mix, code footprint, data working sets, branch
behaviour) are turned into synthetic instruction/address/branch streams,
and set-associative cache, TLB and branch-predictor simulators *measure*
miss rates from those streams the same way a PMU would.

Public entry points:

- :class:`repro.uarch.platforms.Platform` — machine configs (Xeon E5645,
  Atom D510 per Tables 3 and 4 of the paper).
- :func:`repro.uarch.counters.characterize` — run a
  :class:`repro.uarch.profile.BehaviorProfile` on a platform and obtain a
  :class:`repro.uarch.counters.PerfCounters` sample.
- :class:`repro.uarch.simulator.CacheSweepSimulator` — the MARSSx86-like
  miss-ratio-versus-capacity sweep used for Figures 6-9.
"""

from repro.uarch.isa import InstructionClass, InstructionMix, IntBreakdown
from repro.uarch.profile import (
    BehaviorProfile,
    BranchProfile,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
)
from repro.uarch.platforms import ATOM_D510, XEON_E5645, Platform
from repro.uarch.counters import PerfCounters, characterize
from repro.uarch.simulator import CacheSweepSimulator, SweepResult

__all__ = [
    "InstructionClass",
    "InstructionMix",
    "IntBreakdown",
    "BehaviorProfile",
    "BranchProfile",
    "CodeFootprint",
    "CodeRegion",
    "DataFootprint",
    "Platform",
    "XEON_E5645",
    "ATOM_D510",
    "PerfCounters",
    "characterize",
    "CacheSweepSimulator",
    "SweepResult",
]
