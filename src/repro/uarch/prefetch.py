"""Hardware prefetcher models.

The counters pipeline accounts prefetching analytically (coverage
factors in :mod:`repro.uarch.pipeline`); this module provides *explicit*
prefetcher simulation for studies of the mechanism itself — the
next-line and stride prefetchers found on the paper's Xeon E5645 —
usable as a wrapper around any :class:`SetAssociativeCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.uarch.cache import SetAssociativeCache


@dataclass
class PrefetchStats:
    """Effectiveness accounting for one run."""

    demand_accesses: int = 0
    demand_misses: int = 0
    prefetches_issued: int = 0
    useful_prefetches: int = 0

    @property
    def miss_ratio(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    @property
    def accuracy(self) -> float:
        """Useful prefetches / issued prefetches."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches_issued


class NextLinePrefetcher:
    """Fetch line N+1 on a demand miss to line N.

    The simplest sequential prefetcher; catches streaming reads with a
    one-line lookahead.
    """

    def __init__(self, cache: SetAssociativeCache, degree: int = 1):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._prefetched: set = set()

    def access(self, line: int) -> bool:
        """Demand access through the prefetcher; returns hit/miss."""
        self.stats.demand_accesses += 1
        hit = self.cache.access(line)
        if line in self._prefetched:
            self.stats.useful_prefetches += 1
            self._prefetched.discard(line)
        if not hit:
            self.stats.demand_misses += 1
            for ahead in range(1, self.degree + 1):
                self.cache.access(line + ahead)
                self._prefetched.add(line + ahead)
                self.stats.prefetches_issued += 1
        return hit

    def run(self, lines: Iterable[int]) -> PrefetchStats:
        for line in lines:
            self.access(line)
        return self.stats


class StridePrefetcher:
    """Stream/stride prefetcher in the style of the E5645's L2 streamer.

    Two detectors share a reference-prediction table indexed by a
    per-region stream id:

    - a *stride* detector: a stride confirmed twice prefetches ahead
      along it (catches non-unit constant strides, e.g. column walks);
    - a *stream* detector: monotonic forward progress of the stream's
      high-water mark prefetches ahead of the watermark, which is robust
      to the short backward re-references real record parsing produces.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        degree: int = 2,
        table_entries: int = 16,
    ):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.cache = cache
        self.degree = degree
        self.table_entries = table_entries
        # stream id -> [last_line, stride, stride_conf, watermark, stream_conf]
        self._table: dict = {}
        self.stats = PrefetchStats()
        self._prefetched: set = set()

    @staticmethod
    def _stream_id(line: int) -> int:
        # 16 KB regions act as stream contexts, like page-based RPTs.
        return line >> 8

    def _issue(self, target: int) -> None:
        # Filter duplicates: an already-outstanding prefetch is not
        # re-issued (real prefetchers check the MSHRs).
        if target >= 0 and target not in self._prefetched:
            self.cache.access(target)
            self._prefetched.add(target)
            self.stats.prefetches_issued += 1

    def access(self, line: int) -> bool:
        self.stats.demand_accesses += 1
        hit = self.cache.access(line)
        if line in self._prefetched:
            self.stats.useful_prefetches += 1
            self._prefetched.discard(line)
        if not hit:
            self.stats.demand_misses += 1

        stream = self._stream_id(line)
        entry = self._table.get(stream)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[stream] = [line, 0, 0, line, 0]
            return hit

        last_line, stride, stride_conf, watermark, stream_conf = entry
        # --- stride detector ---------------------------------------------
        delta = line - last_line
        if delta != 0 and delta == stride:
            stride_conf = min(3, stride_conf + 1)
        else:
            stride = delta
            stride_conf = 0
        stride_locked = stride_conf >= 2 and stride not in (0, 1)
        if stride_locked:
            for ahead in range(1, self.degree + 1):
                self._issue(line + ahead * stride)
        # --- stream detector -----------------------------------------------
        if line < watermark - 64:
            # The stream restarted far below the high-water mark (a new
            # pass over the buffer): re-arm rather than stay blind.
            watermark = line
            stream_conf = 0
        if line > watermark:
            advance = line - watermark
            if advance <= 4:
                stream_conf = min(3, stream_conf + 1)
            else:
                stream_conf = 0
            watermark = line
            # Defer to the stride detector once it locked a non-unit
            # stride — unit-line stream prefetches would be wasted.
            if stream_conf >= 2 and not stride_locked:
                for ahead in range(1, self.degree + 1):
                    self._issue(watermark + ahead)
        self._table[stream] = [line, stride, stride_conf, watermark, stream_conf]
        return hit

    def run(self, lines: Iterable[int]) -> PrefetchStats:
        for line in lines:
            self.access(line)
        return self.stats


def run_with_prefetcher(
    cache: SetAssociativeCache,
    lines: Iterable[int],
    prefetcher: Optional[str] = "stride",
    degree: int = 2,
) -> PrefetchStats:
    """Convenience: run a trace through a cache with a chosen prefetcher
    (``None`` / ``"nextline"`` / ``"stride"``)."""
    if prefetcher is None:
        stats = PrefetchStats()
        for line in lines:
            stats.demand_accesses += 1
            if not cache.access(line):
                stats.demand_misses += 1
        return stats
    if prefetcher == "nextline":
        return NextLinePrefetcher(cache, degree=degree).run(lines)
    if prefetcher == "stride":
        return StridePrefetcher(cache, degree=degree).run(lines)
    raise ValueError(f"unknown prefetcher {prefetcher!r}")
