"""Stall-based pipeline model producing IPC (Figure 3 of the paper).

The model composes, per retired instruction:

- a base cost limited by issue width and the workload's inherent ILP,
- front-end stalls from L1I misses (weighted by where the line was
  refilled from) and ITLB walks,
- branch-misprediction flushes,
- back-end stalls from data-side refills and DTLB walks, discounted by
  the platform's ability to hide latency (out-of-order window, hardware
  prefetchers on streaming data) and by memory-level parallelism.

All inputs are *measured* by the cache/TLB/branch simulators; only the
composition is analytic.  This mirrors top-down CPI accounting used with
real PMUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache import CacheHierarchy
from repro.uarch.branch import BranchStats
from repro.uarch.platforms import Platform
from repro.uarch.profile import BehaviorProfile

#: Fraction of front-end refill latency hidden by the fetch/decode queue
#: on an out-of-order core (the queue keeps the back end fed briefly).
_OOO_FETCH_HIDING = 0.40
_INORDER_FETCH_HIDING = 0.05

#: Coverage of the hardware stride prefetcher on streaming data misses.
_OOO_PREFETCH_COVERAGE = 0.72
_INORDER_PREFETCH_COVERAGE = 0.45


@dataclass(frozen=True)
class PipelineStats:
    """CPI decomposition for one characterization run."""

    cpi: float
    ipc: float
    base_cpi: float
    frontend_stall_cpi: float
    branch_stall_cpi: float
    backend_stall_cpi: float
    mlp: float

    @property
    def frontend_stall_ratio(self) -> float:
        """Fraction of cycles lost to front-end (fetch + ITLB) stalls."""
        return self.frontend_stall_cpi / self.cpi

    @property
    def branch_stall_ratio(self) -> float:
        """Fraction of cycles lost to misprediction flushes."""
        return self.branch_stall_cpi / self.cpi

    @property
    def backend_stall_ratio(self) -> float:
        """Fraction of cycles lost to data-side stalls."""
        return self.backend_stall_cpi / self.cpi


def estimate_mlp(profile: BehaviorProfile, platform: Platform) -> float:
    """Memory-level parallelism achievable for this workload.

    An out-of-order window overlaps independent misses; streaming access
    patterns expose more independent misses than pointer-chasing into
    state.  In-order cores achieve almost no overlap.
    """
    if not platform.out_of_order:
        return 1.0
    data = profile.data
    miss_prone = data.stream_fraction + data.state_fraction
    stream_share = data.stream_fraction / miss_prone if miss_prone > 0 else 0.0
    return 1.0 + 0.6 * (profile.ilp - 1.0) + 1.4 * stream_share


def model_pipeline(
    profile: BehaviorProfile,
    platform: Platform,
    hierarchy: CacheHierarchy,
    branch_stats: BranchStats,
    itlb_misses: int,
    dtlb_misses: int,
    instructions: float,
) -> PipelineStats:
    """Compose measured miss events into a CPI estimate.

    Args:
        profile: The workload behaviour model (for ILP, mix, streaminess).
        platform: Machine model supplying widths, latencies and penalties.
        hierarchy: Cache hierarchy *after* the measured simulation phase;
            its per-source fill counters are consumed here.
        branch_stats: Result of the branch-predictor simulation.
        itlb_misses / dtlb_misses: TLB misses during the measured phase.
        instructions: Retired instructions represented by the measured
            phase (the denominator for every per-instruction rate).
    """
    if instructions <= 0:
        raise ValueError("instructions must be positive")

    lat = platform.latencies
    base_cpi = 1.0 / min(platform.issue_width, profile.ilp)

    # --- Front end: instruction refills + ITLB walks -------------------
    fetch_hiding = (
        _OOO_FETCH_HIDING if platform.out_of_order else _INORDER_FETCH_HIDING
    )
    fills = hierarchy.fetch_fills
    fetch_stall_cycles = (
        fills["l2"] * lat.l2_hit
        + fills["l3"] * lat.l3_hit
        + fills["mem"] * lat.memory
    ) * (1.0 - fetch_hiding)
    itlb_stall_cycles = itlb_misses * platform.tlb_penalty
    frontend_stall_cpi = (fetch_stall_cycles + itlb_stall_cycles) / instructions

    # --- Branch flushes -------------------------------------------------
    # Mispredictions cost a full pipeline flush; BTB misfetches only a
    # short fetch bubble while the target is computed.
    misfetch_bubble = 4.0
    branch_per_instr = branch_stats.branches / instructions
    branch_stall_cpi = branch_per_instr * (
        branch_stats.misprediction_ratio * platform.branch_penalty
        + branch_stats.misfetch_ratio * misfetch_bubble
    )

    # --- Back end: data refills + DTLB walks ----------------------------
    mlp = estimate_mlp(profile, platform)
    hide_l2, hide_l3, hide_mem = platform.stall_hiding
    prefetch_coverage = (
        _OOO_PREFETCH_COVERAGE
        if platform.out_of_order
        else _INORDER_PREFETCH_COVERAGE
    )
    data = profile.data
    miss_prone = data.stream_fraction + data.state_fraction
    stream_share = data.stream_fraction / miss_prone if miss_prone > 0 else 0.0
    prefetch_factor = 1.0 - prefetch_coverage * stream_share

    data_fills = hierarchy.data_fills
    data_stall_cycles = (
        data_fills["l2"] * lat.l2_hit * (1.0 - hide_l2)
        + data_fills["l3"] * lat.l3_hit * (1.0 - hide_l3)
        + data_fills["mem"] * lat.memory * (1.0 - hide_mem) * prefetch_factor / mlp
    )
    dtlb_stall_cycles = dtlb_misses * platform.tlb_penalty * (1.0 - hide_l3)
    backend_stall_cpi = (data_stall_cycles + dtlb_stall_cycles) / instructions

    cpi = base_cpi + frontend_stall_cpi + branch_stall_cpi + backend_stall_cpi
    return PipelineStats(
        cpi=cpi,
        ipc=1.0 / cpi,
        base_cpi=base_cpi,
        frontend_stall_cpi=frontend_stall_cpi,
        branch_stall_cpi=branch_stall_cpi,
        backend_stall_cpi=backend_stall_cpi,
        mlp=mlp,
    )
