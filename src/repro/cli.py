"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments:

    python -m repro list                     # the workload catalog
    python -m repro run S-WordCount          # run + characterize one workload
    python -m repro reduce [--k 17]          # the 77 -> 17 reduction
    python -m repro fig 1|2|3|4|5|locality   # regenerate a figure
    python -m repro table 1|2|4              # regenerate a table
    python -m repro stacks                   # the §5.5 stack study
    python -m repro system                   # §3.2 classification
    python -m repro faults [--seed 7]        # stack fault resilience
    python -m repro chaos [--seeds 20]       # invariant-audited chaos soak
    python -m repro trace S-WordCount        # span-trace one run
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    ExperimentContext,
    fault_resilience,
    fig1_instruction_mix,
    fig2_integer_breakdown,
    fig3_ipc,
    fig4_cache,
    fig5_tlb,
    fig6to9_locality,
    stack_impact,
    system_behaviors,
    table1_datasets,
    table2_reduction,
    table4_branch,
)
from repro.uarch import ATOM_D510, XEON_E5645, characterize
from repro.workloads import ALL_WORKLOADS, MPI_WORKLOADS, workload

_FIGURES = {
    "1": fig1_instruction_mix,
    "2": fig2_integer_breakdown,
    "3": fig3_ipc,
    "4": fig4_cache,
    "5": fig5_tlb,
}

_TABLES = {
    "2": table2_reduction,
    "4": table4_branch,
}


def _cmd_list(_args) -> int:
    print(f"{'workload':26s} {'stack':8s} {'dataset':16s} {'category':22s} rep")
    for definition in ALL_WORKLOADS + MPI_WORKLOADS:
        marker = f"x{definition.represents}" if definition.representative else ""
        print(
            f"{definition.workload_id:26s} {definition.stack:8s} "
            f"{definition.dataset:16s} {definition.category.value:22s} {marker}"
        )
    print(f"\n{len(ALL_WORKLOADS)} catalog workloads + {len(MPI_WORKLOADS)} MPI versions")
    return 0


def _cmd_run(args) -> int:
    definition = workload(args.workload)
    platform = ATOM_D510 if args.platform == "d510" else XEON_E5645
    if not args.json:
        print(f"running {definition.workload_id} ({definition.description}) ...")
    result = definition.runner(scale=args.scale)
    counters = characterize(result.profile, platform)
    if args.json:
        print(
            json.dumps(
                {
                    "workload": definition.workload_id,
                    "platform": platform.name,
                    "scale": args.scale,
                    "metrics": counters.metric_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"platform: {platform.name}")
    for name, value in counters.metric_dict().items():
        print(f"  {name:26s} {value:12.4f}")
    return 0


def _cmd_trace(args) -> int:
    from repro.cluster.cluster import Cluster
    from repro.cluster.events import Simulation
    from repro.obs import Tracer, render_trace_summary, write_chrome_trace

    definition = workload(args.workload)
    tracer = Tracer(sample_interval=args.sample_interval)
    cluster = Cluster(sim=Simulation(tracer=tracer))
    print(f"tracing {definition.workload_id} ({definition.description}) ...")
    definition.runner(scale=args.scale, cluster=cluster, seed=args.seed)
    n_events = write_chrome_trace(
        tracer, args.out, process_name=f"repro {definition.workload_id}"
    )
    print(render_trace_summary(tracer))
    print(
        f"\nwrote {n_events} trace events to {args.out} — load it in "
        f"Perfetto (ui.perfetto.dev) or chrome://tracing"
    )
    return 0


def _cmd_reduce(args) -> int:
    from repro.core import Wcrt

    wcrt = Wcrt(n_profilers=5, scale=args.scale)
    result = wcrt.reduce(ALL_WORKLOADS, k=args.k)
    for representative in result.representatives:
        members = result.clusters[representative]
        print(f"{representative:26s} represents {len(members)}")
    return 0


def _print_timings(context: ExperimentContext) -> None:
    lines = context.timing_lines()
    if lines:
        print("\ntimings:")
        for line in lines:
            print(f"  {line}")


def _cmd_fig(args) -> int:
    context = ExperimentContext(scale=args.scale)
    if args.figure == "locality":
        with context.time_experiment("fig-locality"):
            rendered = fig6to9_locality.run(context).render()
        print(rendered)
        _print_timings(context)
        return 0
    module = _FIGURES.get(args.figure)
    if module is None:
        print(f"unknown figure {args.figure!r}; choose 1-5 or 'locality'",
              file=sys.stderr)
        return 2
    with context.time_experiment(f"fig-{args.figure}"):
        rendered = module.run(context).render()
    print(rendered)
    _print_timings(context)
    return 0


def _cmd_table(args) -> int:
    if args.table == "1":
        print(table1_datasets.run().render())
        return 0
    module = _TABLES.get(args.table)
    if module is None:
        print(f"unknown table {args.table!r}; choose 1, 2 or 4", file=sys.stderr)
        return 2
    context = ExperimentContext(scale=args.scale)
    with context.time_experiment(f"table-{args.table}"):
        rendered = module.run(context).render()
    print(rendered)
    _print_timings(context)
    return 0


def _cmd_stacks(args) -> int:
    context = ExperimentContext(scale=args.scale)
    print(stack_impact.run(context).render())
    return 0


def _cmd_system(args) -> int:
    context = ExperimentContext(scale=args.scale)
    print(system_behaviors.run(context).render())
    return 0


def _cmd_faults(args) -> int:
    from repro.errors import InvariantViolation

    context = ExperimentContext(scale=args.scale, seed=args.seed)
    try:
        result = fault_resilience.run(context)
    except InvariantViolation as violation:
        # A lost wave or broken invariant is a simulator bug, never a
        # legitimate stack outcome: fail the command.
        print(f"invariant violation: {violation}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.render())
    return 0


def _cmd_chaos(args) -> int:
    import os

    from repro.chaos import (
        load_replay,
        replay_to_dict,
        run_plan,
        save_replay,
        shrink_plan,
        violation_signature,
    )
    from repro.experiments import chaos_soak

    if args.replay:
        data = load_replay(args.replay)
        case = run_plan(
            data["workload"], data["stack"], data["plan"],
            scale=data.get("scale", args.scale),
        )
        if args.json:
            print(json.dumps(case.to_dict(), indent=2, sort_keys=True))
        else:
            print(
                f"replayed {data['workload']}/{data['stack']} "
                f"({len(data['plan'].faults)} faults): outcome={case.outcome}"
            )
            for violation in case.violations:
                print(f"  {violation.invariant}: {violation.detail}")
        if case.violations:
            print("violation reproduced", file=sys.stderr)
            return 1
        if not args.json:
            print("clean: the violation no longer reproduces")
        return 0

    workloads = args.workloads.split(",") if args.workloads else None
    stacks = args.stacks.split(",") if args.stacks else None
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    result = chaos_soak.run(
        context, seeds=args.seeds, workloads=workloads, stacks=stacks
    )
    artifacts = []
    if not result.clean:
        # Minimise each violating plan and pin it to a replay file.
        os.makedirs(args.artifact_dir, exist_ok=True)
        for campaign in result.campaigns:
            for case in campaign.dirty_cases:
                plan = case.case.plan
                if not args.no_shrink:
                    plan = shrink_plan(
                        plan,
                        lambda candidate: violation_signature(
                            run_plan(
                                case.case.workload, case.case.stack,
                                candidate, scale=args.scale,
                            ).violations
                        ),
                    )
                path = os.path.join(
                    args.artifact_dir,
                    f"chaos-seed{campaign.seed}-{case.case.workload}-"
                    f"{case.case.stack}.json",
                )
                save_replay(
                    path,
                    replay_to_dict(
                        case.case.workload,
                        case.case.stack,
                        plan,
                        args.scale,
                        scenario=case.case.scenario,
                        seed=campaign.seed,
                        violations=[v.to_dict() for v in case.violations],
                    ),
                )
                artifacts.append(path)
    if args.json:
        payload = result.to_dict()
        payload["artifacts"] = artifacts
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.render())
        for path in artifacts:
            print(f"minimized replay written to {path}")
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Characterization and Architectural "
                    "Implications of Big Data Workloads' (ISPASS 2016).",
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the workload catalog")

    run_parser = commands.add_parser("run", help="run one workload")
    run_parser.add_argument("workload", help="workload id, e.g. S-WordCount")
    run_parser.add_argument("--platform", choices=("e5645", "d510"),
                            default="e5645")
    run_parser.add_argument("--json", action="store_true",
                            help="emit metrics as JSON instead of a table")

    trace_parser = commands.add_parser(
        "trace",
        help="run one workload on a traced cluster; export a Chrome trace",
    )
    trace_parser.add_argument("workload", help="workload id, e.g. S-WordCount")
    trace_parser.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event output path (default trace.json)",
    )
    trace_parser.add_argument(
        "--sample-interval", type=float, default=None, metavar="S",
        help="sample per-node utilization every S simulated seconds "
             "(default: wave boundaries only)",
    )
    trace_parser.add_argument("--seed", type=int, default=0)

    reduce_parser = commands.add_parser("reduce", help="the 77 -> 17 reduction")
    reduce_parser.add_argument("--k", type=int, default=17)

    fig_parser = commands.add_parser("fig", help="regenerate a figure")
    fig_parser.add_argument("figure", help="1-5 or 'locality' (6-9)")

    table_parser = commands.add_parser("table", help="regenerate a table")
    table_parser.add_argument("table", help="1, 2 or 4")

    commands.add_parser("stacks", help="the §5.5 software-stack study")
    commands.add_parser("system", help="§3.2 system-behaviour classification")

    faults_parser = commands.add_parser(
        "faults",
        help="fault resilience: Hadoop vs Spark vs MPI under a node crash",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed (same seed, same faults, same metrics)",
    )
    faults_parser.add_argument(
        "--json", action="store_true",
        help="emit the resilience results as JSON instead of a table",
    )

    chaos_parser = commands.add_parser(
        "chaos",
        help="invariant-audited chaos campaigns over the workload x stack "
             "matrix; exits nonzero on any violation",
    )
    chaos_parser.add_argument(
        "--seeds", type=int, default=5,
        help="number of consecutive campaign seeds to run (default 5)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0,
        help="first campaign seed (default 0)",
    )
    chaos_parser.add_argument(
        "--workloads", default=None,
        help="comma-separated workloads (default wordcount,grep; "
             "also: sort)",
    )
    chaos_parser.add_argument(
        "--stacks", default=None,
        help="comma-separated stacks (default Hadoop,Spark,MPI)",
    )
    chaos_parser.add_argument(
        "--artifact-dir", default="chaos-artifacts",
        help="where minimized replay files for violations land "
             "(default chaos-artifacts/)",
    )
    chaos_parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run one saved replay file instead of a campaign; "
             "exits 1 if its violation still reproduces",
    )
    chaos_parser.add_argument(
        "--no-shrink", action="store_true",
        help="save violating plans as-is instead of minimizing them",
    )
    chaos_parser.add_argument(
        "--json", action="store_true",
        help="emit campaign verdicts as JSON instead of a table",
    )
    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "reduce": _cmd_reduce,
    "fig": _cmd_fig,
    "table": _cmd_table,
    "stacks": _cmd_stacks,
    "system": _cmd_system,
    "faults": _cmd_faults,
    "chaos": _cmd_chaos,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
