"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments:

    python -m repro list                     # the workload catalog
    python -m repro run S-WordCount          # run + characterize one workload
    python -m repro reduce [--k 17]          # the 77 -> 17 reduction
    python -m repro fig 1|2|3|4|5|locality   # regenerate a figure
    python -m repro table 1|2|4              # regenerate a table
    python -m repro stacks                   # the §5.5 stack study
    python -m repro system                   # §3.2 classification
    python -m repro faults [--seed 7]        # stack fault resilience
    python -m repro chaos [--seeds 20]       # invariant-audited chaos soak
    python -m repro trace S-WordCount        # span-trace one run
    python -m repro sweep --jobs 4           # supervised parallel sweep
    python -m repro profile S-WordCount      # host hot-path profiler
    python -m repro metrics                  # OpenMetrics counter scrape
    python -m repro report                   # fidelity scorecard vs paper
    python -m repro diff <run-a> <run-b>     # per-metric drift, CI gate
    python -m repro history fig3             # metric trajectory, sparklines
    python -m repro lint [--dynamic]         # determinism sanitizer
    python -m repro dash [--out DIR]         # static HTML observatory
    python -m repro bench fig4 --reps 5      # noise-aware wall-clock bench
    python -m repro perfdiff                 # CI perf gate vs budgets

Every metric-producing command also writes a versioned run record into
the registry directory (``.repro-runs/`` by default; override with
``--runs-dir`` or ``REPRO_RUNS_DIR``, suppress with ``--no-record``) —
that registry is what ``report``/``diff``/``history`` read.

``sweep`` (and ``fig``/``table`` with ``--jobs N``) fan the
workload x platform x seed matrix out across supervised worker
processes (:mod:`repro.exec`): per-cell timeouts with SIGKILL
escalation, heartbeat hang detection, capped-backoff retry,
poison-cell quarantine, and a crash-safe checkpoint under
``<runs dir>/sweeps/`` that ``--resume`` restarts from.  Each such run
also records per-process span files merged into one Chrome/Perfetto
trace (``--no-trace`` disables) and streams JSONL progress events next
to the checkpoint (``--progress`` forces the live status line on).
Bad input (unknown workload, invalid ``--seed``/``--scale``, missing
``--replay``) exits 2 with a one-line typed error, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments import (
    ExperimentContext,
    fault_resilience,
    fig1_instruction_mix,
    fig2_integer_breakdown,
    fig3_ipc,
    fig4_cache,
    fig5_tlb,
    fig6to9_locality,
    stack_impact,
    system_behaviors,
    table1_datasets,
    table2_reduction,
    table4_branch,
)
from repro.obs.registry import (
    RunRecord,
    RunRegistry,
    build_provenance,
    runs_dir_default,
)
from repro.uarch import ATOM_D510, XEON_E5645, characterize
from repro.workloads import (
    ALL_WORKLOADS,
    MPI_WORKLOADS,
    REPRESENTATIVE_WORKLOADS,
    workload,
)

_FIGURES = {
    "1": fig1_instruction_mix,
    "2": fig2_integer_breakdown,
    "3": fig3_ipc,
    "4": fig4_cache,
    "5": fig5_tlb,
}

_TABLES = {
    "2": table2_reduction,
    "4": table4_branch,
}


def _registry(args) -> RunRegistry:
    return RunRegistry(args.runs_dir)


def _save_record(args, record: RunRecord, quiet: bool = False) -> str:
    """Persist one run record unless ``--no-record`` was given."""
    if args.no_record:
        return ""
    path = _registry(args).save(record)
    if not quiet:
        print(f"\nrecorded {record.run_id} -> {path}")
    return path


def _record_experiment(
    args,
    context: ExperimentContext,
    experiment: str,
    result,
    *,
    kind: str = "experiment",
    platforms=None,
    config=None,
    quiet: bool = False,
) -> RunRecord:
    """Build + persist the record for one experiment result."""
    record = context.make_record(
        experiment,
        result.fidelity_metrics(),
        kind=kind,
        platforms=platforms,
        config=config,
    )
    _save_record(args, record, quiet=quiet)
    return record


def _cmd_list(_args) -> int:
    print(f"{'workload':26s} {'stack':8s} {'dataset':16s} {'category':22s} rep")
    for definition in ALL_WORKLOADS + MPI_WORKLOADS:
        marker = f"x{definition.represents}" if definition.representative else ""
        print(
            f"{definition.workload_id:26s} {definition.stack:8s} "
            f"{definition.dataset:16s} {definition.category.value:22s} {marker}"
        )
    print(f"\n{len(ALL_WORKLOADS)} catalog workloads + {len(MPI_WORKLOADS)} MPI versions")
    return 0


def _cmd_run(args) -> int:
    definition = workload(args.workload)
    platform = ATOM_D510 if args.platform == "d510" else XEON_E5645
    if not args.json:
        print(f"running {definition.workload_id} ({definition.description}) ...")
    cluster = None
    if getattr(args, "cluster", False):
        from repro.cluster.cluster import Cluster

        cluster = Cluster()
    result = definition.runner(scale=args.scale, seed=args.seed,
                               cluster=cluster)
    counters = characterize(result.profile, platform, seed=1234 + args.seed)
    metrics = dict(counters.metric_dict())
    if result.system is not None:
        for name, value in result.system.to_dict().items():
            metrics[f"system.{name}"] = float(value)
    record = RunRecord(
        experiment=f"run.{definition.workload_id}",
        kind="run",
        metrics=metrics,
        provenance=build_provenance(
            experiment=f"run.{definition.workload_id}",
            seed=args.seed,
            scale=args.scale,
            platforms=[platform.name],
        ),
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(
            json.dumps(
                {
                    "workload": definition.workload_id,
                    "platform": platform.name,
                    "scale": args.scale,
                    "seed": args.seed,
                    "run_id": record.run_id,
                    "metrics": metrics,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"platform: {platform.name}")
    for name, value in metrics.items():
        print(f"  {name:26s} {value:12.4f}")
    _save_record(args, record)
    return 0


def _cmd_trace(args) -> int:
    from repro.cluster.cluster import Cluster
    from repro.cluster.events import Simulation
    from repro.obs import Tracer, render_trace_summary, write_chrome_trace

    definition = workload(args.workload)
    tracer = Tracer(sample_interval=args.sample_interval)
    cluster = Cluster(sim=Simulation(tracer=tracer))
    print(f"tracing {definition.workload_id} ({definition.description}) ...")
    definition.runner(scale=args.scale, cluster=cluster, seed=args.seed)
    n_events = write_chrome_trace(
        tracer, args.out, process_name=f"repro {definition.workload_id}"
    )
    print(render_trace_summary(tracer))
    # Span counts and simulated durations are deterministic for a fixed
    # seed/scale, so the trace summary is a legitimate registry metric.
    metrics = {"trace.events": float(n_events)}
    by_category = {}
    for span in tracer.spans:
        bucket = by_category.setdefault(span.category, [0, 0.0])
        bucket[0] += 1
        bucket[1] += span.duration
    for category, (count, seconds) in sorted(by_category.items()):
        metrics[f"trace.{category}.spans"] = float(count)
        metrics[f"trace.{category}.seconds"] = seconds
    experiment = f"trace.{definition.workload_id}"
    record = RunRecord(
        experiment=experiment,
        kind="trace",
        metrics=metrics,
        provenance=build_provenance(
            experiment=experiment,
            seed=args.seed,
            scale=args.scale,
            platforms=[],
        ),
    )
    _save_record(args, record)
    print(
        f"\nwrote {n_events} trace events to {args.out} — load it in "
        f"Perfetto (ui.perfetto.dev) or chrome://tracing"
    )
    return 0


def _cmd_reduce(args) -> int:
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    with context.time_experiment("reduce"):
        result = table2_reduction.run(context, k=args.k, seed=args.seed)
    record = context.make_record(
        "reduce",
        result.fidelity_metrics(),
        series=result.to_dict(),
        config={"k": args.k},
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    for representative in result.reduction.representatives:
        members = result.reduction.clusters[representative]
        print(f"{representative:26s} represents {len(members)}")
    _save_record(args, record)
    return 0


def _print_timings(context: ExperimentContext) -> None:
    lines = context.timing_lines()
    if lines:
        print("\ntimings:")
        for line in lines:
            print(f"  {line}")


def _sweep_observability(args, checkpoint_dir: str, sweep_key: str):
    """Tracer + progress stream for one executor invocation.

    Tracing is on by default (``--no-trace`` disables): per-process
    span files land in ``<checkpoint dir>/trace/`` and the progress
    JSONL next to the journal.  The terminal status line engages when
    ``--progress`` is given, or by default on a tty.  Both are pure
    observers: the executor's results are bit-identical either way.
    """
    from repro.exec import SweepTracer
    from repro.obs.stream import ProgressStream, TerminalRenderer

    tracer = None
    if not getattr(args, "no_trace", False):
        tracer = SweepTracer(os.path.join(checkpoint_dir, "trace"))
    progress = getattr(args, "progress", None)
    want_line = progress if progress is not None else sys.stderr.isatty()
    renderer = TerminalRenderer() if want_line else None
    stream = ProgressStream(
        os.path.join(checkpoint_dir, "progress.jsonl"),
        sweep=sweep_key,
        renderer=renderer,
    )
    return tracer, stream


def _merge_observability(tracer, stream, checkpoint_dir: str,
                         quiet: bool = False) -> str:
    """Close the stream, merge span files into one Chrome trace."""
    from repro.errors import TraceMergeError
    from repro.exec import merge_sweep_trace

    stream.close()
    if tracer is None:
        return ""
    tracer.close()
    out = os.path.join(checkpoint_dir, "trace.json")
    try:
        n_events, n_flows = merge_sweep_trace(tracer.trace_dir, out)
    except TraceMergeError as error:
        print(f"warning: could not merge sweep trace: {error}",
              file=sys.stderr)
        return ""
    print(
        f"merged sweep trace: {n_events} event(s), {n_flows} retry "
        f"flow link(s) -> {out}",
        file=sys.stderr if quiet else sys.stdout,
    )
    return out


def _observability_telemetry(tracer, stream) -> dict:
    """Writer drop counters from the sweep's observers.

    These prove (or disprove) silent data loss: ``stream_*`` counts
    progress events, ``trace_*`` counts supervisor-lane spans.  They
    ride into the record's ``exec.*`` timings and surface via
    ``repro metrics`` as ``repro_exec_telemetry``.
    """
    counters = dict(stream.telemetry())
    if tracer is not None:
        counters.update(tracer.telemetry())
    return counters


def _prime_context(args, context: ExperimentContext, name: str,
                   pairs) -> None:
    """Fan a verb's characterization cells out across worker processes.

    Only engages for ``--jobs > 1`` (or ``--resume``); the primed
    context is bit-identical to a serially filled one, and quarantined
    cells silently fall back to in-process computation.
    """
    jobs = getattr(args, "jobs", 1) or 1
    resume = getattr(args, "resume", False)
    if jobs <= 1 and not resume:
        return
    from repro.exec import SweepCheckpoint, sweep_id
    from repro.obs.registry import config_hash

    config = {
        "verb": name,
        "pairs": sorted([w, p.name] for w, p in pairs),
        "scale": args.scale,
        "seed": args.seed,
    }
    chash = config_hash(config)
    sweep_key = sweep_id(name, chash, args.seed)
    checkpoint = SweepCheckpoint(args.runs_dir, sweep_key)
    checkpoint.initialise(
        config_hash=chash, seed=args.seed, config=config,
        n_cells=len(pairs),
    )
    tracer, stream = _sweep_observability(args, checkpoint.dir, sweep_key)
    outcome = context.prime(
        pairs,
        jobs=jobs,
        cell_timeout=getattr(args, "cell_timeout", None),
        checkpoint=checkpoint,
        resume=resume,
        tracer=tracer,
        observer=stream,
    )
    _merge_observability(tracer, stream, checkpoint.dir)
    for key, value in _observability_telemetry(tracer, stream).items():
        context.registry.add(f"exec.{key}", value)
    if outcome.quarantined:
        print(
            f"warning: {len(outcome.quarantined)} sweep cell(s) "
            f"quarantined; they will be computed serially in-process:\n"
            f"{outcome.render_quarantine()}",
            file=sys.stderr,
        )


def _fig_pairs(figure: str, context: ExperimentContext):
    """The (workload, platform) cells a figure consumes."""
    pairs = [(d.workload_id, context.xeon) for d in REPRESENTATIVE_WORKLOADS]
    if figure != "2":  # every other figure also plots the MPI six
        pairs += [(d.workload_id, context.xeon) for d in MPI_WORKLOADS]
    return pairs


def _cmd_fig(args) -> int:
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    if args.figure == "locality":
        _prime_context(args, context, "fig-locality",
                       _fig_pairs("locality", context))
        with context.time_experiment("fig-locality"):
            result = fig6to9_locality.run(context)
        print(result.render())
        _print_timings(context)
        _record_experiment(args, context, "fig-locality", result,
                           kind="figure")
        return 0
    module = _FIGURES.get(args.figure)
    if module is None:
        print(f"unknown figure {args.figure!r}; choose 1-5 or 'locality'",
              file=sys.stderr)
        return 2
    _prime_context(args, context, f"fig{args.figure}",
                   _fig_pairs(args.figure, context))
    with context.time_experiment(f"fig-{args.figure}"):
        result = module.run(context)
    print(result.render())
    _print_timings(context)
    _record_experiment(args, context, f"fig{args.figure}", result,
                       kind="figure")
    return 0


def _cmd_table(args) -> int:
    if args.table == "1":
        context = ExperimentContext(scale=args.scale, seed=args.seed)
        with context.time_experiment("table-1"):
            result = table1_datasets.run()
        print(result.render())
        _record_experiment(args, context, "table1", result, kind="table")
        return 0
    module = _TABLES.get(args.table)
    if module is None:
        print(f"unknown table {args.table!r}; choose 1, 2 or 4", file=sys.stderr)
        return 2
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    pairs = [(d.workload_id, context.xeon) for d in REPRESENTATIVE_WORKLOADS]
    if args.table == "4":
        pairs += [
            (d.workload_id, context.atom) for d in REPRESENTATIVE_WORKLOADS
        ]
    _prime_context(args, context, f"table{args.table}", pairs)
    with context.time_experiment(f"table-{args.table}"):
        result = module.run(context)
    print(result.render())
    _print_timings(context)
    platforms = (
        [XEON_E5645.name, ATOM_D510.name] if args.table == "4" else None
    )
    _record_experiment(args, context, f"table{args.table}", result,
                       kind="table", platforms=platforms)
    return 0


def _cmd_sweep(args) -> int:
    """The supervised parallel sweep over workload x platform x seed."""
    from repro.errors import InvalidParameterError
    from repro.exec import (
        SweepCheckpoint,
        SweepExecutor,
        decompose,
        merge_results,
        sweep_id,
        telemetry_lines,
    )
    from repro.exec.cells import PLATFORM_KEYS, platform_for
    from repro.obs.registry import config_hash

    if args.workloads:
        workload_ids = [w.strip() for w in args.workloads.split(",") if w.strip()]
    else:
        workload_ids = [d.workload_id for d in REPRESENTATIVE_WORKLOADS]
    for workload_id in workload_ids:
        workload(workload_id)  # typed UnknownWorkloadError before any work
    platforms = [p.strip() for p in args.platforms.split(",") if p.strip()]
    if not platforms:
        raise InvalidParameterError("--platforms must name at least one platform")
    for key in platforms:
        if key not in PLATFORM_KEYS:
            raise InvalidParameterError(
                f"unknown platform {key!r}; choose from "
                f"{', '.join(PLATFORM_KEYS)}"
            )
    seeds = list(range(args.seed, args.seed + args.seeds))
    cells = decompose(workload_ids, platforms, args.scale, seeds)

    config = {
        "workloads": workload_ids,
        "platforms": platforms,
        "scale": args.scale,
        "seeds": seeds,
    }
    chash = config_hash(config)
    name = args.name or "sweep"
    sweep_key = sweep_id(name, chash, args.seed)
    checkpoint = SweepCheckpoint(args.runs_dir, sweep_key)
    if args.resume and not checkpoint.exists():
        print(f"no checkpoint for this sweep config yet; starting fresh",
              file=sys.stderr)
    checkpoint.initialise(
        config_hash=chash, seed=args.seed, config=config,
        n_cells=len(cells),
    )
    tracer, stream = _sweep_observability(args, checkpoint.dir, sweep_key)
    executor = SweepExecutor(
        jobs=args.jobs, cell_timeout=args.cell_timeout,
        tracer=tracer, observer=stream,
    )
    outcome = executor.run(cells, checkpoint=checkpoint, resume=args.resume)
    _merge_observability(tracer, stream, checkpoint.dir, quiet=args.json)
    outcome.telemetry.update(_observability_telemetry(tracer, stream))

    if outcome.quarantined:
        print(
            f"sweep incomplete: {len(outcome.quarantined)} of "
            f"{len(cells)} cell(s) quarantined",
            file=sys.stderr,
        )
        print(outcome.render_quarantine(), file=sys.stderr)
        print("re-run with --resume after fixing the cause", file=sys.stderr)
        return 1

    merged = merge_results(cells, outcome.results,
                           single_seed=len(seeds) == 1)
    experiment = f"sweep.{args.name}" if args.name else "sweep"
    record = RunRecord(
        experiment=experiment,
        kind="sweep",
        metrics=merged,
        provenance=build_provenance(
            experiment=experiment,
            seed=args.seed,
            scale=args.scale,
            platforms=[platform_for(key).name for key in platforms],
            config=config,
        ),
        timings={f"exec.{k}": v for k, v in outcome.telemetry.items()},
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"sweep of {len(workload_ids)} workload(s) x {len(platforms)} "
        f"platform(s) x {len(seeds)} seed(s) = {len(cells)} cells "
        f"({len(merged)} metrics)"
    )
    for line in telemetry_lines(outcome.telemetry):
        print(f"  {line}")
    _save_record(args, record)
    return 0


def _cmd_profile(args) -> int:
    """Host hot-path profile of one workload characterization.

    Every measured number is wall-clock and therefore quarantined: the
    record's ``metrics`` are the ordinary (deterministic) performance
    counters, while the whole attribution lands in ``timings``.
    """
    from repro.obs.hostprof import profile_call

    definition = workload(args.workload)
    platform = ATOM_D510 if args.platform == "d510" else XEON_E5645
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    if not args.json:
        print(
            f"profiling {definition.workload_id} on {platform.name} "
            f"(host wall-clock, scale {args.scale}) ..."
        )
    counters, profile = profile_call(
        context.counters, definition.workload_id, platform
    )
    experiment = f"profile.{definition.workload_id}"
    record = RunRecord(
        experiment=experiment,
        kind="profile",
        metrics=dict(counters.metric_dict()),
        provenance=build_provenance(
            experiment=experiment,
            seed=args.seed,
            scale=args.scale,
            platforms=[platform.name],
        ),
        timings=profile.timings(),
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    print(profile.render_table(args.top))
    print()
    print(profile.render_flame())
    print(
        f"\nattributed {100 * profile.attributed_fraction():.1f}% of "
        f"{profile.total_s:.3f}s measured self time "
        f"({100 * profile.uarch_fraction():.1f}% inside repro.uarch)"
    )
    _save_record(args, record)
    return 0


def _cmd_metrics(args) -> int:
    """OpenMetrics-style exposition of registry and sweep counters."""
    from repro.obs.stream import render_openmetrics

    sys.stdout.write(render_openmetrics(args.runs_dir))
    return 0


def _cmd_stacks(args) -> int:
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    with context.time_experiment("stacks"):
        result = stack_impact.run(context)
    record = context.make_record(
        "stacks", result.fidelity_metrics(), series=result.to_dict()
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.render())
    _save_record(args, record)
    return 0


def _cmd_system(args) -> int:
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    with context.time_experiment("system"):
        result = system_behaviors.run(context)
    record = context.make_record(
        "system", result.fidelity_metrics(), series=result.to_dict()
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.render())
    _save_record(args, record)
    return 0


def _cmd_faults(args) -> int:
    from repro.errors import InvariantViolation

    context = ExperimentContext(scale=args.scale, seed=args.seed)
    try:
        with context.time_experiment("faults"):
            result = fault_resilience.run(context)
    except InvariantViolation as violation:
        # A lost wave or broken invariant is a simulator bug, never a
        # legitimate stack outcome: fail the command.
        print(f"invariant violation: {violation}", file=sys.stderr)
        return 1
    record = context.make_record(
        "faults", result.fidelity_metrics(), kind="faults",
        series=result.to_dict(),
    )
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.render())
    _save_record(args, record)
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import (
        load_replay,
        replay_to_dict,
        run_plan,
        save_replay,
        shrink_plan,
        violation_signature,
    )
    from repro.experiments import chaos_soak

    if args.replay:
        data = load_replay(args.replay)
        case = run_plan(
            data["workload"], data["stack"], data["plan"],
            scale=data.get("scale", args.scale),
        )
        if args.json:
            print(json.dumps(case.to_dict(), indent=2, sort_keys=True))
        else:
            print(
                f"replayed {data['workload']}/{data['stack']} "
                f"({len(data['plan'].faults)} faults): outcome={case.outcome}"
            )
            for violation in case.violations:
                print(f"  {violation.invariant}: {violation.detail}")
        if case.violations:
            print("violation reproduced", file=sys.stderr)
            return 1
        if not args.json:
            print("clean: the violation no longer reproduces")
        return 0

    workloads = args.workloads.split(",") if args.workloads else None
    stacks = args.stacks.split(",") if args.stacks else None
    context = ExperimentContext(scale=args.scale, seed=args.seed)
    result = chaos_soak.run(
        context, seeds=args.seeds, workloads=workloads, stacks=stacks
    )
    artifacts = []
    if not result.clean:
        # Minimise each violating plan and pin it to a replay file.
        os.makedirs(args.artifact_dir, exist_ok=True)
        for campaign in result.campaigns:
            for case in campaign.dirty_cases:
                plan = case.case.plan
                if not args.no_shrink:
                    plan = shrink_plan(
                        plan,
                        lambda candidate: violation_signature(
                            run_plan(
                                case.case.workload, case.case.stack,
                                candidate, scale=args.scale,
                            ).violations
                        ),
                    )
                path = os.path.join(
                    args.artifact_dir,
                    f"chaos-seed{campaign.seed}-{case.case.workload}-"
                    f"{case.case.stack}.json",
                )
                save_replay(
                    path,
                    replay_to_dict(
                        case.case.workload,
                        case.case.stack,
                        plan,
                        args.scale,
                        scenario=case.case.scenario,
                        seed=campaign.seed,
                        violations=[v.to_dict() for v in case.violations],
                    ),
                )
                artifacts.append(path)
    record = context.make_record(
        "chaos", result.fidelity_metrics(), kind="chaos",
        config={"seeds": args.seeds, "workloads": workloads,
                "stacks": stacks},
    )
    if args.json:
        _save_record(args, record, quiet=True)
        payload = result.to_dict()
        payload["artifacts"] = artifacts
        payload["run_id"] = record.run_id
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.render())
        for path in artifacts:
            print(f"minimized replay written to {path}")
        _save_record(args, record)
    return 0 if result.clean else 1


def _cmd_report(args) -> int:
    from repro.obs.report import scorecard

    experiments = args.experiments.split(",") if args.experiments else None
    card = scorecard(_registry(args), experiments=experiments)
    if args.json:
        print(json.dumps(card.to_dict(), indent=2, sort_keys=True))
    else:
        print(card.render())
    return 1 if args.strict and not card.ok else 0


def _cmd_diff(args) -> int:
    from repro.obs.report import diff_records

    registry = _registry(args)
    try:
        record_a = registry.resolve(args.run_a)
        record_b = registry.resolve(args.run_b)
    except (KeyError, ValueError) as error:
        print(f"cannot resolve run record: {error}", file=sys.stderr)
        return 3
    result = diff_records(
        record_a, record_b,
        rel_threshold=args.rel_threshold,
        abs_threshold=args.abs_threshold,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return result.exit_code


def _cmd_history(args) -> int:
    from repro.obs.report import history

    result = history(
        _registry(args), args.experiment, metrics=args.metric or None
    )
    if args.html:
        out = args.out or f"history-{args.experiment}.html"
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(result.to_html())
        print(f"wrote {out}")
        return 0
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.render())
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        default_baseline_path,
        default_lint_root,
        hashseed_crosscheck,
        lint_tree,
        load_baseline,
        new_findings,
        render_json,
        render_text,
        rule_catalog,
        save_baseline,
    )
    from repro.errors import InvalidParameterError

    if args.rules:
        for doc in rule_catalog():
            print(doc.render())
            print()
        return 0

    if args.dynamic:
        try:
            hash_seeds = tuple(
                int(s) for s in args.hash_seeds.split(",") if s.strip()
            )
        except ValueError:
            raise InvalidParameterError(
                f"--hash-seeds must be comma-separated integers, "
                f"got {args.hash_seeds!r}"
            )
        result = hashseed_crosscheck(
            workload=args.workload,
            scale=args.scale,
            seed=args.seed,
            hash_seeds=hash_seeds,
        )
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            print(result.render())
        return 0 if result.identical else 1

    root = args.path or default_lint_root()
    report = lint_tree(root)

    baseline_path = args.baseline or default_baseline_path()
    if args.update_baseline:
        target = args.baseline or default_baseline_path() or "tools/lint_baseline.json"
        count = save_baseline(target, report.findings)
        print(
            f"baseline {target} updated: {count} finding(s) grandfathered"
        )
        return 0
    baseline = load_baseline(baseline_path) if baseline_path else None
    fresh = new_findings(report.findings, baseline or {})
    if args.json:
        print(
            json.dumps(
                render_json(report, fresh, baseline_path, baseline),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(render_text(report, fresh, baseline_path, baseline))
    return 1 if fresh else 0


def _cmd_fsck(args) -> int:
    """Scan (and optionally repair) the runs directory; diff-style exits."""
    from repro.obs.fsck import fsck_repair, fsck_scan

    try:
        result = fsck_scan(args.runs_dir)
    except FileNotFoundError:
        print(f"fsck: runs directory {args.runs_dir!r} does not exist",
              file=sys.stderr)
        return 3
    payload = result.to_dict()
    exit_clean = result.clean
    if args.repair and result.findings:
        fsck_repair(result)
        after = fsck_scan(args.runs_dir)
        payload = result.to_dict()
        payload["post_repair"] = after.to_dict()
        exit_clean = after.clean
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.render())
        if args.repair and "post_repair" in payload:
            repaired = sum(1 for f in result.findings if f.repaired)
            print(f"\nrepaired {repaired} finding(s); post-repair scan: "
                  + ("clean" if exit_clean else "still has errors"))
    return 0 if exit_clean else 1


def _cmd_dash(args) -> int:
    """Render the static HTML observatory from the runs directory.

    Strictly read-only over ``--runs-dir`` (corrupt artifacts are
    reported on the health page, never touched) and byte-deterministic
    for a fixed directory state, so the output is diffable and
    cacheable.  No run record is written: the dash *reads* the
    registry, it is not an experiment.
    """
    from repro.obs.dashboard import render_site
    from repro.obs.observatory import build_model

    model = build_model(args.runs_dir)
    paths = render_site(model, args.out)
    summary = {
        "out": args.out,
        "pages": [os.path.basename(p) for p in paths],
        "records": len(model.records),
        "experiments": len(model.experiments()),
        "sweeps": len(model.sweeps),
        "skipped_artifacts": len(model.skipped),
        "health_errors": len(model.error_findings),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"observatory: {len(model.records)} record(s), "
        f"{len(model.experiments())} experiment(s), "
        f"{len(model.sweeps)} sweep(s) from {args.runs_dir}"
    )
    if model.skipped:
        print(
            f"  {len(model.skipped)} damaged/foreign artifact(s) skipped "
            "(see health.html)"
        )
    for path in paths:
        print(f"  wrote {path}")
    return 0


def _cmd_bench(args) -> int:
    """Noise-aware wall-clock benchmark of one named target."""
    from repro.obs.perf import bench_targets, run_bench

    if args.list:
        targets = bench_targets()
        width = max(len(name) for name in targets)
        for name in sorted(targets):
            target = targets[name]
            print(f"{name:<{width}s}  [{target.kind}] {target.description}")
        return 0
    if not args.target:
        print("bench: name a target (or use --list)", file=sys.stderr)
        return 2
    targets = bench_targets()
    if args.target not in targets:
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"unknown bench target {args.target!r} "
            f"(known: {', '.join(sorted(targets))})"
        )
    result = run_bench(
        targets[args.target],
        reps=args.reps,
        warmup=args.warmup,
        scale=args.scale,
        seed=args.seed,
    )
    record = result.to_record()
    if args.json:
        _save_record(args, record, quiet=True)
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0
    # Save before printing: a closed stdout (| head) must not cost the
    # measurement.
    path = _save_record(args, record, quiet=True)
    print(result.render())
    if path:
        print(f"\nrecorded {record.run_id} -> {path}")
    return 0


def _cmd_perfdiff(args) -> int:
    """Gate the latest bench records against the committed budgets."""
    from repro.obs.perf import load_budgets, perfdiff, update_budgets

    registry = _registry(args)
    targets = (
        [t for t in args.targets.split(",") if t.strip()]
        if args.targets else None
    )
    if args.update_budgets:
        manifest = update_budgets(registry, args.budgets, targets=targets)
        print(
            f"budget manifest {args.budgets} updated: "
            f"{len(manifest['budgets'])} target(s)"
        )
        return 0
    manifest = load_budgets(args.budgets)
    result = perfdiff(
        registry, manifest, budgets_path=args.budgets, targets=targets
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    if args.warn_only and result.exit_code != 0:
        # CI annotation format; the gate reports but does not fail
        # until enough baselines exist to trust the intervals.
        for verdict in result.regressions:
            print(
                f"::warning title=perf regression ({verdict.target})::"
                f"{verdict.detail}"
            )
        print("perfdiff: regressions found, but --warn-only is set (exit 0)")
        return 0
    return result.exit_code


def _cmd_crashsim(args) -> int:
    """Run the crash-consistency campaign over a scratch sweep."""
    import shutil
    import tempfile

    from repro.analysis.crashsim import run_campaign

    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-crashsim-")
    cleanup = args.work_dir is None
    try:
        result = run_campaign(
            work_dir,
            seed=args.seed,
            scale=args.scale,
            jobs=args.jobs,
            max_points=args.max_points,
            errno_points=args.errno_points,
            fsync_lie_points=args.fsync_lie_points,
            artifact_dir=args.artifact_dir,
        )
    finally:
        if cleanup:
            shutil.rmtree(work_dir, ignore_errors=True)
    _save_record(args, RunRecord(
        experiment="crashsim",
        kind="analysis",
        metrics=result.fidelity_metrics(),
        provenance=build_provenance(
            experiment="crashsim", seed=args.seed, scale=args.scale,
            platforms=[],
            config={"max_points": args.max_points,
                    "errno_points": args.errno_points,
                    "fsync_lie_points": args.fsync_lie_points,
                    "jobs": args.jobs},
        ),
    ), quiet=True)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Characterization and Architectural "
                    "Implications of Big Data Workloads' (ISPASS 2016).",
    )
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload scale factor (default 0.5)")
    parser.add_argument(
        "--runs-dir", default=runs_dir_default(), metavar="DIR",
        help="run-record registry directory (default .repro-runs/, "
             "or $REPRO_RUNS_DIR)",
    )
    parser.add_argument(
        "--no-record", action="store_true",
        help="do not write a run record for this invocation",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list the workload catalog")

    run_parser = commands.add_parser("run", help="run one workload")
    run_parser.add_argument("workload", help="workload id, e.g. S-WordCount")
    run_parser.add_argument("--platform", choices=("e5645", "d510"),
                            default="e5645")
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="workload + characterization seed (default 0)",
    )
    run_parser.add_argument(
        "--cluster", action="store_true",
        help="replay the workload on the simulated cluster and record "
             "system.* metrics (partition-layout sensitive)",
    )
    run_parser.add_argument("--json", action="store_true",
                            help="emit metrics as JSON instead of a table")

    trace_parser = commands.add_parser(
        "trace",
        help="run one workload on a traced cluster; export a Chrome trace",
    )
    trace_parser.add_argument("workload", help="workload id, e.g. S-WordCount")
    trace_parser.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event output path (default trace.json)",
    )
    trace_parser.add_argument(
        "--sample-interval", type=float, default=None, metavar="S",
        help="sample per-node utilization every S simulated seconds "
             "(default: wave boundaries only)",
    )
    trace_parser.add_argument("--seed", type=int, default=0)

    reduce_parser = commands.add_parser("reduce", help="the 77 -> 17 reduction")
    reduce_parser.add_argument("--k", type=int, default=17)
    reduce_parser.add_argument("--seed", type=int, default=0)
    reduce_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry run-record schema instead of a table",
    )

    def add_executor_flags(sub) -> None:
        sub.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for the characterization sweep "
                 "(default 1: serial in-process)",
        )
        sub.add_argument(
            "--cell-timeout", type=float, default=None, metavar="S",
            help="wall-clock seconds one sweep cell may take before its "
                 "worker is SIGKILLed and the cell retried (default 300)",
        )
        sub.add_argument(
            "--resume", action="store_true",
            help="resume from this configuration's sweep checkpoint, "
                 "re-running only incomplete cells",
        )
        sub.add_argument(
            "--no-trace", action="store_true",
            help="skip the per-process span files and merged Chrome "
                 "trace this run would otherwise record",
        )
        sub.add_argument(
            "--progress", action=argparse.BooleanOptionalAction,
            default=None,
            help="force the live progress line on (or off with "
                 "--no-progress); default: on when stderr is a tty",
        )

    fig_parser = commands.add_parser("fig", help="regenerate a figure")
    fig_parser.add_argument("figure", help="1-5 or 'locality' (6-9)")
    fig_parser.add_argument("--seed", type=int, default=0)
    add_executor_flags(fig_parser)

    table_parser = commands.add_parser("table", help="regenerate a table")
    table_parser.add_argument("table", help="1, 2 or 4")
    table_parser.add_argument("--seed", type=int, default=0)
    add_executor_flags(table_parser)

    sweep_parser = commands.add_parser(
        "sweep",
        help="characterize a workload x platform x seed matrix across "
             "supervised worker processes, with checkpoint/resume",
    )
    sweep_parser.add_argument(
        "--workloads", default=None, metavar="A,B,...",
        help="comma-separated workload ids (default: the 17 "
             "representatives)",
    )
    sweep_parser.add_argument(
        "--platforms", default="e5645", metavar="P,Q",
        help="comma-separated platforms: e5645, d510 (default e5645)",
    )
    sweep_parser.add_argument(
        "--seed", type=int, default=0,
        help="first seed of the matrix (default 0)",
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="number of consecutive seeds starting at --seed (default 1)",
    )
    sweep_parser.add_argument(
        "--name", default=None,
        help="sweep name, used in the record id and checkpoint key "
             "(default 'sweep')",
    )
    sweep_parser.add_argument("--json", action="store_true")
    add_executor_flags(sweep_parser)

    profile_parser = commands.add_parser(
        "profile",
        help="host hot-path profiler: attribute one workload "
             "characterization's wall-clock to repro functions "
             "(cProfile; all timings quarantined)",
    )
    profile_parser.add_argument(
        "workload", help="workload id, e.g. S-WordCount"
    )
    profile_parser.add_argument(
        "--platform", choices=("e5645", "d510"), default="e5645"
    )
    profile_parser.add_argument(
        "--seed", type=int, default=0,
        help="characterization seed (default 0)",
    )
    profile_parser.add_argument(
        "--top", type=int, default=20, metavar="N",
        help="rows in the hot-function table (default 20)",
    )
    profile_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry run-record schema instead of the report",
    )

    commands.add_parser(
        "metrics",
        help="OpenMetrics-style text exposition of registry record "
             "counts, executor telemetry and sweep progress",
    )

    stacks_parser = commands.add_parser(
        "stacks", help="the §5.5 software-stack study"
    )
    stacks_parser.add_argument("--seed", type=int, default=0)
    stacks_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry run-record schema instead of a table",
    )

    system_parser = commands.add_parser(
        "system", help="§3.2 system-behaviour classification"
    )
    system_parser.add_argument("--seed", type=int, default=0)
    system_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry run-record schema instead of a table",
    )

    faults_parser = commands.add_parser(
        "faults",
        help="fault resilience: Hadoop vs Spark vs MPI under a node crash",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed (same seed, same faults, same metrics)",
    )
    faults_parser.add_argument(
        "--json", action="store_true",
        help="emit the resilience results as JSON instead of a table",
    )

    chaos_parser = commands.add_parser(
        "chaos",
        help="invariant-audited chaos campaigns over the workload x stack "
             "matrix; exits nonzero on any violation",
    )
    chaos_parser.add_argument(
        "--seeds", type=int, default=5,
        help="number of consecutive campaign seeds to run (default 5)",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=0,
        help="first campaign seed (default 0)",
    )
    chaos_parser.add_argument(
        "--workloads", default=None,
        help="comma-separated workloads (default wordcount,grep; "
             "also: sort)",
    )
    chaos_parser.add_argument(
        "--stacks", default=None,
        help="comma-separated stacks (default Hadoop,Spark,MPI)",
    )
    chaos_parser.add_argument(
        "--artifact-dir", default="chaos-artifacts",
        help="where minimized replay files for violations land "
             "(default chaos-artifacts/)",
    )
    chaos_parser.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run one saved replay file instead of a campaign; "
             "exits 1 if its violation still reproduces",
    )
    chaos_parser.add_argument(
        "--no-shrink", action="store_true",
        help="save violating plans as-is instead of minimizing them",
    )
    chaos_parser.add_argument(
        "--json", action="store_true",
        help="emit campaign verdicts as JSON instead of a table",
    )

    report_parser = commands.add_parser(
        "report",
        help="paper-fidelity scorecard: latest recorded runs vs the "
             "paper's anchor numbers",
    )
    report_parser.add_argument(
        "--experiments", default=None, metavar="A,B,...",
        help="restrict the scorecard to these experiments "
             "(default: every anchored experiment)",
    )
    report_parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any anchor fails or lacks a recorded run",
    )
    report_parser.add_argument("--json", action="store_true")

    diff_parser = commands.add_parser(
        "diff",
        help="per-metric drift between two run records; exits 1 on "
             "drift, 2 on metric-set mismatch",
    )
    diff_parser.add_argument(
        "run_a",
        help="baseline: a record path, run id, experiment name "
             "(latest), or experiment~N",
    )
    diff_parser.add_argument("run_b", help="candidate, same forms")
    diff_parser.add_argument(
        "--rel-threshold", type=float, default=0.005, metavar="R",
        help="relative drift a metric must exceed to count (default 0.005)",
    )
    diff_parser.add_argument(
        "--abs-threshold", type=float, default=1e-9, metavar="A",
        help="absolute drift floor (default 1e-9)",
    )
    diff_parser.add_argument("--json", action="store_true")

    history_parser = commands.add_parser(
        "history",
        help="one experiment's metric trajectory across recorded runs",
    )
    history_parser.add_argument("experiment", help="e.g. fig3 or faults")
    history_parser.add_argument(
        "--metric", action="append", metavar="NAME",
        help="restrict to this metric (repeatable; default: all)",
    )
    history_parser.add_argument("--json", action="store_true")
    history_parser.add_argument(
        "--html", action="store_true",
        help="write a standalone HTML page with SVG trend lines",
    )
    history_parser.add_argument(
        "--out", default=None,
        help="HTML output path (default history-<experiment>.html)",
    )

    lint_parser = commands.add_parser(
        "lint",
        help="determinism sanitizer: AST lint of src/repro against the "
             "committed baseline; exits 1 on new findings",
    )
    lint_parser.add_argument(
        "path", nargs="?", default=None,
        help="file or directory to lint (default: the installed repro "
             "package tree)",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline of grandfathered findings "
             "(default: tools/lint_baseline.json when present)",
    )
    lint_parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather the current findings",
    )
    lint_parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue (IDs, rationale, fix hints) and exit",
    )
    lint_parser.add_argument(
        "--dynamic", action="store_true",
        help="runtime cross-check instead of static rules: run one "
             "fixed-seed workload under two PYTHONHASHSEED values and "
             "require byte-identical registry records",
    )
    lint_parser.add_argument(
        "--workload", default="H-WordCount",
        help="workload for --dynamic (default H-WordCount; Hadoop "
             "workloads expose partition skew to the cluster replay)",
    )
    lint_parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed for --dynamic (default 0)",
    )
    lint_parser.add_argument(
        "--hash-seeds", default="1,731", metavar="A,B",
        help="PYTHONHASHSEED values for --dynamic (default 1,731)",
    )
    lint_parser.add_argument("--json", action="store_true")

    fsck_parser = commands.add_parser(
        "fsck",
        help="scan the runs directory for torn, corrupt or orphaned "
             "artifacts; exits 1 on errors, 3 if the directory is missing",
    )
    fsck_parser.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt artifacts, drop torn journal tails, "
             "rebuild divergent snapshots and remove leaked tmp files / "
             "stale locks, then rescan",
    )
    fsck_parser.add_argument(
        "--json", action="store_true",
        help="emit typed findings as JSON instead of a report",
    )

    dash_parser = commands.add_parser(
        "dash",
        help="render the static HTML observatory (scorecard, history, "
             "sweep timelines, hot functions, bench trends, health) "
             "from the runs directory",
    )
    dash_parser.add_argument(
        "--out", default="observatory", metavar="DIR",
        help="output directory for the site (default observatory/)",
    )
    dash_parser.add_argument(
        "--json", action="store_true",
        help="emit a render summary as JSON instead of the page list",
    )

    bench_parser = commands.add_parser(
        "bench",
        help="noise-aware wall-clock benchmark of one target "
             "(experiment regen or repro.uarch kernel); records a "
             "kind=bench run record with median/MAD/bootstrap-CI",
    )
    bench_parser.add_argument(
        "target", nargs="?", default=None,
        help="target name, e.g. fig4 or uarch.cache-walk (see --list)",
    )
    bench_parser.add_argument(
        "--reps", type=int, default=5, metavar="N",
        help="measured repetitions (default 5)",
    )
    bench_parser.add_argument(
        "--warmup", type=int, default=1, metavar="K",
        help="discarded warmup repetitions (default 1)",
    )
    bench_parser.add_argument(
        "--seed", type=int, default=0,
        help="workload/characterization seed (default 0)",
    )
    bench_parser.add_argument(
        "--list", action="store_true",
        help="list the bench targets and exit",
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="emit the registry run-record schema instead of the report",
    )

    perfdiff_parser = commands.add_parser(
        "perfdiff",
        help="compare the latest kind=bench records against the "
             "committed perf budgets; exits 1 only when a candidate's "
             "confidence interval separates above its budget's",
    )
    perfdiff_parser.add_argument(
        "--budgets", default=os.path.join(
            "benchmarks", "baselines", "perf_budgets.json"
        ), metavar="FILE",
        help="budget manifest (default benchmarks/baselines/"
             "perf_budgets.json)",
    )
    perfdiff_parser.add_argument(
        "--targets", default=None, metavar="A,B,...",
        help="restrict the gate to these targets (default: every "
             "budgeted target)",
    )
    perfdiff_parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions as CI warning annotations but exit 0",
    )
    perfdiff_parser.add_argument(
        "--update-budgets", action="store_true",
        help="rewrite the manifest from the latest bench records "
             "(preserves hot_functions/note annotations)",
    )
    perfdiff_parser.add_argument("--json", action="store_true")

    crashsim_parser = commands.add_parser(
        "crashsim",
        help="crash-consistency campaign: crash/errno/fsync-lie faults "
             "at every sampled syscall of an instrumented sweep must "
             "leave a state repro fsck can certify or repair, with "
             "bit-identical resumed metrics",
    )
    crashsim_parser.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed: drives torn-write lengths and rename "
             "rollback choices (default 0)",
    )
    crashsim_parser.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the instrumented sweeps (default 2)",
    )
    crashsim_parser.add_argument(
        "--max-points", type=int, default=24, metavar="N",
        help="crash points sampled across the op space (default 24)",
    )
    crashsim_parser.add_argument(
        "--errno-points", type=int, default=6, metavar="N",
        help="ENOSPC/EIO injection points (default 6)",
    )
    crashsim_parser.add_argument(
        "--fsync-lie-points", type=int, default=4, metavar="N",
        help="crash points additionally re-run with a lying fsync "
             "(default 4)",
    )
    crashsim_parser.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="scratch directory for campaign sweeps (default: a "
             "temporary directory, removed afterwards)",
    )
    crashsim_parser.add_argument(
        "--artifact-dir", default="crashsim-artifacts", metavar="DIR",
        help="where minimized crash traces for failing points land "
             "(default crashsim-artifacts/)",
    )
    crashsim_parser.add_argument(
        "--json", action="store_true",
        help="emit the campaign verdict as JSON instead of a report",
    )
    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "reduce": _cmd_reduce,
    "fig": _cmd_fig,
    "table": _cmd_table,
    "sweep": _cmd_sweep,
    "profile": _cmd_profile,
    "metrics": _cmd_metrics,
    "stacks": _cmd_stacks,
    "system": _cmd_system,
    "faults": _cmd_faults,
    "chaos": _cmd_chaos,
    "report": _cmd_report,
    "diff": _cmd_diff,
    "history": _cmd_history,
    "lint": _cmd_lint,
    "fsck": _cmd_fsck,
    "dash": _cmd_dash,
    "bench": _cmd_bench,
    "perfdiff": _cmd_perfdiff,
    "crashsim": _cmd_crashsim,
}


def _validate_args(args) -> None:
    """Range-check shared numeric options before any work starts."""
    from repro.errors import InvalidParameterError

    scale = getattr(args, "scale", None)
    if scale is not None and not (0 < scale <= 100):
        raise InvalidParameterError(
            f"--scale must be in (0, 100], got {scale!r}"
        )
    seed = getattr(args, "seed", None)
    if seed is not None and seed < 0:
        raise InvalidParameterError(f"--seed must be >= 0, got {seed!r}")
    seeds = getattr(args, "seeds", None)
    if seeds is not None and seeds < 1:
        raise InvalidParameterError(f"--seeds must be >= 1, got {seeds!r}")
    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        raise InvalidParameterError(f"--jobs must be >= 1, got {jobs!r}")
    cell_timeout = getattr(args, "cell_timeout", None)
    if cell_timeout is not None and cell_timeout <= 0:
        raise InvalidParameterError(
            f"--cell-timeout must be > 0, got {cell_timeout!r}"
        )
    top = getattr(args, "top", None)
    if top is not None and top < 1:
        raise InvalidParameterError(f"--top must be >= 1, got {top!r}")
    reps = getattr(args, "reps", None)
    if reps is not None and reps < 1:
        raise InvalidParameterError(f"--reps must be >= 1, got {reps!r}")
    warmup = getattr(args, "warmup", None)
    if warmup is not None and warmup < 0:
        raise InvalidParameterError(
            f"--warmup must be >= 0, got {warmup!r}"
        )


def main(argv=None) -> int:
    from repro.errors import FaultPlanError, LintError, UsageError

    args = build_parser().parse_args(argv)
    try:
        _validate_args(args)
        return _HANDLERS[args.command](args)
    except UsageError as error:
        # Bad input is a one-line answer, never a traceback (exit 2).
        print(f"{type(error).__name__}: {error}", file=sys.stderr)
        return error.exit_code
    except FaultPlanError as error:
        # Malformed replay/fault plans are input errors too.
        print(f"{type(error).__name__}: {error}", file=sys.stderr)
        return 2
    except LintError as error:
        # A sanitizer that cannot analyse is a failing sanitizer.
        print(f"{type(error).__name__}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
