"""Typed exceptions for the simulation substrate.

The hierarchy exists so callers can tell *what kind* of thing went
wrong without parsing messages:

- :class:`SimulationError` — the discrete-event substrate itself was
  misused or reached an impossible state (double-triggered event,
  release without request).  Subclasses ``RuntimeError`` so code (and
  tests) written against the pre-typed errors keep working.
- :class:`InvariantViolation` — a runtime invariant the chaos auditor
  (or the scheduler's own drain check) watches over was broken: work
  was lost or double-counted, a resource leaked, the clock ran
  backwards.  Carries the structured :class:`repro.chaos.audit.Violation`
  records when raised by the auditor.
- :class:`FaultPlanError` — a :class:`~repro.cluster.faults.FaultPlan`
  is malformed (negative times, overlapping crash windows, unknown
  nodes).  Also subclasses ``ValueError`` because plan validation is
  input validation.
- :class:`JobFailedError` — the recovery policy gave up on a job (or
  forbids recovery altogether, the MPI/Impala behaviour).  Re-homed
  here from ``repro.stacks.scheduler``, which still re-exports it.
- :class:`UsageError` — the *user's input* was wrong (unknown workload
  id, invalid ``--seed``/``--scale``, missing ``--replay`` file).  The
  CLI maps the whole family to a one-line message and exit code 2, so
  bad input never produces a traceback.
- :class:`ExecError` — the parallel sweep executor could not complete
  or trust a sweep: a checkpoint is corrupt or belongs to a different
  configuration (:class:`CheckpointError`), another live process holds
  the sweep's advisory lock (:class:`SweepLockError`), a cell result
  failed its
  provenance-hash validation at merge time
  (:class:`CellIntegrityError`), or the per-worker span files of a
  sweep could not be merged into one trace
  (:class:`TraceMergeError`).
- :class:`ProfilerError` — the host-side hot-path profiler
  (``repro profile``) could not complete: profiling machinery failed
  or produced an empty sample.  Distinct from :class:`LintError`
  because an unprofilable run is an observability failure, not a
  determinism hazard.
- :class:`LintError` — the determinism sanitizer (``repro lint``)
  could not complete an analysis: an unreadable file, a failed
  subprocess probe.  :class:`DynamicDivergenceError` is the probe's
  *positive* result — two ``PYTHONHASHSEED`` values produced different
  registry records, i.e. a metric depends on hash salting.
  :class:`LintBaselineError` is the usage-error side (exit 2): a
  ``--baseline`` file that is missing, unreadable or malformed.

Every error carries an optional ``context`` dict of diagnostic
key/values (sim time, node, wave, task indices) rendered into ``str()``
so failures name their circumstances.
"""

from __future__ import annotations

from typing import Optional


class SimulationError(RuntimeError):
    """The discrete-event substrate was misused or is inconsistent."""

    def __init__(self, message: str, **context):
        self.context = context
        if context:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
            message = f"{message} [{detail}]"
        super().__init__(message)


class InvariantViolation(SimulationError):
    """A runtime invariant over the simulation state was broken.

    ``violations`` holds the auditor's structured records when the
    auditor raised this; a single-condition violation (the scheduler's
    stranded-wave check) leaves it empty and relies on ``context``.
    """

    def __init__(self, message: str, violations: Optional[list] = None, **context):
        super().__init__(message, **context)
        self.violations = list(violations) if violations else []


class FaultPlanError(SimulationError, ValueError):
    """A fault plan is malformed; refuse it rather than misbehave."""


class JobFailedError(SimulationError):
    """The recovery policy gave up (or forbids recovery altogether)."""


class UsageError(Exception):
    """The user's input was wrong; report one line and exit 2.

    ``exit_code`` is what the CLI returns for the whole family; the
    message alone must be enough to correct the invocation.
    """

    exit_code = 2

    def __init__(self, message: str, **context):
        self.context = context
        if context:
            detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
            message = f"{message} [{detail}]"
        self._message = message
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self._message


class UnknownWorkloadError(UsageError, KeyError):
    """A workload id is not in the catalog.

    Also a ``KeyError`` so pre-typed lookup callers keep working.
    """


class InvalidParameterError(UsageError, ValueError):
    """A CLI parameter value is out of range or malformed."""


class ReplayFileError(UsageError):
    """A ``--replay`` path is missing or unreadable."""


class ExecError(SimulationError):
    """The parallel sweep executor failed in a way retry cannot fix."""


class CheckpointError(ExecError):
    """A sweep checkpoint is corrupt or from a different sweep config."""


class SweepLockError(CheckpointError):
    """Another live process holds the sweep's advisory lock.

    Raised instead of interleaving journal appends: two concurrent
    resumes of the same sweep would corrupt the checkpoint.  Stale
    locks (holder pid no longer alive) are broken automatically and do
    not raise.
    """


class CellIntegrityError(ExecError):
    """A cell result's provenance hash does not match its payload."""


class TraceMergeError(ExecError):
    """A sweep's per-worker span files could not be merged."""


class ProfilerError(SimulationError):
    """The host-side hot-path profiler could not complete."""


class PerfError(SimulationError):
    """The wall-clock bench harness could not produce a trustworthy
    sample: an unknown target, invalid rep counts, or a target whose
    deterministic payload differed between reps (timing a
    nondeterministic function measures nothing)."""


class BudgetManifestError(UsageError):
    """A perf-budget manifest is missing, unreadable or malformed."""


class LintError(SimulationError):
    """The determinism sanitizer could not complete its analysis."""


class DynamicDivergenceError(LintError):
    """Two PYTHONHASHSEED runs produced different registry records.

    This is the runtime proof of a determinism bug: some metric or
    series value depends on Python's per-process string-hash salt.
    """


class LintBaselineError(UsageError):
    """A lint baseline file is missing, unreadable or malformed."""
