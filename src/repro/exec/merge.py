"""Provenance-validated merging of sweep cells into one record.

The merge is where the executor's bit-identity promise is enforced:
before any cell contributes to the merged metrics, its provenance hash
is recomputed from the (spec, metrics) pair that was journaled.  A
checkpoint entry that was corrupted on disk, hand-edited, or produced
by a different sweep configuration fails the check and aborts the
merge with :class:`~repro.errors.CellIntegrityError` — a wrong merged
record is strictly worse than no record.

Merged metric keys are ``<workload>.<platform>.s<seed>.<metric>``, a
pure function of the cell spec, so a serial run, a 16-way parallel
run, and a crashed-and-resumed run of the same matrix merge to
byte-identical metrics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import CellIntegrityError, ExecError
from repro.exec.cells import (
    CellResult,
    SweepCell,
    provenance_hash,
)


def validate_cell(cell: SweepCell, result: CellResult) -> None:
    """Recompute and check one cell's provenance hash."""
    spec = cell.to_dict()
    spec.pop("fn", None)
    spec.pop("extra", None)
    expected = provenance_hash(spec, result.metrics)
    if expected != result.provenance_hash:
        raise CellIntegrityError(
            "cell result failed provenance validation; the checkpoint "
            "entry does not match the cell that was requested",
            cell=cell.cell_id,
            expected=expected,
            found=result.provenance_hash,
        )


def merge_results(
    cells: Sequence[SweepCell],
    results: Dict[str, CellResult],
    *,
    single_seed: bool = False,
) -> Dict[str, float]:
    """Combine completed cells into the merged metric namespace.

    Requires every cell to be present and valid; incomplete sweeps
    (quarantined cells) must be resolved or re-run before merging.
    """
    missing = [c.cell_id for c in cells if c.cell_id not in results]
    if missing:
        raise ExecError(
            f"cannot merge an incomplete sweep: {len(missing)} cell(s) "
            f"missing ({', '.join(missing[:4])}...)"
            if len(missing) > 4 else
            f"cannot merge an incomplete sweep: missing {', '.join(missing)}"
        )
    merged: Dict[str, float] = {}
    for cell in cells:
        result = results[cell.cell_id]
        if result.status != "ok":
            raise ExecError(
                f"cell {cell.cell_id} is {result.status}, not ok; "
                f"resolve the quarantine before merging"
            )
        validate_cell(cell, result)
        prefix = (
            f"{cell.workload}.{cell.platform}"
            if single_seed
            else f"{cell.workload}.{cell.platform}.s{cell.seed}"
        )
        for name, value in result.metrics.items():
            merged[f"{prefix}.{name}"] = value
    return merged


def telemetry_lines(telemetry: Dict[str, float]) -> List[str]:
    """Human-readable executor telemetry, stable order."""
    labels = [
        ("jobs", "workers"),
        ("cells_total", "cells in matrix"),
        ("cells_from_checkpoint", "resumed from checkpoint"),
        ("cells_run", "cell executions"),
        ("cells_ok", "completed"),
        ("cells_retried", "retries"),
        ("cells_quarantined", "quarantined"),
        ("timeouts", "cell timeouts"),
        ("stalls", "stalled workers"),
        ("worker_crashes", "worker crashes"),
        ("worker_restarts", "worker restarts"),
        ("degraded_serial", "degraded to serial"),
        ("queue_wait_s", "total queue wait (s)"),
        ("wall_s", "wall clock (s)"),
    ]
    lines = []
    for key, label in labels:
        if key in telemetry:
            value = telemetry[key]
            text = f"{value:.3f}" if key.endswith("_s") else f"{value:g}"
            lines.append(f"{label}: {text}")
    return lines
