"""Crash-safe sweep checkpoints: append-only journal + atomic snapshot.

Layout, under ``<runs dir>/sweeps/<sweep_id>/``:

- ``manifest.json`` — the sweep's identity: config hash, seed, the
  config itself and the cell count.  Written atomically once, checked
  on resume so a checkpoint can never be resumed under a different
  configuration.
- ``journal.jsonl`` — one line per completed cell, appended with
  flush + fsync *before* the supervisor considers the cell done.  A
  SIGKILL at any instant loses at most the in-flight cells; a torn
  final line (crash mid-append) is detected and dropped on load.
- ``snapshot.json`` — a periodic full snapshot written via tmp-file +
  ``os.replace`` (+ fsync), bounding journal replay time.  If it is
  corrupt the journal alone still reconstructs the state; the bad file
  is quarantined to ``snapshot.json.corrupt``.

- ``sweep.lock`` — an advisory lockfile (JSON ``{"pid": ...}``) held
  while an executor owns the checkpoint, so two concurrent resumes of
  the same sweep cannot interleave journal appends.  A lock whose
  holder pid is no longer alive is *stale* and broken automatically; a
  live holder raises :class:`~repro.errors.SweepLockError`.

The durable key is (config hash, seed): ``repro sweep --resume`` finds
the checkpoint by recomputing the hash from its arguments, so "the same
sweep" is a property of the request, not of a process lifetime.

All writes route through :mod:`repro.fsio` (the ``io`` constructor
argument), which is what lets the crash-consistency campaign enumerate
every syscall boundary in this file.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional

from repro.errors import CheckpointError, SweepLockError
from repro.fsio import (
    JournalWriter,
    SimulatedCrash,
    fsync_dir,
    quarantine_corrupt,
    write_json_atomic,
)
from repro.exec.cells import CellResult

#: Bumped on incompatible checkpoint-layout changes.
CHECKPOINT_VERSION = 1

#: Default cells between snapshot rewrites.
SNAPSHOT_EVERY = 10

#: Lockfile name inside a sweep checkpoint directory.
LOCK_FILE = "sweep.lock"


def sweep_id(name: str, config_hash: str, seed: int) -> str:
    """The durable checkpoint key for one sweep request."""
    return f"{name}-{config_hash}-s{seed}"


class SweepLock:
    """Advisory per-sweep lockfile with stale-holder detection.

    Created with ``O_EXCL`` so exactly one process wins; the file body
    is JSON ``{"pid": ...}``.  A lock is considered *stale* — and
    silently broken — when any of these hold:

    - the recorded pid is not alive (``os.kill(pid, 0)`` says so);
    - the recorded pid is *this* process (a previous in-process owner
      crashed without releasing — the simulated-crash path — and a
      process cannot race itself);
    - the body does not parse (the lock itself was torn by a crash).

    A lock held by a different live process raises
    :class:`~repro.errors.SweepLockError`.
    """

    def __init__(self, path: str, io=None):
        from repro.fsio import REAL_IO
        self.path = path
        self.io = io if io is not None else REAL_IO
        self._held = False

    def acquire(self) -> None:
        if self._held:
            return
        self.io.makedirs(os.path.dirname(self.path) or ".")
        while True:
            try:
                handle = self.io.open_exclusive(self.path)
            except FileExistsError:
                holder = self._holder_pid()
                if holder is not None and self._alive(holder):
                    raise SweepLockError(
                        f"sweep checkpoint is locked by live pid {holder}; "
                        f"another resume is running (remove {self.path} "
                        f"only if you are sure it is not)",
                    )
                # Stale (dead holder, our own pid, or torn body): break it.
                try:
                    self.io.remove(self.path)
                except FileNotFoundError:
                    pass  # the holder released between our check and remove
                continue
            try:
                self.io.write(handle, json.dumps({"pid": os.getpid()}) + "\n")
                self.io.flush(handle)
            finally:
                self.io.close(handle)
            self._held = True
            return

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.io.remove(self.path)
        except (OSError, SimulatedCrash):  # repro: allow[ERR002]
            # A dead (or dying) process cannot release its lock: the
            # stale file stays behind for fsck / the next acquire to
            # break, which is exactly the state being simulated.
            pass

    def _holder_pid(self) -> Optional[int]:
        """The pid recorded in the lockfile, or None if unreadable."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                body = json.load(handle)
            return int(body["pid"])
        except (OSError, ValueError, KeyError, TypeError):  # repro: allow[ERR002] — read-path probe, unreadable == stale
            return None  # torn or foreign lock body: treat as stale

    @staticmethod
    def _alive(pid: int) -> bool:
        if pid == os.getpid():
            return False  # our own leftover (in-process crash recovery)
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # repro: allow[ERR002] — signal-0 probe, not a write
            return True  # alive, just not ours to signal
        except OSError:  # repro: allow[ERR002] — signal-0 probe, not a write
            return False
        return True


class SweepCheckpoint:
    """Journaled progress of one sweep, resumable after any crash."""

    def __init__(self, root: str, sweep: str, *,
                 snapshot_every: int = SNAPSHOT_EVERY, io=None):
        self.dir = os.path.join(root, "sweeps", sweep)
        self.sweep = sweep
        self.snapshot_every = snapshot_every
        self.io = io
        self.lock = SweepLock(os.path.join(self.dir, LOCK_FILE), io=io)
        self._journal: Optional[JournalWriter] = None
        self._since_snapshot = 0
        self._results: Dict[str, CellResult] = {}

    # ---- paths ------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.dir, "manifest.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.dir, "journal.jsonl")

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.dir, "snapshot.json")

    def exists(self) -> bool:
        return os.path.isfile(self.manifest_path)

    # ---- lifecycle --------------------------------------------------------
    def initialise(self, *, config_hash: str, seed: int, config: dict,
                   n_cells: int) -> None:
        """Create the checkpoint directory and manifest (idempotent).

        Resuming with a different config hash is refused: a checkpoint
        answers exactly one (config, seed) request.
        """
        from repro.fsio import REAL_IO
        (self.io or REAL_IO).makedirs(self.dir)
        if self.exists():
            manifest = self.manifest()
            if manifest.get("config_hash") != config_hash:
                raise CheckpointError(
                    f"checkpoint {self.sweep!r} belongs to config "
                    f"{manifest.get('config_hash')!r}, not {config_hash!r}; "
                    f"remove {self.dir} or change --name",
                )
            return
        write_json_atomic(self.manifest_path, {
            "version": CHECKPOINT_VERSION,
            "sweep": self.sweep,
            "config_hash": config_hash,
            "seed": seed,
            "config": config,
            "n_cells": n_cells,
        }, io=self.io)

    def manifest(self) -> dict:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable sweep manifest {self.manifest_path}: {error}"
            )

    # ---- writing ----------------------------------------------------------
    def record(self, result: CellResult) -> None:
        """Durably journal one finished cell before anything else sees it."""
        if self._journal is None:
            self._journal = JournalWriter(self.journal_path, io=self.io)
        self._journal.append(result.to_dict())
        self._results[result.cell_id] = result
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_every:
            self.write_snapshot()

    def write_snapshot(self) -> None:
        """Atomically persist the consolidated state (tmp + replace)."""
        write_json_atomic(self.snapshot_path, {
            "version": CHECKPOINT_VERSION,
            "sweep": self.sweep,
            "cells": {
                cell_id: result.to_dict()
                for cell_id, result in sorted(self._results.items())
            },
        }, io=self.io)
        self._since_snapshot = 0

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._results:
            self.write_snapshot()
        fsync_dir(self.dir, io=self.io)

    # ---- reading ----------------------------------------------------------
    def load(self) -> Dict[str, CellResult]:
        """Reconstruct completed cells: snapshot first, journal on top.

        Tolerates a torn final journal line (crash mid-append) and a
        corrupt snapshot (quarantined aside); either source alone is
        enough to resume.
        """
        self._results = {}
        if os.path.isfile(self.snapshot_path):
            try:
                with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
                for data in snapshot.get("cells", {}).values():
                    result = CellResult.from_dict(data)
                    self._results[result.cell_id] = result
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    ValueError):
                self._results = {}
                quarantine_corrupt(self.snapshot_path)
        if os.path.isfile(self.journal_path):
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        result = CellResult.from_dict(json.loads(line))
                    except (json.JSONDecodeError, KeyError, ValueError):
                        # Torn tail from a crash mid-append: everything
                        # before it is intact, the in-flight cell reruns.
                        continue
                    self._results[result.cell_id] = result
        return dict(self._results)

    def completed(self) -> Dict[str, CellResult]:
        """Cells that finished OK (quarantined ones rerun on resume)."""
        return {
            cell_id: result
            for cell_id, result in self._results.items()
            if result.status == "ok"
        }


def prune_results(results: Dict[str, CellResult],
                  wanted: Iterable[str]) -> Dict[str, CellResult]:
    """Restrict loaded results to the cells a sweep actually contains."""
    wanted_set = set(wanted)
    return {k: v for k, v in results.items() if k in wanted_set}
