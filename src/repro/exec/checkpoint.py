"""Crash-safe sweep checkpoints: append-only journal + atomic snapshot.

Layout, under ``<runs dir>/sweeps/<sweep_id>/``:

- ``manifest.json`` — the sweep's identity: config hash, seed, the
  config itself and the cell count.  Written atomically once, checked
  on resume so a checkpoint can never be resumed under a different
  configuration.
- ``journal.jsonl`` — one line per completed cell, appended with
  flush + fsync *before* the supervisor considers the cell done.  A
  SIGKILL at any instant loses at most the in-flight cells; a torn
  final line (crash mid-append) is detected and dropped on load.
- ``snapshot.json`` — a periodic full snapshot written via tmp-file +
  ``os.replace`` (+ fsync), bounding journal replay time.  If it is
  corrupt the journal alone still reconstructs the state; the bad file
  is quarantined to ``snapshot.json.corrupt``.

The durable key is (config hash, seed): ``repro sweep --resume`` finds
the checkpoint by recomputing the hash from its arguments, so "the same
sweep" is a property of the request, not of a process lifetime.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable

from repro.errors import CheckpointError
from repro.exec.cells import CellResult
from repro.obs.registry import (
    atomic_write_json,
    fsync_dir,
    quarantine_corrupt,
)

#: Bumped on incompatible checkpoint-layout changes.
CHECKPOINT_VERSION = 1

#: Default cells between snapshot rewrites.
SNAPSHOT_EVERY = 10


def sweep_id(name: str, config_hash: str, seed: int) -> str:
    """The durable checkpoint key for one sweep request."""
    return f"{name}-{config_hash}-s{seed}"


class SweepCheckpoint:
    """Journaled progress of one sweep, resumable after any crash."""

    def __init__(self, root: str, sweep: str, *,
                 snapshot_every: int = SNAPSHOT_EVERY):
        self.dir = os.path.join(root, "sweeps", sweep)
        self.sweep = sweep
        self.snapshot_every = snapshot_every
        self._journal = None
        self._since_snapshot = 0
        self._results: Dict[str, CellResult] = {}

    # ---- paths ------------------------------------------------------------
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.dir, "manifest.json")

    @property
    def journal_path(self) -> str:
        return os.path.join(self.dir, "journal.jsonl")

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.dir, "snapshot.json")

    def exists(self) -> bool:
        return os.path.isfile(self.manifest_path)

    # ---- lifecycle --------------------------------------------------------
    def initialise(self, *, config_hash: str, seed: int, config: dict,
                   n_cells: int) -> None:
        """Create the checkpoint directory and manifest (idempotent).

        Resuming with a different config hash is refused: a checkpoint
        answers exactly one (config, seed) request.
        """
        os.makedirs(self.dir, exist_ok=True)
        if self.exists():
            manifest = self.manifest()
            if manifest.get("config_hash") != config_hash:
                raise CheckpointError(
                    f"checkpoint {self.sweep!r} belongs to config "
                    f"{manifest.get('config_hash')!r}, not {config_hash!r}; "
                    f"remove {self.dir} or change --name",
                )
            return
        atomic_write_json(self.manifest_path, {
            "version": CHECKPOINT_VERSION,
            "sweep": self.sweep,
            "config_hash": config_hash,
            "seed": seed,
            "config": config,
            "n_cells": n_cells,
        })

    def manifest(self) -> dict:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise CheckpointError(
                f"unreadable sweep manifest {self.manifest_path}: {error}"
            )

    # ---- writing ----------------------------------------------------------
    def record(self, result: CellResult) -> None:
        """Durably journal one finished cell before anything else sees it."""
        if self._journal is None:
            os.makedirs(self.dir, exist_ok=True)
            self._journal = open(self.journal_path, "a", encoding="utf-8")
        line = json.dumps(result.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        self._journal.write(line + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())
        self._results[result.cell_id] = result
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_every:
            self.write_snapshot()

    def write_snapshot(self) -> None:
        """Atomically persist the consolidated state (tmp + replace)."""
        atomic_write_json(self.snapshot_path, {
            "version": CHECKPOINT_VERSION,
            "sweep": self.sweep,
            "cells": {
                cell_id: result.to_dict()
                for cell_id, result in sorted(self._results.items())
            },
        })
        self._since_snapshot = 0

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._results:
            self.write_snapshot()
        fsync_dir(self.dir)

    # ---- reading ----------------------------------------------------------
    def load(self) -> Dict[str, CellResult]:
        """Reconstruct completed cells: snapshot first, journal on top.

        Tolerates a torn final journal line (crash mid-append) and a
        corrupt snapshot (quarantined aside); either source alone is
        enough to resume.
        """
        self._results = {}
        if os.path.isfile(self.snapshot_path):
            try:
                with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
                for data in snapshot.get("cells", {}).values():
                    result = CellResult.from_dict(data)
                    self._results[result.cell_id] = result
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    ValueError):
                self._results = {}
                quarantine_corrupt(self.snapshot_path)
        if os.path.isfile(self.journal_path):
            with open(self.journal_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        result = CellResult.from_dict(json.loads(line))
                    except (json.JSONDecodeError, KeyError, ValueError):
                        # Torn tail from a crash mid-append: everything
                        # before it is intact, the in-flight cell reruns.
                        continue
                    self._results[result.cell_id] = result
        return dict(self._results)

    def completed(self) -> Dict[str, CellResult]:
        """Cells that finished OK (quarantined ones rerun on resume)."""
        return {
            cell_id: result
            for cell_id, result in self._results.items()
            if result.status == "ok"
        }


def prune_results(results: Dict[str, CellResult],
                  wanted: Iterable[str]) -> Dict[str, CellResult]:
    """Restrict loaded results to the cells a sweep actually contains."""
    wanted_set = set(wanted)
    return {k: v for k, v in results.items() if k in wanted_set}
