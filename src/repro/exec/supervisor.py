"""The supervised process-pool executor for sweep cells.

:class:`SweepExecutor` runs a list of independent seeded cells across N
forked workers and is robust by construction:

- **timeouts** — every in-flight cell has a wall-clock deadline; past
  it the worker is SIGKILLed (no grace: cells are side-effect free and
  deterministic, rerunning is always safe);
- **hang detection** — workers heartbeat while a cell runs; a busy
  worker that stops beating (SIGSTOPped, deadlocked outside the
  interpreter, or silently dead) is killed well before the deadline;
- **retry with capped exponential backoff** — a failed, timed-out or
  orphaned cell is requeued after ``base * 2**(attempt-1)`` seconds,
  capped, so a transiently sick machine is not hammered;
- **poison-cell quarantine** — a cell that fails the same way K times
  in a row is deterministically broken, not unlucky: it is quarantined
  (journaled with its failure signatures) and the sweep continues, so
  one bad cell cannot starve the fleet;
- **graceful degradation** — if workers keep dying (a fork-hostile
  environment, OOM kills), the pool is torn down and the remaining
  cells run serially in-process, which cannot lose work to IPC;
- **checkpointing** — every finished cell is durably journaled before
  it is counted, so a SIGKILL of the whole sweep loses only in-flight
  cells and ``--resume`` restarts exactly the incomplete ones.

Determinism: cells are seeded and side-effect free, so the merged
result of any schedule — serial, parallel, crashed-and-resumed — is
bit-identical; :mod:`repro.exec.merge` enforces it via provenance
hashes.

Observability (both default off, both strictly passive):

- ``tracer`` — a :class:`repro.exec.tracing.SweepTracer`.  The
  supervisor records queue-wait spans and *killed* attempts on worker
  lanes (a SIGKILLed worker cannot write its own final span), plus
  retry/quarantine instants and the whole-sweep span on its own lane;
  workers record their boot and run spans themselves.
- ``observer`` — a callable receiving one dict per progress event
  (``sweep-started``, ``cell-started``/``finished``/``retried``/
  ``quarantined``, ``worker-started``/``lost``, ``degraded-serial``,
  ``sweep-finished``).  Observer exceptions are swallowed: telemetry
  must never fail a sweep.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exec.cells import CellResult, SweepCell, run_cell
from repro.exec.checkpoint import SweepCheckpoint
from repro.exec.pool import (
    HEARTBEAT_INTERVAL,
    WorkerHandle,
    make_result_queue,
    spawn_worker,
)

#: Default per-cell wall-clock timeout (seconds).
DEFAULT_CELL_TIMEOUT = 300.0

#: Total attempts a cell gets before it is quarantined regardless of
#: failure diversity.
DEFAULT_MAX_ATTEMPTS = 5

#: Identical consecutive failures that mark a cell as poison.
DEFAULT_POISON_K = 3

#: Exponential-backoff base and cap (seconds).
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0

#: A busy worker silent for this long is considered hung.
DEFAULT_STALL_TIMEOUT = 5.0


@dataclass
class SweepOutcome:
    """What a sweep produced: completed cells, casualties, telemetry."""

    results: Dict[str, CellResult] = field(default_factory=dict)
    quarantined: Dict[str, CellResult] = field(default_factory=dict)
    telemetry: Dict[str, float] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def render_quarantine(self) -> str:
        lines = []
        for cell_id, result in sorted(self.quarantined.items()):
            sigs = "; ".join(result.failures[-3:]) or "unknown"
            lines.append(
                f"  {cell_id}: quarantined after {result.attempts} "
                f"attempt(s) — {sigs}"
            )
        return "\n".join(lines)


class SweepExecutor:
    """Supervised execution of independent cells across N processes."""

    def __init__(
        self,
        jobs: int = 1,
        *,
        cell_timeout: Optional[float] = DEFAULT_CELL_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poison_k: int = DEFAULT_POISON_K,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        stall_timeout: float = DEFAULT_STALL_TIMEOUT,
        degrade_after: Optional[int] = None,
        tracer=None,
        observer=None,
    ):
        self.jobs = max(1, int(jobs))
        self.cell_timeout = cell_timeout
        self.max_attempts = max(1, int(max_attempts))
        self.poison_k = max(1, int(poison_k))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heartbeat_interval = heartbeat_interval
        self.stall_timeout = max(stall_timeout, 4 * heartbeat_interval)
        #: Worker restarts tolerated before degrading to serial.
        self.degrade_after = (
            degrade_after if degrade_after is not None else 2 * self.jobs + 2
        )
        self.tracer = tracer
        self.observer = observer

    def _emit(self, event: Dict) -> None:
        """Hand one progress event to the observer; never let it fail us."""
        if self.observer is None:
            return
        try:
            self.observer(dict(event))
        except Exception:
            pass

    # ---- public entry points ---------------------------------------------
    def run(
        self,
        cells: Sequence[SweepCell],
        checkpoint: Optional[SweepCheckpoint] = None,
        resume: bool = False,
    ) -> SweepOutcome:
        """Execute the cells, honouring and feeding the checkpoint.

        When a checkpoint is attached, its advisory lock is held for
        the whole run: a second executor (a concurrent ``--resume`` of
        the same sweep) fails fast with
        :class:`~repro.errors.SweepLockError` instead of interleaving
        journal appends.  A crashed run leaves a stale lock behind;
        the next acquire detects the dead holder and breaks it.
        """
        if checkpoint is not None:
            checkpoint.lock.acquire()
        try:
            return self._run_locked(cells, checkpoint, resume)
        finally:
            if checkpoint is not None:
                # Best-effort: a simulated crash mid-release leaves the
                # stale lock exactly as a real dead process would.
                checkpoint.lock.release()

    def _run_locked(
        self,
        cells: Sequence[SweepCell],
        checkpoint: Optional[SweepCheckpoint],
        resume: bool,
    ) -> SweepOutcome:
        started = time.perf_counter()
        started_wall = time.time()
        outcome = SweepOutcome()
        telemetry = outcome.telemetry
        for key in ("cells_run", "cells_ok", "cells_retried",
                    "cells_quarantined", "cells_from_checkpoint",
                    "timeouts", "stalls", "worker_crashes",
                    "worker_restarts", "degraded_serial", "queue_wait_s"):
            telemetry[key] = 0.0
        telemetry["jobs"] = float(self.jobs)
        telemetry["cells_total"] = float(len(cells))

        specs = {cell.cell_id: cell.to_dict() for cell in cells}
        todo: List[dict] = [cell.to_dict() for cell in cells]
        if checkpoint is not None and resume:
            prior = checkpoint.load()
            for cell_id, result in prior.items():
                if cell_id in specs and result.status == "ok":
                    outcome.results[cell_id] = result
                    telemetry["cells_from_checkpoint"] += 1
            todo = [
                spec for spec in todo
                if spec["cell_id"] not in outcome.results
            ]

        self._emit({
            "event": "sweep-started",
            "total": len(cells),
            "todo": len(todo),
            "jobs": self.jobs,
            "from_checkpoint": int(telemetry["cells_from_checkpoint"]),
        })
        if todo:
            if self.jobs == 1:
                self._run_serial(todo, checkpoint, outcome)
            else:
                self._run_pool(todo, checkpoint, outcome)
        if checkpoint is not None:
            checkpoint.close()
        telemetry["cells_quarantined"] = float(len(outcome.quarantined))
        telemetry["wall_s"] = time.perf_counter() - started
        if self.tracer is not None:
            self.tracer.span(
                "sweep", "sweep", started_wall, time.time(),
                cells=len(cells), jobs=self.jobs,
                quarantined=len(outcome.quarantined),
            )
        self._emit({
            "event": "sweep-finished",
            "done": len(outcome.results),
            "total": len(cells),
            "quarantined": len(outcome.quarantined),
            "wall_s": telemetry["wall_s"],
        })
        return outcome

    # ---- serial path ------------------------------------------------------
    def _run_serial(self, todo: List[dict],
                    checkpoint: Optional[SweepCheckpoint],
                    outcome: SweepOutcome,
                    attempts: Optional[Dict[str, int]] = None,
                    failures: Optional[Dict[str, List[str]]] = None) -> None:
        """In-process execution with the same retry/quarantine policy.

        Used for ``--jobs 1`` and as the degradation target when the
        pool keeps losing workers.  No timeouts here: there is no one
        left to watch the watcher, and serial mode is the last resort.
        """
        telemetry = outcome.telemetry
        attempts = attempts if attempts is not None else {}
        failures = failures if failures is not None else {}
        queue = deque(todo)
        while queue:
            spec = queue.popleft()
            spec.pop("_trace", None)  # may linger after degrade-to-serial
            cell_id = spec["cell_id"]
            started = time.perf_counter()
            run_wall = time.time()
            attempt = attempts.get(cell_id, 0) + 1
            telemetry["cells_run"] += 1
            self._emit({
                "event": "cell-started", "cell_id": cell_id,
                "worker": "serial", "attempt": attempt,
            })
            try:
                payload = run_cell(spec)
            except Exception as error:
                signature = f"{type(error).__name__}: {error}"
                if self.tracer is not None:
                    self.tracer.span(
                        cell_id, "cell", run_wall, time.time(),
                        cell_id=cell_id, attempt=attempt, status="error",
                        error=type(error).__name__,
                    )
                retry = self._note_failure(
                    spec, signature, attempts, failures, checkpoint, outcome
                )
                if retry:
                    time.sleep(self._backoff(attempts[cell_id]))
                    queue.append(spec)
                continue
            if self.tracer is not None:
                self.tracer.span(
                    cell_id, "cell", run_wall, time.time(),
                    cell_id=cell_id, attempt=attempt, status="ok",
                )
            result = CellResult(
                cell_id=cell_id,
                status="ok",
                metrics=payload["metrics"],
                counters=payload.get("counters"),
                provenance_hash=payload["provenance_hash"],
                attempts=attempts.get(cell_id, 0) + 1,
                seconds=time.perf_counter() - started,
                worker=0,
            )
            self._commit(result, checkpoint, outcome)

    # ---- pool path --------------------------------------------------------
    def _run_pool(self, todo: List[dict],
                  checkpoint: Optional[SweepCheckpoint],
                  outcome: SweepOutcome) -> None:
        telemetry = outcome.telemetry
        results_queue = make_result_queue()
        workers: Dict[int, WorkerHandle] = {}
        next_id = 0
        now = time.monotonic()
        pending: deque = deque()
        ready_since: Dict[str, float] = {}
        #: Epoch twin of ready_since, feeding queue-wait trace spans
        #: (monotonic values are not comparable across processes).
        ready_wall: Dict[str, float] = {}
        now_wall = time.time()
        for spec in todo:
            pending.append(spec)
            ready_since[spec["cell_id"]] = now
            ready_wall[spec["cell_id"]] = now_wall
        delayed: List[tuple] = []  # (not_before, spec)
        attempts: Dict[str, int] = {}
        failures: Dict[str, List[str]] = {}
        restarts = 0
        trace_dir = self.tracer.trace_dir if self.tracer is not None else None

        def spawn() -> WorkerHandle:
            nonlocal next_id
            handle = spawn_worker(
                next_id, results_queue, self.heartbeat_interval,
                trace_dir=trace_dir,
            )
            workers[handle.worker_id] = handle
            next_id += 1
            self._emit({
                "event": "worker-started",
                "worker": handle.worker_id, "pid": handle.pid,
            })
            return handle

        def open_cells() -> int:
            in_flight = sum(1 for w in workers.values() if w.busy)
            return len(pending) + len(delayed) + in_flight

        def requeue(spec: dict, signature: str, infra: bool = False) -> None:
            retry = self._note_failure(
                spec, signature, attempts, failures, checkpoint, outcome,
                infra=infra,
            )
            if retry:
                not_before = (
                    time.monotonic() + self._backoff(attempts[spec["cell_id"]])
                )
                delayed.append((not_before, spec))

        def fail_worker(handle: WorkerHandle, signature: str,
                        kill: bool) -> None:
            nonlocal restarts
            if kill:
                handle.kill()
            else:
                handle._close()
            killed_wall = time.time()
            spec = handle.cell
            handle.cell = None
            workers.pop(handle.worker_id, None)
            restarts += 1
            telemetry["worker_restarts"] += 1
            if spec is not None and self.tracer is not None:
                # The worker is dead and cannot record its final span;
                # write the killed attempt on its lane from here.
                self.tracer.span(
                    spec["cell_id"], "cell",
                    handle.dispatched_wall or killed_wall, killed_wall,
                    lane=handle.lane, cell_id=spec["cell_id"],
                    attempt=attempts.get(spec["cell_id"], 0) + 1,
                    status="killed", cause=signature,
                )
            self._emit({
                "event": "worker-lost",
                "worker": handle.worker_id, "pid": handle.pid,
                "cause": signature,
            })
            if spec is not None:
                # Supervisor-initiated kills are infrastructure failures:
                # they never poison a cell, only spend its attempt budget.
                requeue(spec, signature, infra=True)

        for _ in range(min(self.jobs, len(pending))):
            spawn()

        try:
            while open_cells():
                if restarts > self.degrade_after:
                    # The pool is hostile territory; fall back to serial.
                    break
                now = time.monotonic()
                if delayed:
                    due = [s for t, s in delayed if t <= now]
                    delayed[:] = [(t, s) for t, s in delayed if t > now]
                    now_wall = time.time()
                    for spec in due:
                        ready_since[spec["cell_id"]] = now
                        ready_wall[spec["cell_id"]] = now_wall
                        pending.append(spec)
                # Keep the fleet at strength while there is queued work.
                while pending and len(workers) < min(self.jobs, open_cells()):
                    spawn()
                for handle in list(workers.values()):
                    if pending and not handle.busy and handle.alive():
                        spec = pending.popleft()
                        cell_id = spec["cell_id"]
                        attempt = attempts.get(cell_id, 0) + 1
                        spec["_trace"] = {"attempt": attempt}
                        handle.cell = spec
                        handle.dispatched_at = now
                        handle.dispatched_wall = time.time()
                        handle.last_beat = now
                        handle.beats = 0
                        handle.deadline = (
                            now + self.cell_timeout
                            if self.cell_timeout else float("inf")
                        )
                        telemetry["queue_wait_s"] += max(
                            0.0, now - ready_since.get(cell_id, now)
                        )
                        telemetry["cells_run"] += 1
                        if self.tracer is not None:
                            self.tracer.span(
                                cell_id, "queue",
                                ready_wall.get(
                                    cell_id, handle.dispatched_wall
                                ),
                                handle.dispatched_wall,
                                lane=handle.lane, cell_id=cell_id,
                                attempt=attempt,
                            )
                        self._emit({
                            "event": "cell-started", "cell_id": cell_id,
                            "worker": handle.worker_id, "pid": handle.pid,
                            "attempt": attempt,
                        })
                        if not handle.send(spec):
                            fail_worker(handle, "worker-died: send failed",
                                        kill=True)
                self._drain(results_queue, workers, checkpoint, outcome,
                            attempts, requeue)
                now = time.monotonic()
                for handle in list(workers.values()):
                    if not handle.alive():
                        if handle.busy:
                            telemetry["worker_crashes"] += 1
                            fail_worker(
                                handle, "worker-died: killed mid-cell",
                                kill=True,
                            )
                        elif not pending and not delayed:
                            workers.pop(handle.worker_id, None)
                    elif handle.busy and now > handle.deadline:
                        telemetry["timeouts"] += 1
                        fail_worker(handle, "timeout", kill=True)
                    elif (handle.busy
                          and now - handle.last_beat > self._stall_allowance(
                              handle)):
                        telemetry["stalls"] += 1
                        fail_worker(handle, "stalled: heartbeats stopped",
                                    kill=True)
        finally:
            for handle in list(workers.values()):
                handle.terminate()
            workers.clear()
            results_queue.close()
            results_queue.cancel_join_thread()

        leftovers = [spec for _, spec in delayed]
        leftovers.extend(pending)
        in_flight_or_lost = [
            spec_id for spec_id in ready_since
            if spec_id not in outcome.results
            and spec_id not in outcome.quarantined
            and all(s["cell_id"] != spec_id for s in leftovers)
        ]
        if restarts > self.degrade_after:
            telemetry["degraded_serial"] = 1.0
            if self.tracer is not None:
                self.tracer.instant(
                    "degraded-serial", "executor", time.time(),
                    restarts=restarts,
                )
            self._emit({"event": "degraded-serial", "restarts": restarts})
            remaining = leftovers + [
                spec for spec in todo if spec["cell_id"] in in_flight_or_lost
            ]
            self._run_serial(remaining, checkpoint, outcome,
                             attempts, failures)

    def _drain(self, results_queue, workers, checkpoint, outcome,
               attempts, requeue) -> None:
        """Pull every queued worker message, blocking briefly for one."""
        import queue as queue_mod

        telemetry = outcome.telemetry
        block = True
        while True:
            try:
                message = results_queue.get(
                    timeout=self.heartbeat_interval / 2 if block else 0
                )
            except queue_mod.Empty:
                return
            block = False
            kind, worker_id = message[0], message[1]
            handle = workers.get(worker_id)
            if handle is None:
                continue  # late message from a killed worker; rerun wins
            if kind == "ready":
                handle.ready = True
                handle.last_beat = time.monotonic()
            elif kind == "heartbeat":
                if handle.busy and handle.cell["cell_id"] == message[2]:
                    handle.last_beat = time.monotonic()
                    handle.beats += 1
            elif kind == "ok":
                _, _, cell_id, payload, seconds = message
                if not handle.busy or handle.cell["cell_id"] != cell_id:
                    continue
                handle.cell = None
                if cell_id in outcome.results:
                    continue
                result = CellResult(
                    cell_id=cell_id,
                    status="ok",
                    metrics=payload["metrics"],
                    counters=payload.get("counters"),
                    provenance_hash=payload["provenance_hash"],
                    attempts=attempts.get(cell_id, 0) + 1,
                    seconds=seconds,
                    worker=worker_id,
                )
                self._commit(result, checkpoint, outcome)
            elif kind == "error":
                _, _, cell_id, error_type, text, _seconds = message
                if not handle.busy or handle.cell["cell_id"] != cell_id:
                    continue
                spec = handle.cell
                handle.cell = None
                # The worker survived the exception; only the cell failed.
                telemetry.setdefault("cell_errors", 0.0)
                telemetry["cell_errors"] += 1
                requeue(spec, f"{error_type}: {text}")

    # ---- shared policy ----------------------------------------------------
    def _stall_allowance(self, handle: WorkerHandle) -> float:
        """Silence tolerated before a busy worker is declared stalled.

        A worker that has already heartbeated on this cell gets the
        plain stall timeout.  One that has *never* beaten may just be a
        freshly forked process starved of CPU on a loaded machine, so
        it gets a boot-grace window instead of a false stall kill.
        """
        if handle.beats > 0:
            return self.stall_timeout
        return max(2 * self.stall_timeout, 2.0)

    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff after the ``attempt``-th failure."""
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** max(0, attempt - 1)))

    def _note_failure(self, spec: dict, signature: str,
                      attempts: Dict[str, int],
                      failures: Dict[str, List[str]],
                      checkpoint: Optional[SweepCheckpoint],
                      outcome: SweepOutcome,
                      infra: bool = False) -> bool:
        """Record one failed attempt; True means the cell may retry.

        Quarantines on K identical consecutive failures (poison) or
        when the attempt budget is spent, journaling the tombstone so a
        resumed sweep knows the history (and retries the cell afresh).
        Infrastructure failures (timeout, stall, worker death) never
        count as poison — a loaded machine can kill the same healthy
        cell twice — they only draw down the attempt budget.
        """
        cell_id = spec["cell_id"]
        attempts[cell_id] = attempts.get(cell_id, 0) + 1
        failures.setdefault(cell_id, []).append(signature)
        history = failures[cell_id]
        poison = (
            not infra
            and len(history) >= self.poison_k
            and len(set(history[-self.poison_k:])) == 1
        )
        exhausted = attempts[cell_id] >= self.max_attempts
        if poison or exhausted:
            result = CellResult(
                cell_id=cell_id,
                status="quarantined",
                attempts=attempts[cell_id],
                failures=list(history),
            )
            outcome.quarantined[cell_id] = result
            if checkpoint is not None:
                checkpoint.record(result)
            if self.tracer is not None:
                self.tracer.instant(
                    "quarantine", "quarantine", time.time(),
                    cell_id=cell_id, attempts=attempts[cell_id],
                    poison=poison, signature=signature,
                )
            self._emit({
                "event": "cell-quarantined", "cell_id": cell_id,
                "attempts": attempts[cell_id], "signature": signature,
                "poison": poison,
            })
            return False
        outcome.telemetry["cells_retried"] += 1
        if self.tracer is not None:
            self.tracer.instant(
                "retry", "retry", time.time(),
                cell_id=cell_id, attempt=attempts[cell_id],
                signature=signature, infra=infra,
            )
        self._emit({
            "event": "cell-retried", "cell_id": cell_id,
            "attempt": attempts[cell_id], "signature": signature,
            "infra": infra,
        })
        return True

    def _commit(self, result: CellResult,
                checkpoint: Optional[SweepCheckpoint],
                outcome: SweepOutcome) -> None:
        """Journal first, then count: durability before visibility."""
        if checkpoint is not None:
            checkpoint.record(result)
        outcome.results[result.cell_id] = result
        outcome.quarantined.pop(result.cell_id, None)
        outcome.telemetry["cells_ok"] += 1
        self._emit({
            "event": "cell-finished", "cell_id": result.cell_id,
            "worker": result.worker, "attempt": result.attempts,
            "seconds": result.seconds,
            "done": len(outcome.results),
            "total": int(outcome.telemetry.get("cells_total", 0.0)),
        })
