"""``repro.exec``: the supervised parallel sweep executor.

Decomposes an experiment session into independent seeded cells
(:mod:`~repro.exec.cells`), runs them across N supervised worker
processes with timeouts, heartbeat hang detection, capped-backoff
retry, poison-cell quarantine and serial degradation
(:mod:`~repro.exec.supervisor` / :mod:`~repro.exec.pool`), journals
progress crash-safely for ``--resume`` (:mod:`~repro.exec.checkpoint`),
and merges cells back into one record only after provenance-hash
validation (:mod:`~repro.exec.merge`).
"""

from repro.exec.cells import (  # noqa: F401
    DEFAULT_CELL_FN,
    CellResult,
    SweepCell,
    decompose,
    platform_for,
    provenance_hash,
)
from repro.exec.checkpoint import (  # noqa: F401
    SweepCheckpoint,
    SweepLock,
    sweep_id,
)
from repro.exec.merge import (  # noqa: F401
    merge_results,
    telemetry_lines,
    validate_cell,
)
from repro.exec.supervisor import (  # noqa: F401
    SweepExecutor,
    SweepOutcome,
)
from repro.exec.tracing import (  # noqa: F401
    SpanWriter,
    SweepTracer,
    merge_sweep_trace,
    read_span_records,
    worker_lane,
)

__all__ = [
    "DEFAULT_CELL_FN",
    "CellResult",
    "SpanWriter",
    "SweepCell",
    "SweepCheckpoint",
    "SweepExecutor",
    "SweepLock",
    "SweepOutcome",
    "SweepTracer",
    "decompose",
    "merge_results",
    "merge_sweep_trace",
    "platform_for",
    "provenance_hash",
    "read_span_records",
    "sweep_id",
    "telemetry_lines",
    "validate_cell",
    "worker_lane",
]
