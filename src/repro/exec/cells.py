"""The sweep cell protocol: independent seeded units of work.

A *cell* is the atom the supervised executor schedules: one
(workload, platform, scale, seed) characterization, runnable in any
process, depending on nothing but its own spec.  Cells are plain dicts
on the wire (queues, journals) and :class:`SweepCell` in code.

The callable a cell runs is named by a dotted path (``fn``), resolved
inside the worker — the default is :func:`characterize_cell`, which
replays the exact ``ExperimentContext.counters`` code path so a cell
result is bit-identical to a serial in-process run.  Tests point ``fn``
at misbehaving callables (crash, hang, SIGKILL) to drive the
supervisor's failure paths.

Every result carries a **provenance hash** over (spec, payload); the
merge step recomputes it before combining cells, so a corrupted or
foreign checkpoint entry can never silently contaminate a merged run.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Dotted path of the default cell callable.
DEFAULT_CELL_FN = "repro.exec.cells.characterize_cell"

#: Short CLI platform keys -> full platform names (see repro.uarch.platforms).
PLATFORM_KEYS = ("e5645", "d510")


@dataclass(frozen=True)
class SweepCell:
    """One schedulable unit: a seeded (workload, platform) point."""

    workload: str
    platform: str  # short key: "e5645" | "d510"
    scale: float
    seed: int
    fn: str = DEFAULT_CELL_FN
    #: Free-form extras forwarded to the cell callable (test hooks).
    extra: tuple = field(default_factory=tuple)

    @property
    def cell_id(self) -> str:
        return f"{self.workload}@{self.platform}+s{self.seed}"

    def to_dict(self) -> dict:
        spec = {
            "cell_id": self.cell_id,
            "workload": self.workload,
            "platform": self.platform,
            "scale": self.scale,
            "seed": self.seed,
            "fn": self.fn,
        }
        if self.extra:
            spec["extra"] = dict(self.extra)
        return spec

    @classmethod
    def from_dict(cls, spec: dict) -> "SweepCell":
        return cls(
            workload=spec["workload"],
            platform=spec["platform"],
            scale=float(spec["scale"]),
            seed=int(spec["seed"]),
            fn=spec.get("fn", DEFAULT_CELL_FN),
            extra=tuple(sorted(spec.get("extra", {}).items())),
        )


@dataclass
class CellResult:
    """One completed (or abandoned) cell, as journaled and merged."""

    cell_id: str
    status: str  # "ok" | "quarantined"
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Optional full-fidelity PerfCounters payload (JSON form), present
    #: for characterize cells so contexts can adopt the sample.
    counters: Optional[dict] = None
    provenance_hash: str = ""
    attempts: int = 1
    seconds: float = 0.0
    worker: int = -1
    #: Failure signatures observed before quarantine (empty when ok).
    failures: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        data = {
            "cell_id": self.cell_id,
            "status": self.status,
            "metrics": dict(self.metrics),
            "provenance_hash": self.provenance_hash,
            "attempts": self.attempts,
            "seconds": self.seconds,
            "worker": self.worker,
        }
        if self.counters is not None:
            data["counters"] = self.counters
        if self.failures:
            data["failures"] = list(self.failures)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(
            cell_id=data["cell_id"],
            status=data["status"],
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            counters=data.get("counters"),
            provenance_hash=data.get("provenance_hash", ""),
            attempts=int(data.get("attempts", 1)),
            seconds=float(data.get("seconds", 0.0)),
            worker=int(data.get("worker", -1)),
            failures=list(data.get("failures", [])),
        )


def provenance_hash(spec: dict, metrics: Dict[str, float]) -> str:
    """Hash binding a cell's result to the spec that produced it.

    Recomputed at merge time from the journaled (spec, metrics) pair;
    any bit flipped in either changes the hash.
    """
    canonical = json.dumps(
        {"spec": spec, "metrics": metrics},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def resolve_cell_fn(dotted: str):
    """Import ``pkg.module.callable`` and return the callable."""
    module_name, _, attr = dotted.rpartition(".")
    if not module_name:
        raise ValueError(f"cell fn {dotted!r} is not a dotted path")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def run_cell(spec: dict) -> dict:
    """Execute one cell spec in the current process.

    Returns the journal payload: ``{"metrics", "counters"?,
    "provenance_hash"}``.  Raises whatever the cell callable raises —
    classifying and retrying failures is the supervisor's job.
    """
    fn = resolve_cell_fn(spec.get("fn", DEFAULT_CELL_FN))
    payload = fn(spec)
    if not isinstance(payload, dict) or "metrics" not in payload:
        raise TypeError(
            f"cell fn {spec.get('fn')!r} must return a dict with 'metrics', "
            f"got {type(payload).__name__}"
        )
    metrics = {k: float(v) for k, v in payload["metrics"].items()}
    result = {
        "metrics": metrics,
        "provenance_hash": provenance_hash(_hashable_spec(spec), metrics),
    }
    if payload.get("counters") is not None:
        result["counters"] = payload["counters"]
    return result


def _hashable_spec(spec: dict) -> dict:
    """The spec fields the provenance hash covers (identity, not fn)."""
    return {
        "cell_id": spec["cell_id"],
        "workload": spec["workload"],
        "platform": spec["platform"],
        "scale": spec["scale"],
        "seed": spec["seed"],
    }


def platform_for(key: str):
    """Map a short platform key to its :class:`Platform`."""
    from repro.uarch.platforms import ATOM_D510, XEON_E5645

    try:
        return {"e5645": XEON_E5645, "d510": ATOM_D510}[key]
    except KeyError:
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"unknown platform {key!r}; choose from {', '.join(PLATFORM_KEYS)}"
        ) from None


def characterize_cell(spec: dict) -> dict:
    """The default cell: run + characterize one workload on one platform.

    Goes through :class:`~repro.experiments.runner.ExperimentContext`
    so the numbers follow the exact serial code path (same seeds, same
    warm-up), and returns both the 45-metric dict and the lossless
    counter sample for cache adoption.
    """
    from repro.experiments.runner import ExperimentContext

    context = ExperimentContext(
        scale=float(spec["scale"]), seed=int(spec["seed"])
    )
    counters = context.counters(spec["workload"], platform_for(spec["platform"]))
    return {
        "metrics": counters.metric_dict(),
        "counters": counters.to_dict(),
    }


def decompose(
    workloads: Sequence[str],
    platforms: Sequence[str],
    scale: float,
    seeds: Sequence[int],
    fn: str = DEFAULT_CELL_FN,
) -> List[SweepCell]:
    """The full sweep matrix as an ordered cell list.

    Order is deterministic (workload-major) so serial and parallel
    sweeps enumerate — and therefore merge — identically.
    """
    return [
        SweepCell(workload=w, platform=p, scale=scale, seed=s, fn=fn)
        for w in workloads
        for p in platforms
        for s in seeds
    ]
