"""Worker processes for the sweep executor.

One worker is one forked process running :func:`_worker_main`: it
receives cell specs over a private pipe, runs them, and reports on a
queue shared with the supervisor.  A daemon heartbeat thread beats
every ``heartbeat_interval`` seconds while a cell is in flight, so the
supervisor can tell a *slow* cell (beats arriving, deadline not yet
passed) from a *frozen* worker (no beats: SIGSTOPped, deadlocked in C,
or already dead) without waiting for the full cell timeout.

Messages on the result queue (tuples, first element is the kind):

- ``("ready", worker_id)`` — worker finished booting
- ``("heartbeat", worker_id, cell_id)`` — still alive on this cell
- ``("ok", worker_id, cell_id, payload, seconds)`` — cell done
- ``("error", worker_id, cell_id, error_type, message, seconds)`` —
  the cell callable raised; the worker itself is still healthy

Workers never write checkpoints or records: the supervisor is the
single writer, so crash-safety reasoning stays in one place.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.exec.cells import run_cell
from repro.exec.tracing import SpanWriter, worker_lane, worker_span_path

#: Seconds between worker heartbeats while a cell runs.
HEARTBEAT_INTERVAL = 0.2

#: Fork keeps sys.path / imported state and is the start method whose
#: workers inherit the parent's deterministic hash seed.
_CTX = mp.get_context("fork")


def _worker_main(worker_id: int, conn, results, heartbeat_interval: float,
                 trace_dir: Optional[str] = None) -> None:
    """Worker loop: recv spec, run, report; ``None`` means shut down.

    When ``trace_dir`` is set the worker appends its own span file
    (boot span, one ``cell`` span per completed attempt).  Kills cannot
    be recorded from here — a SIGKILLed worker writes nothing — so the
    supervisor records killed attempts on this worker's lane instead.
    """
    state = {"cell": None}
    stop = threading.Event()
    writer = lane = None
    if trace_dir is not None:
        lane = worker_lane(os.getpid(), worker_id)
        writer = SpanWriter(worker_span_path(trace_dir, os.getpid(), worker_id))
    boot_wall = time.time()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            cell_id = state["cell"]
            if cell_id is not None:
                try:
                    results.put(("heartbeat", worker_id, cell_id))
                except Exception:
                    return  # queue torn down; supervisor is gone

    threading.Thread(target=beat, daemon=True).start()
    results.put(("ready", worker_id))
    if writer is not None:
        writer.span(lane, "boot", "boot", boot_wall, time.time(),
                    worker=worker_id)
    while True:
        try:
            spec = conn.recv()
        except (EOFError, OSError):
            break
        if spec is None:
            break
        # The trace context rides along outside the provenance-hashed
        # identity fields; strip it before the cell sees its spec.
        trace_meta = spec.pop("_trace", None) or {}
        cell_id = spec["cell_id"]
        state["cell"] = cell_id
        started = time.perf_counter()
        run_wall = time.time()
        try:
            payload = run_cell(spec)
        except KeyboardInterrupt:
            break
        except BaseException as error:  # report, stay alive for more cells
            results.put((
                "error", worker_id, cell_id,
                type(error).__name__, str(error),
                time.perf_counter() - started,
            ))
            if writer is not None:
                writer.span(
                    lane, cell_id, "cell", run_wall, time.time(),
                    cell_id=cell_id, status="error",
                    error=type(error).__name__,
                    attempt=trace_meta.get("attempt"),
                )
        else:
            results.put((
                "ok", worker_id, cell_id, payload,
                time.perf_counter() - started,
            ))
            if writer is not None:
                writer.span(
                    lane, cell_id, "cell", run_wall, time.time(),
                    cell_id=cell_id, status="ok",
                    attempt=trace_meta.get("attempt"),
                )
        finally:
            state["cell"] = None
    stop.set()
    if writer is not None:
        writer.close()


@dataclass
class WorkerHandle:
    """The supervisor's view of one worker process."""

    worker_id: int
    process: mp.Process = None
    conn: object = None  # parent end of the task pipe
    #: In-flight cell spec (None when idle).
    cell: Optional[dict] = None
    #: Monotonic deadline for the in-flight cell (wall-clock timeout).
    deadline: float = 0.0
    #: Monotonic time of the last sign of life for the in-flight cell.
    last_beat: float = 0.0
    #: Monotonic dispatch time (queue-wait + runtime accounting).
    dispatched_at: float = 0.0
    #: Epoch dispatch time — trace timestamps only, comparable across
    #: processes (monotonic clocks are not).
    dispatched_wall: float = 0.0
    #: OS pid captured at spawn; survives the process object's death and
    #: names the worker's trace lane.
    pid: int = 0
    #: Heartbeats received for the in-flight cell; a worker that never
    #: beat may just be slow to boot, so it gets a grace period before
    #: stall detection applies.
    beats: int = 0
    ready: bool = False
    retired: bool = field(default=False)

    @property
    def busy(self) -> bool:
        return self.cell is not None

    @property
    def lane(self) -> str:
        """The trace lane this worker's spans live on."""
        return worker_lane(self.pid, self.worker_id)

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def send(self, spec: Optional[dict]) -> bool:
        """Ship a cell spec (or ``None`` shutdown) to the worker."""
        try:
            self.conn.send(spec)
            return True
        except (BrokenPipeError, OSError):
            return False

    def kill(self) -> None:
        """SIGKILL escalation: no grace, the cell will be retried."""
        if self.process is None:
            return
        try:
            self.process.kill()  # SIGKILL; also fells SIGSTOPped workers
        except (OSError, AttributeError):
            pass
        self.process.join(timeout=5.0)
        self._close()

    def terminate(self) -> None:
        """Polite shutdown used at pool teardown, escalating if ignored."""
        self.send(None)
        if self.process is not None:
            self.process.join(timeout=2.0)
            if self.process.is_alive():
                self.kill()
                return
        self._close()

    def _close(self) -> None:
        try:
            self.conn.close()
        except (OSError, AttributeError):
            pass
        self.retired = True


def spawn_worker(worker_id: int, results,
                 heartbeat_interval: float = HEARTBEAT_INTERVAL,
                 trace_dir: Optional[str] = None,
                 ) -> WorkerHandle:
    """Fork one worker and return its handle (not yet marked ready)."""
    parent_conn, child_conn = _CTX.Pipe()
    process = _CTX.Process(
        target=_worker_main,
        args=(worker_id, child_conn, results, heartbeat_interval, trace_dir),
        daemon=True,
        name=f"repro-sweep-worker-{worker_id}",
    )
    process.start()
    child_conn.close()
    now = time.monotonic()
    return WorkerHandle(
        worker_id=worker_id, process=process, conn=parent_conn,
        last_beat=now, pid=process.pid or 0,
    )


def make_result_queue():
    """The shared worker->supervisor queue."""
    return _CTX.Queue()


def default_jobs() -> int:
    """A conservative worker-count default: cores, capped at 8."""
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cores = os.cpu_count() or 1
    return max(1, min(8, cores))


def self_sigkill() -> None:  # pragma: no cover - used by failure tests
    """Kill the current process the hard way (test helper)."""
    os.kill(os.getpid(), signal.SIGKILL)
