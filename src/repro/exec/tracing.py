"""Cross-process trace propagation for the sweep executor.

The supervised executor (:mod:`repro.exec.supervisor`) fans cells out
to forked workers; each process knows only its own slice of the sweep.
This module gives every participant an append-only *span file* and a
merge step that reassembles the fleet's files into one Chrome/Perfetto
trace with a lane per process and flow events linking retries of the
same cell across workers.

Design constraints, in order:

- **Determinism first.**  Tracing must never change what a sweep
  computes.  Span records live outside the cell payload, the trace
  context travels in a ``_trace`` key that is excluded from the
  provenance hash (see :func:`repro.exec.cells._hashable_spec`), and
  every write is best-effort: an unwritable span file degrades to *no
  trace*, never to a failed sweep.  Degradation is *counted*, not
  silent — :class:`SpanWriter` rides on
  :class:`repro.fsio.BestEffortWriter`, whose drop counters surface in
  the sweep record's ``exec.*`` telemetry.
- **Crash-tolerant files.**  Workers die mid-write (SIGKILL is a
  supported executor path), so the format is one JSON object per line,
  flushed per record, and the reader skips torn tails instead of
  failing the merge.
- **Comparable clocks.**  All timestamps are ``time.time()`` epoch
  seconds.  Forked processes share the system clock, which makes the
  merged timeline directly comparable across lanes; monotonic clocks
  would not be.  Every read is quarantined here (module is on the
  DET003 exemption list) and the values only ever land in span files
  and record ``timings`` — never in ``metrics``.

Lane identity is ``worker-<ospid>-<workerid>``: worker ids restart at
0 on resume and are reused by replacement workers, but OS pids are
unique per process, so distinct processes always get distinct lanes in
the merged trace (which is what makes cross-worker retry flows
legible).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TraceMergeError
from repro.fsio import BestEffortWriter, write_json_atomic

SPAN_FILE_SUFFIX = ".spans.jsonl"

__all__ = [
    "SPAN_FILE_SUFFIX",
    "SpanWriter",
    "SweepTracer",
    "TimelineLane",
    "TimelineSpan",
    "worker_lane",
    "worker_span_path",
    "read_span_records",
    "spans_to_timeline",
    "merge_sweep_trace",
]


def worker_lane(pid: int, worker_id: int) -> str:
    """The lane name a worker process records under.

    Includes the OS pid so replacement workers (same worker id, new
    process) and resumed runs (worker ids restart at 0) land on
    distinct lanes.
    """

    return f"worker-{pid}-{worker_id}"


def worker_span_path(trace_dir: str, pid: int, worker_id: int) -> str:
    return os.path.join(trace_dir, worker_lane(pid, worker_id) + SPAN_FILE_SUFFIX)


class SpanWriter:
    """Append-only JSONL span file for one process.

    Opens lazily on first record so that merely constructing a writer
    (e.g. in a worker that never receives a cell) leaves no file.
    Writes are flushed per record — a killed process loses at most the
    line it was writing, which the reader tolerates.  I/O errors never
    fail the sweep (tracing is an observer), but they are no longer
    silent: the underlying :class:`repro.fsio.BestEffortWriter` counts
    every dropped record and warns once on stderr.
    """

    def __init__(self, path: str, io=None):
        self.path = path
        self._writer = BestEffortWriter(path, io=io, label="span writer")

    def _emit(self, record: Dict) -> None:
        self._writer.append(record)

    def telemetry(self, prefix: str = "trace") -> Dict[str, float]:
        """Span write/drop counters, for ``exec.*`` telemetry."""
        return self._writer.telemetry(prefix)

    def span(self, lane: str, name: str, cat: str, t0: float, t1: float, **args) -> None:
        self._emit(
            {
                "kind": "span",
                "lane": lane,
                "pid": os.getpid(),
                "name": name,
                "cat": cat,
                "t0": t0,
                "t1": t1,
                "args": args,
            }
        )

    def instant(self, lane: str, name: str, cat: str, t: float, **args) -> None:
        self._emit(
            {
                "kind": "instant",
                "lane": lane,
                "pid": os.getpid(),
                "name": name,
                "cat": cat,
                "t": t,
                "args": args,
            }
        )

    def close(self) -> None:
        self._writer.close()


class SweepTracer:
    """Supervisor-side trace handle for one sweep invocation.

    Owns the trace directory (created eagerly so workers can write into
    it immediately after fork) and the supervisor's own span file.
    Workers derive their file paths from :attr:`trace_dir` with
    :func:`worker_span_path`; the supervisor never writes on worker
    lanes except for *killed* attempts, which the worker by definition
    cannot record itself.
    """

    def __init__(self, trace_dir: str, io=None):
        os.makedirs(trace_dir, exist_ok=True)
        self.trace_dir = trace_dir
        self.lane = f"supervisor-{os.getpid()}"
        self._writer = SpanWriter(
            os.path.join(trace_dir, self.lane + SPAN_FILE_SUFFIX), io=io
        )

    def telemetry(self, prefix: str = "trace") -> Dict[str, float]:
        """The supervisor lane's write/drop counters."""
        return self._writer.telemetry(prefix)

    def span(self, name: str, cat: str, t0: float, t1: float, *, lane: Optional[str] = None, **args) -> None:
        self._writer.span(lane or self.lane, name, cat, t0, t1, **args)

    def instant(self, name: str, cat: str, t: float, *, lane: Optional[str] = None, **args) -> None:
        self._writer.instant(lane or self.lane, name, cat, t, **args)

    def now(self) -> float:
        return time.time()

    def close(self) -> None:
        self._writer.close()


def read_span_records(trace_dir: str) -> List[Dict]:
    """Load every span record under ``trace_dir``, tolerating torn tails.

    Files are visited in sorted order and lines that fail to parse (a
    process died mid-write) are skipped; a missing directory is the
    caller's error and raises :class:`TraceMergeError`.
    """

    if not os.path.isdir(trace_dir):
        raise TraceMergeError("trace directory does not exist", trace_dir=trace_dir)
    records: List[Dict] = []
    for fname in sorted(os.listdir(trace_dir)):
        if not fname.endswith(SPAN_FILE_SUFFIX):
            continue
        path = os.path.join(trace_dir, fname)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail from a killed process
                    if isinstance(record, dict) and record.get("kind") in ("span", "instant"):
                        records.append(record)
        except OSError as exc:
            raise TraceMergeError(
                "unreadable span file", path=path, error=str(exc)
            ) from exc
    return records


@dataclass(frozen=True)
class TimelineSpan:
    """One closed span, rebased to the sweep's earliest timestamp."""

    name: str
    cat: str
    t0: float
    t1: float
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)


@dataclass
class TimelineLane:
    """One process's spans, ordered by start time."""

    lane: str
    spans: List[TimelineSpan] = field(default_factory=list)
    instants: List[TimelineSpan] = field(default_factory=list)

    @property
    def is_supervisor(self) -> bool:
        return self.lane.startswith("supervisor")


def spans_to_timeline(records: List[Dict]) -> List[TimelineLane]:
    """Group raw span records into per-lane timelines for rendering.

    The adapter between the JSONL span files and any human-facing
    lane view (the observatory's sweep page; a future ``repro serve``).
    Timestamps are rebased so the earliest event of the sweep is
    ``t=0`` — the absolute epoch values are wall-clock and must never
    reach a deterministic rendering.  Lanes come supervisor-first, then
    workers sorted by name; spans within a lane sort by
    ``(t0, t1, name)``.  Malformed records are skipped, mirroring the
    torn-tail tolerance of :func:`read_span_records`.
    """

    base: Optional[float] = None
    for record in records:
        t0 = record.get("t0") if record.get("kind") == "span" else record.get("t")
        if isinstance(t0, (int, float)):
            base = t0 if base is None else min(base, t0)
    lanes: Dict[str, TimelineLane] = {}
    for record in records:
        lane_name = record.get("lane")
        if not isinstance(lane_name, str) or not lane_name:
            continue
        lane = lanes.setdefault(lane_name, TimelineLane(lane=lane_name))
        args = record.get("args")
        args = dict(args) if isinstance(args, dict) else {}
        if record.get("kind") == "span":
            t0, t1 = record.get("t0"), record.get("t1")
            if not isinstance(t0, (int, float)) or not isinstance(t1, (int, float)):
                continue
            lane.spans.append(TimelineSpan(
                name=str(record.get("name", "")),
                cat=str(record.get("cat", "")),
                t0=t0 - (base or 0.0),
                t1=t1 - (base or 0.0),
                args=args,
            ))
        elif record.get("kind") == "instant":
            t = record.get("t")
            if not isinstance(t, (int, float)):
                continue
            stamp = t - (base or 0.0)
            lane.instants.append(TimelineSpan(
                name=str(record.get("name", "")),
                cat=str(record.get("cat", "")),
                t0=stamp,
                t1=stamp,
                args=args,
            ))
    for lane in lanes.values():
        lane.spans.sort(key=lambda s: (s.t0, s.t1, s.name))
        lane.instants.sort(key=lambda s: (s.t0, s.name))
    return sorted(
        lanes.values(), key=lambda lane: (not lane.is_supervisor, lane.lane)
    )


def merge_sweep_trace(trace_dir: str, out_path: str,
                      io=None) -> Tuple[int, int]:
    """Merge all span files under ``trace_dir`` into one Chrome trace.

    Returns ``(n_events, n_flow_links)``.  The export shape (lane →
    pid/tid assignment, flow derivation) lives in
    :func:`repro.obs.export.sweep_records_to_chrome`.  The merged file
    is written with the full atomic protocol — tmp + fsync +
    ``os.replace`` + parent-dir fsync, tmp cleaned up on failure — so a
    crash during merge can never leave a torn ``trace.json``.
    """

    from repro.obs.export import sweep_records_to_chrome

    records = read_span_records(trace_dir)
    trace = sweep_records_to_chrome(records)
    write_json_atomic(out_path, trace, indent=1, io=io)
    n_flows = int(trace.get("otherData", {}).get("flow_links", 0))
    return len(trace["traceEvents"]), n_flows
