"""A compact discrete-event simulation core.

Processes are Python generators that yield :class:`Event` objects; the
:class:`Simulation` advances virtual time and resumes processes when the
events they wait on trigger.  :class:`Resource` provides FIFO contention
(cores, disk channels, network links).

The design follows the familiar SimPy shape but is self-contained —
the paper's testbed is replaced by models built on this core, and
depending on nothing external keeps the substrate auditable.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Generator, List, Optional

from repro.errors import SimulationError


class Interrupted(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    ``cause`` describes why the process was killed (a node crash, a
    speculative duplicate winning the race, ...).  Processes that hold
    resources should release them in ``try/finally`` blocks — the
    interrupt unwinds through them like any exception.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """Something that will happen at a simulated time.

    Processes wait on events by yielding them; callbacks fire when the
    event triggers.  An event carries an optional ``value``.
    """

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self.triggered = False
        self.value = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def trigger(self, value=None) -> None:
        """Fire the event immediately (at the current simulation time)."""
        if self.triggered:
            raise SimulationError(
                "event already triggered",
                time=self.sim.now,
                event=type(self).__name__,
            )
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    def __init__(self, sim: "Simulation", delay: float, value=None):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        super().__init__(sim)
        sim._schedule(delay, self, value)


class Process(Event):
    """A running coroutine; itself an event that triggers on completion.

    The generator yields :class:`Event` objects; the process resumes when
    each yielded event triggers, receiving the event's value.  The
    process's own value is the generator's return value.
    """

    def __init__(self, sim: "Simulation", generator: Generator):
        super().__init__(sim)
        self._generator = generator
        self.interrupted = False
        self.interrupt_cause = None
        self._target: Optional[Event] = None
        self._wait_token: Optional[object] = None
        # Kick off on the next simulation step.
        sim._schedule(0.0, _Resume(self, None), None)

    def _step(self, send_value, throw: Optional[BaseException] = None) -> None:
        if self.triggered:
            return
        self._target = None
        self._wait_token = None
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send_value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        except Interrupted as exc:
            # The interrupt unwound the generator; the process completes
            # with the exception as its value so waiters (all_of gates,
            # supervising processes) still drain.
            self.interrupted = True
            self.interrupt_cause = exc.cause
            self.trigger(exc)
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process yielded {target!r}; processes must yield Events"
            )
        self._target = target
        token = self._wait_token = object()

        def resume(event: Event, _token=token) -> None:
            # Stale wakeup from an event this process abandoned when it
            # was interrupted (or re-yielded after catching Interrupted).
            if self._wait_token is _token:
                self._step(event.value)

        target.add_callback(resume)

    def interrupt(self, cause=None) -> bool:
        """Kill the process mid-yield by throwing :class:`Interrupted`.

        The exception unwinds the generator (running its ``finally``
        blocks, so held resources are released) and, if it propagates
        out, cascades into any child :class:`Process` this one was
        waiting on — an in-flight compute or disk transfer dies with the
        task that issued it.  Returns False if the process had already
        finished.
        """
        if self.triggered:
            return False
        target = self._target
        self._step(None, throw=Interrupted(cause))
        if self.interrupted and isinstance(target, Process):
            target.interrupt(cause)
        return True


class _Resume:
    """Internal bootstrap token for starting a process."""

    def __init__(self, process: Process, value):
        self.process = process
        self.value = value


class Simulation:
    """The event loop: a time-ordered queue of pending events.

    ``tracer`` is an optional :class:`repro.obs.tracer.Tracer`; every
    instrumented component reaches it through its ``sim`` reference and
    skips all recording when it is ``None``, keeping untraced runs on
    the exact pre-observability event schedule.

    ``auditor`` is an optional :class:`repro.chaos.audit.InvariantAuditor`
    reached the same way: processes and resources register themselves
    with it and the run loop reports every event timestamp, so the
    auditor can check for stranded processes, leaked grants and a
    non-monotonic clock.  With no auditor the hooks cost one ``None``
    test each and the event schedule is untouched.
    """

    def __init__(self, tracer=None, auditor=None):
        self.now = 0.0
        self._queue: list = []
        self._sequence = 0
        self.tracer = tracer
        self.auditor = auditor
        if tracer is not None:
            tracer.bind_clock(lambda: self.now)

    def _schedule(self, delay: float, item, value) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, item, value))

    def timeout(self, delay: float, value=None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Register a generator as a running process."""
        process = Process(self, generator)
        if self.auditor is not None:
            self.auditor.register_process(process)
        return process

    def run(
        self,
        until: Optional[float] = None,
        until_event: Optional[Event] = None,
    ) -> float:
        """Run until the queue drains (or simulated time passes ``until``,
        or ``until_event`` triggers).

        ``until_event`` lets a caller stop at a completion gate without
        draining stale bookkeeping events (heartbeat monitors, pending
        fault injections) scheduled beyond it.  Returns the final
        simulation time.
        """
        if until_event is not None and until_event.triggered:
            return self.now
        while self._queue:
            time, _, item, value = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if self.auditor is not None:
                self.auditor.observe_time(time)
            self.now = time
            if isinstance(item, _Resume):
                item.process._step(item.value)
            elif isinstance(item, Event):
                item.trigger(value)
            else:  # pragma: no cover - queue only holds the above
                raise TypeError(f"unexpected queue item {item!r}")
            if until_event is not None and until_event.triggered:
                return self.now
        return self.now

    def all_of(self, events: List[Event]) -> Event:
        """An event that triggers once every event in ``events`` has."""
        gate = Event(self)
        if not events:
            self._schedule(0.0, gate, None)
            return gate
        remaining = [len(events)]

        def on_done(_event: Event) -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                gate.trigger([e.value for e in events])

        for event in events:
            event.add_callback(on_done)
        return gate


class Resource:
    """A capacity-limited resource with a FIFO wait queue.

    Usage inside a process::

        grant = resource.request()
        yield grant
        try:
            yield sim.timeout(holding_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulation, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: Deque[Event] = deque()
        # Accounting for utilization metrics.
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self._last_change = sim.now
        if sim.auditor is not None:
            sim.auditor.register_resource(self)

    def _account(self) -> None:
        elapsed = self.sim.now - self._last_change
        self._busy_integral += elapsed * self.in_use
        self._queue_integral += elapsed * len(self._waiting)
        self._last_change = self.sim.now

    def request(self) -> Event:
        """An event that triggers when one capacity unit is granted."""
        self._account()
        grant = Event(self.sim)
        if self.in_use < self.capacity:
            self.in_use += 1
            self.sim._schedule(0.0, grant, None)
        else:
            self._waiting.append(grant)
        return grant

    @property
    def waiters(self) -> int:
        """Requests queued behind the in-use capacity units."""
        return len(self._waiting)

    def release(self) -> None:
        """Return one capacity unit, waking the next waiter if any."""
        self._account()
        if self.in_use <= 0:
            raise SimulationError(
                f"{self.name}: release without request",
                time=self.sim.now,
                in_use=self.in_use,
                waiters=len(self._waiting),
            )
        if self._waiting:
            grant = self._waiting.popleft()
            self.sim._schedule(0.0, grant, None)
        else:
            self.in_use -= 1

    def cancel(self, grant: Event) -> None:
        """Withdraw a request made with :meth:`request`.

        A still-queued waiter is removed from the FIFO (so an
        interrupted task does not leak a phantom waiter into
        ``queue_time()`` accounting); a request that was already granted
        is treated as a release.
        """
        self._account()
        try:
            self._waiting.remove(grant)
            return
        except ValueError:
            pass
        self.release()

    def busy_time(self) -> float:
        """Capacity-unit-seconds of busy time so far."""
        self._account()
        return self._busy_integral

    def peek_busy_time(self) -> float:
        """:meth:`busy_time` without flushing the lazy integral.

        Telemetry samples use this so that observing the resource
        mid-run never changes the float-accumulation order of the
        integral (reads stay bit-identical to an unobserved run).
        """
        elapsed = self.sim.now - self._last_change
        return self._busy_integral + elapsed * self.in_use

    def queue_time(self) -> float:
        """Waiter-seconds accumulated so far (queueing pressure)."""
        self._account()
        return self._queue_integral

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Mean fraction of capacity in use over ``elapsed`` (default: now)."""
        window = self.sim.now if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return self.busy_time() / (window * self.capacity)
