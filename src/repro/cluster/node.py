"""A cluster node: cores, memory, one disk, one NIC (Table 3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.disk import Disk
from repro.cluster.events import Event, Interrupted, Resource, Simulation
from repro.cluster.network import Nic


@dataclass(frozen=True)
class NodeSpec:
    """Hardware of one node, defaulting to the paper's testbed (Table 3):
    one Xeon E5645 (6 cores @ 2.40 GHz), 32 GB memory, 8 TB of disk."""

    cores: int = 6
    frequency_ghz: float = 2.40
    memory_gb: float = 32.0
    disk_tb: float = 8.0
    disk_bandwidth_mbps: float = 120.0
    nic_gbps: float = 1.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        for field_name in ("frequency_ghz", "memory_gb", "disk_tb"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


class Node:
    """One shared-nothing node executing task processes."""

    def __init__(self, sim: Simulation, name: str, spec: NodeSpec = NodeSpec()):
        self.sim = sim
        self.name = name
        self.spec = spec
        self.cores = Resource(sim, capacity=spec.cores, name=f"{name}-cores")
        self.disk = Disk(
            sim, name=f"{name}-disk", bandwidth_mbps=spec.disk_bandwidth_mbps
        )
        self.nic = Nic(sim, name=name, bandwidth_gbps=spec.nic_gbps)
        self.memory_used_gb = 0.0
        # Task-centric accounting for the §3.2.1 classification metrics.
        self.cpu_time = 0.0
        self.io_block_time = 0.0

    def compute(self, seconds: float) -> Event:
        """Process event for ``seconds`` of single-core computation."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")

        def run():
            grant = self.cores.request()
            try:
                yield grant
            except Interrupted:
                # Never got (or just got) the core; withdraw cleanly.
                self.cores.cancel(grant)
                raise
            tracer = self.sim.tracer
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "compute", "cpu", track=f"{self.name}.cpu", seconds=seconds
                )
            started = self.sim.now
            try:
                yield self.sim.timeout(seconds)
                self.cpu_time += seconds
            except Interrupted as exc:
                # Credit the cycles actually burned before the kill.
                self.cpu_time += self.sim.now - started
                if span is not None:
                    span.args["interrupted"] = str(exc.cause)
                raise
            finally:
                if span is not None:
                    tracer.end(span)
                self.cores.release()

        return self.sim.process(run())

    def blocking_read(self, nbytes: int, sequential: bool = True) -> Event:
        """Disk read during which the issuing task is I/O-blocked."""

        def run():
            tracer = self.sim.tracer
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "read", "io", track=f"{self.name}.io", bytes=nbytes
                )
            start = self.sim.now
            try:
                yield self.disk.read(nbytes, sequential=sequential)
            finally:
                self.io_block_time += self.sim.now - start
                if span is not None:
                    tracer.end(span)

        return self.sim.process(run())

    def blocking_write(self, nbytes: int, sequential: bool = True) -> Event:
        """Disk write during which the issuing task is I/O-blocked."""

        def run():
            tracer = self.sim.tracer
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "write", "io", track=f"{self.name}.io", bytes=nbytes
                )
            start = self.sim.now
            try:
                yield self.disk.write(nbytes, sequential=sequential)
            finally:
                self.io_block_time += self.sim.now - start
                if span is not None:
                    tracer.end(span)

        return self.sim.process(run())

    def allocate_memory(self, gigabytes: float) -> None:
        """Track memory pressure; raises when the node would swap."""
        if gigabytes < 0:
            raise ValueError("gigabytes must be non-negative")
        if self.memory_used_gb + gigabytes > self.spec.memory_gb:
            raise MemoryError(
                f"{self.name}: {self.memory_used_gb + gigabytes:.1f} GB exceeds "
                f"{self.spec.memory_gb:.1f} GB"
            )
        self.memory_used_gb += gigabytes

    def free_memory(self, gigabytes: float) -> None:
        self.memory_used_gb = max(0.0, self.memory_used_gb - gigabytes)

    def cpu_utilization(self, elapsed: float) -> float:
        """Fraction of core-seconds spent computing over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.cpu_time / (elapsed * self.spec.cores))

    def io_wait_ratio(self, elapsed: float) -> float:
        """Fraction of core-seconds spent blocked on disk I/O."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.io_block_time / (elapsed * self.spec.cores))
