"""A block-based distributed filesystem (the HDFS stand-in).

Files are split into fixed-size blocks placed round-robin with
replication across nodes.  Reads prefer a local replica (data-local
tasks); writes stream to the local disk and pipeline replicas over the
network, matching how Hadoop and Spark consume storage on the paper's
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.cluster import Cluster
from repro.cluster.events import Event

#: HDFS-era default block size.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024


@dataclass
class Block:
    """One file block and the node indices holding its replicas."""

    index: int
    nbytes: int
    replicas: List[int] = field(default_factory=list)


@dataclass
class FileHandle:
    """Metadata for a stored file."""

    path: str
    size: int
    blocks: List[Block]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


class DistributedFileSystem:
    """Namespace plus block placement over a :class:`Cluster`."""

    def __init__(
        self,
        cluster: Cluster,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        replication: int = 3,
    ):
        if block_bytes <= 0:
            raise ValueError("block size must be positive")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.cluster = cluster
        self.block_bytes = block_bytes
        self.replication = min(replication, len(cluster))
        self._files: Dict[str, FileHandle] = {}
        self._next_block_node = 0

    def exists(self, path: str) -> bool:
        return path in self._files

    def lookup(self, path: str) -> FileHandle:
        if path not in self._files:
            raise FileNotFoundError(path)
        return self._files[path]

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def create(self, path: str, size: int) -> FileHandle:
        """Allocate metadata for a file of ``size`` bytes.

        Placement is round-robin: block *i* gets replicas on nodes
        ``i, i+1, ... i+replication-1`` (mod cluster size).
        """
        if self.exists(path):
            raise FileExistsError(path)
        if size < 0:
            raise ValueError("size must be non-negative")
        blocks = []
        remaining = size
        index = 0
        while remaining > 0 or index == 0:
            nbytes = min(self.block_bytes, remaining) if size > 0 else 0
            primary = self._next_block_node
            self._next_block_node = (self._next_block_node + 1) % len(self.cluster)
            replicas = [
                (primary + r) % len(self.cluster) for r in range(self.replication)
            ]
            blocks.append(Block(index=index, nbytes=nbytes, replicas=replicas))
            remaining -= nbytes
            index += 1
            if size == 0:
                break
        handle = FileHandle(path=path, size=size, blocks=blocks)
        self._files[path] = handle
        return handle

    def read_block(self, handle: FileHandle, block_index: int, reader_node: int) -> Event:
        """Process event reading one block from ``reader_node``.

        A local replica is read straight off the local disk; a remote one
        adds a network transfer from the nearest replica holder.
        """
        block = handle.blocks[block_index]
        sim = self.cluster.sim
        if reader_node in block.replicas:
            return self.cluster.node(reader_node).blocking_read(block.nbytes)
        source = block.replicas[0]

        def remote_read():
            yield self.cluster.node(source).blocking_read(block.nbytes)
            yield self.cluster.network.transfer(
                self.cluster.node(source).name,
                self.cluster.node(reader_node).name,
                block.nbytes,
            )

        return sim.process(remote_read())

    def write_file(self, path: str, size: int, writer_node: int) -> Event:
        """Process event writing a whole file from ``writer_node``.

        The writer streams each block to its local disk and pipelines
        replica copies over the network to the replica holders.
        """
        handle = self.create(path, size)
        sim = self.cluster.sim

        def do_write():
            for block in handle.blocks:
                # Primary replica lands on the writer where possible.
                if writer_node not in block.replicas and block.replicas:
                    block.replicas[0] = writer_node
                yield self.cluster.node(writer_node).blocking_write(block.nbytes)
                for replica in block.replicas:
                    if replica == writer_node:
                        continue
                    yield self.cluster.network.transfer(
                        self.cluster.node(writer_node).name,
                        self.cluster.node(replica).name,
                        block.nbytes,
                    )
                    yield self.cluster.node(replica).blocking_write(block.nbytes)
            return handle

        return sim.process(do_write())

    def blocks_on_node(self, handle: FileHandle, node_index: int) -> List[Block]:
        """Blocks of ``handle`` with a replica on ``node_index``."""
        return [b for b in handle.blocks if node_index in b.replicas]
