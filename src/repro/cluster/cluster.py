"""The cluster: nodes behind a non-blocking switch, plus run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.events import Simulation
from repro.cluster.network import Network
from repro.cluster.node import Node, NodeSpec


@dataclass
class SystemMetrics:
    """The §3.2.1 system-behaviour measurements for one workload run.

    The recovery fields are filled by the fault-tolerant scheduler and
    stay at their defaults for fault-free runs, so fault tolerance never
    perturbs the paper's characterization baseline:

    - ``tasks_retried``: attempts re-executed after a failure.
    - ``speculative_launches`` / ``speculative_wins``: duplicate
      attempts launched against stragglers, and how many finished first.
    - ``wasted_work_ratio``: share of attempt wall-time spent in
      attempts that were killed, lost a speculation race, or failed.
    - ``makespan_inflation``: elapsed versus the fault-free elapsed for
      the same job (filled by experiments that run both).
    - ``faults_injected``: infrastructure faults the plan delivered.

    ``timeline`` carries the per-node utilization samples when telemetry
    was attached; it is excluded from ``==`` so the fault-free
    bit-identity comparisons stay about the measured totals.
    """

    elapsed: float
    cpu_utilization: float
    io_wait_ratio: float
    weighted_io_time_ratio: float
    disk_bandwidth_mbps: float
    network_bandwidth_mbps: float
    tasks_retried: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    wasted_work_ratio: float = 0.0
    makespan_inflation: float = 1.0
    faults_injected: int = 0
    timeline: Optional[object] = field(default=None, compare=False, repr=False)

    def to_dict(self) -> dict:
        """Machine-readable form (``repro run --json``); no timeline."""
        return {
            "elapsed": self.elapsed,
            "cpu_utilization": self.cpu_utilization,
            "io_wait_ratio": self.io_wait_ratio,
            "weighted_io_time_ratio": self.weighted_io_time_ratio,
            "disk_bandwidth_mbps": self.disk_bandwidth_mbps,
            "network_bandwidth_mbps": self.network_bandwidth_mbps,
            "tasks_retried": self.tasks_retried,
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "wasted_work_ratio": self.wasted_work_ratio,
            "makespan_inflation": self.makespan_inflation,
            "faults_injected": self.faults_injected,
        }


class Cluster:
    """A shared-nothing cluster of identical nodes (the paper uses 5)."""

    def __init__(
        self,
        sim: Simulation = None,
        n_nodes: int = 5,
        spec: NodeSpec = NodeSpec(),
    ):
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim if sim is not None else Simulation()
        self.network = Network(self.sim)
        self.nodes: List[Node] = []
        for i in range(n_nodes):
            node = Node(self.sim, name=f"node{i}", spec=spec)
            self.network.attach(node.nic)
            self.nodes.append(node)
        self._started_at = self.sim.now
        self.telemetry = None

    def attach_telemetry(self, tracer=None):
        """Attach a utilization-timeline sampler (idempotent).

        ``tracer`` defaults to the simulation's tracer; the scheduler
        calls this when tracing so :meth:`metrics` can aggregate its
        totals from the sampled timeline instead of the live counters.
        """
        if self.telemetry is None:
            from repro.obs.metrics import ClusterTelemetry

            if tracer is None:
                tracer = self.sim.tracer
            self.telemetry = ClusterTelemetry(self, tracer)
        return self.telemetry

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> Node:
        return self.nodes[index % len(self.nodes)]

    def run(self, until: float = None) -> float:
        """Drive the simulation; returns the final simulated time."""
        return self.sim.run(until=until)

    def direct_totals(self, peek: bool = False):
        """Cluster-wide cumulative totals summed straight off the nodes.

        ``peek=True`` uses the non-mutating accessors so the read never
        flushes a lazy accounting integral — the chaos auditor uses this
        to cross-check telemetry without perturbing the run.  The sums
        visit nodes in construction order, so the floats are
        bit-identical to the timeline's
        :meth:`~repro.obs.metrics.UtilizationTimeline.final_totals`.
        """
        from repro.obs.metrics import TimelineTotals

        if peek:
            busy = [node.disk.peek_busy_time() for node in self.nodes]
            weighted = [
                node.disk.peek_weighted_io_time() for node in self.nodes
            ]
        else:
            busy = [node.disk.busy_time() for node in self.nodes]
            weighted = [node.disk.weighted_io_time() for node in self.nodes]
        return TimelineTotals(
            cpu_seconds=sum(node.cpu_time for node in self.nodes),
            disk_busy_seconds=sum(busy),
            disk_weighted_seconds=sum(weighted),
            disk_bytes=sum(node.disk.total_bytes for node in self.nodes),
            net_bytes=sum(node.nic.total_bytes for node in self.nodes),
        )

    def leak_report(self) -> List[dict]:
        """Grants still held and waiters still queued, per node resource.

        Empty on a cleanly drained cluster; the chaos auditor turns any
        entry into a ``resource-leak`` violation.
        """
        leaks = []
        for node in self.nodes:
            channels = (
                (node.cores, "cores"),
                (node.disk._channel, "disk-channel"),
                (node.nic._channel, "nic-channel"),
            )
            for resource, kind in channels:
                if resource.in_use or resource.waiters:
                    leaks.append(
                        {
                            "node": node.name,
                            "resource": resource.name,
                            "kind": kind,
                            "in_use": resource.in_use,
                            "waiters": resource.waiters,
                        }
                    )
            if node.disk.inflight:
                leaks.append(
                    {
                        "node": node.name,
                        "resource": node.disk.name,
                        "kind": "disk-inflight",
                        "in_use": node.disk.inflight,
                        "waiters": 0,
                    }
                )
        return leaks

    def metrics(self) -> SystemMetrics:
        """Cluster-wide system metrics since construction."""
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0:
            return SystemMetrics(
                elapsed=0.0,
                cpu_utilization=0.0,
                io_wait_ratio=0.0,
                weighted_io_time_ratio=0.0,
                disk_bandwidth_mbps=0.0,
                network_bandwidth_mbps=0.0,
            )
        n = len(self.nodes)
        # Utilisation is reported as the duty cycle of *occupied* cores
        # (compute time versus compute + I/O-blocked time).  Scaled-down
        # runs underfill the paper's 5-node testbed, so wall-clock
        # core-utilisation would trivially classify everything as idle;
        # the duty cycle preserves the paper's compute/IO balance, which
        # is what the §3.2.1 rules discriminate on.
        # When telemetry is attached the totals come off the sampled
        # timeline's closing samples; those read the same accounting
        # fields in the same node order, so the floats are bit-identical
        # to the direct sums below.
        timeline = None
        if self.telemetry is not None:
            totals = self.telemetry.finalize()
            timeline = self.telemetry.timeline
            total_cpu = totals.cpu_seconds
            total_io = totals.disk_busy_seconds
            total_weighted = totals.disk_weighted_seconds
            total_disk_bytes = totals.disk_bytes
            total_net_bytes = totals.net_bytes
        else:
            # Disk *service* time, not per-task blocked time: with more
            # runnable tasks than in-flight I/Os the OS overlaps the
            # queueing delay with other tasks' compute, exactly as Linux
            # iowait does.
            totals = self.direct_totals()
            total_cpu = totals.cpu_seconds
            total_io = totals.disk_busy_seconds
            total_weighted = totals.disk_weighted_seconds
            total_disk_bytes = totals.disk_bytes
            total_net_bytes = totals.net_bytes
        busy = total_cpu + total_io
        cpu = total_cpu / busy if busy > 0 else 0.0
        iowait = total_io / busy if busy > 0 else 0.0
        weighted = total_weighted / n / elapsed
        disk_bw = total_disk_bytes / n / elapsed / 1e6
        net_bw = total_net_bytes / n / elapsed / 1e6
        return SystemMetrics(
            elapsed=elapsed,
            cpu_utilization=cpu,
            io_wait_ratio=iowait,
            weighted_io_time_ratio=weighted,
            disk_bandwidth_mbps=disk_bw,
            network_bandwidth_mbps=net_bw,
            timeline=timeline,
        )
