"""Deterministic fault injection for the discrete-event cluster.

A :class:`FaultPlan` is a seeded, immutable script of infrastructure
faults — node crashes (with optional recovery), degraded disks that turn
a node into a straggler, and transient network partitions.  A
:class:`FaultInjector` replays the plan against one cluster simulation:
at each fault's time it marks nodes down, kills the task attempts
registered on them (throwing :class:`~repro.cluster.events.Interrupted`
into their processes), scales disk bandwidth, and notifies subscribers.

The injector models *ground truth*: which nodes are actually dead.  The
scheduler keeps its own heartbeat-lagged view on top (see
``repro.stacks.scheduler``), which is how Hadoop-style failure detection
latency arises.  All fault times are relative to
:meth:`FaultInjector.install`, i.e. to job start.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.events import Process
from repro.errors import FaultPlanError, SimulationError


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` dies at ``at``; optionally rejoins at ``recover_at``."""

    node: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be non-negative")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recovery must come after the crash")


@dataclass(frozen=True)
class DiskDegrade:
    """Node ``node``'s disk slows by ``factor``x over [at, until).

    The degraded node keeps running — it just becomes a straggler, the
    case speculative execution exists for.  ``until=None`` degrades for
    the rest of the run.
    """

    node: int
    at: float
    factor: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("degrade time must be non-negative")
        if self.factor <= 1.0:
            raise ValueError("degrade factor must exceed 1")
        if self.until is not None and self.until <= self.at:
            raise ValueError("degrade window must have positive length")


@dataclass(frozen=True)
class NetworkPartition:
    """``nodes`` are unreachable over [at, until).

    Partitioned nodes stop heartbeating and their in-flight work is
    fenced (killed and re-executed elsewhere), which is how MapReduce
    treats a task tracker it can no longer reach; when the window closes
    the nodes rejoin.
    """

    nodes: Tuple[int, ...]
    at: float
    until: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("partition time must be non-negative")
        if self.until <= self.at:
            raise ValueError("partition window must have positive length")
        if not self.nodes:
            raise ValueError("partition needs at least one node")


Fault = object  # NodeCrash | DiskDegrade | NetworkPartition


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, reproducible script of faults for one job run.

    The same plan replayed against the same job yields bit-identical
    simulations — randomness only enters through the seed used to
    *construct* a plan, never during replay.
    """

    faults: Tuple[Fault, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        crash_windows: Dict[int, List[Tuple[float, float]]] = {}
        for fault in self.faults:
            if not isinstance(fault, (NodeCrash, DiskDegrade, NetworkPartition)):
                raise FaultPlanError(
                    f"unknown fault kind {type(fault).__name__!r}",
                    fault=repr(fault),
                )
            if isinstance(fault, NodeCrash):
                crash_windows.setdefault(fault.node, []).append(
                    (fault.at, fault.recover_at
                     if fault.recover_at is not None else float("inf"))
                )
        # Two crash windows on one node must not overlap: the injector
        # would silently merge them (the second crash no-ops while the
        # node is already down, then the first recovery revives a node
        # the second crash meant to keep dead).
        for node, windows in crash_windows.items():
            windows.sort()
            for (start_a, end_a), (start_b, _) in zip(windows, windows[1:]):
                if start_b < end_a:
                    raise FaultPlanError(
                        f"overlapping NodeCrash windows on node {node}",
                        node=node,
                        first_window=(start_a, end_a),
                        second_start=start_b,
                    )

    def validate(self, n_nodes: int) -> "FaultPlan":
        """Check every fault targets a node the cluster actually has.

        Node references are only resolvable against a cluster size, so
        this runs at :meth:`FaultInjector.install` time rather than at
        construction.  Returns ``self`` so call sites can chain.
        Raises :class:`~repro.errors.FaultPlanError` on an unknown node
        (``Cluster.node`` would otherwise silently wrap the index).
        """
        for fault in self.faults:
            nodes = (
                fault.nodes if isinstance(fault, NetworkPartition)
                else (fault.node,)
            )
            for node in nodes:
                if not 0 <= node < n_nodes:
                    raise FaultPlanError(
                        f"fault references unknown node {node} "
                        f"(cluster has nodes 0..{n_nodes - 1})",
                        node=node,
                        n_nodes=n_nodes,
                        fault=repr(fault),
                    )
        return self

    @property
    def is_empty(self) -> bool:
        return not self.faults

    @classmethod
    def none(cls) -> "FaultPlan":
        """The fault-free plan: scheduling must be bit-identical to a
        run without fault tolerance at all."""
        return cls()

    @classmethod
    def single_crash(
        cls, node: int = 1, at: float = 1.0, recover_at: Optional[float] = None
    ) -> "FaultPlan":
        """The canonical experiment: one node dies mid-job."""
        return cls(faults=(NodeCrash(node=node, at=at, recover_at=recover_at),))

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_nodes: int = 5,
        horizon: float = 1.0,
        crashes: int = 1,
        degraded_disks: int = 0,
        partitions: int = 0,
        degrade_factor: float = 4.0,
    ) -> "FaultPlan":
        """Draw a reproducible plan from ``seed``.

        ``horizon`` is the window (in simulated seconds from job start)
        within which faults strike — pass an estimate of the fault-free
        makespan so faults land while work is in flight.  Victim nodes
        are distinct across fault kinds so one plan exercises each
        mechanism independently.
        """
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = random.Random(seed)
        victims = list(range(n_nodes))
        rng.shuffle(victims)
        faults: List[Fault] = []
        for _ in range(crashes):
            if not victims:
                break
            faults.append(
                NodeCrash(
                    node=victims.pop(),
                    at=rng.uniform(0.2, 0.6) * horizon,
                )
            )
        for _ in range(degraded_disks):
            if not victims:
                break
            at = rng.uniform(0.1, 0.4) * horizon
            faults.append(
                DiskDegrade(
                    node=victims.pop(),
                    at=at,
                    factor=degrade_factor,
                    until=at + rng.uniform(0.5, 1.0) * horizon,
                )
            )
        for _ in range(partitions):
            if not victims:
                break
            at = rng.uniform(0.2, 0.5) * horizon
            faults.append(
                NetworkPartition(
                    nodes=(victims.pop(),),
                    at=at,
                    until=at + rng.uniform(0.2, 0.5) * horizon,
                )
            )
        return cls(faults=tuple(faults), seed=seed)


class FaultInjector:
    """Replays a :class:`FaultPlan` against one cluster simulation.

    The scheduler registers every running task attempt with the node it
    occupies; when that node goes down the injector interrupts the
    attempt processes, and ``on_down``/``on_up`` subscribers (failure
    detectors, abort policies) are notified at the instant of the fault.
    """

    def __init__(self, cluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.down: Set[int] = set()
        self.degraded: Set[int] = set()
        self.faults_injected = 0
        self._attempts: Dict[int, List[Process]] = {}
        self._down_callbacks: List[Callable[[int, str], None]] = []
        self._up_callbacks: List[Callable[[int], None]] = []
        self._installed = False

    # ---- scheduler-facing API -------------------------------------------
    def is_down(self, node_index: int) -> bool:
        return node_index in self.down

    def on_down(self, callback: Callable[[int, str], None]) -> None:
        """``callback(node_index, cause)`` fires the instant a node dies."""
        self._down_callbacks.append(callback)

    def on_up(self, callback: Callable[[int], None]) -> None:
        self._up_callbacks.append(callback)

    def register_attempt(self, node_index: int, process: Process) -> None:
        """Track a task attempt running on ``node_index``.

        An attempt launched on an already-dead node is killed on the
        spot — it was assigned to a tracker that will never report.
        """
        self._attempts.setdefault(node_index, []).append(process)
        if node_index in self.down:
            process.interrupt(f"node{node_index} is down")

    def unregister_attempt(self, node_index: int, process: Process) -> None:
        attempts = self._attempts.get(node_index)
        if attempts and process in attempts:
            attempts.remove(process)

    # ---- plan replay -----------------------------------------------------
    def install(self) -> None:
        """Spawn one driver process per fault in the plan."""
        if self._installed:
            raise SimulationError("fault plan already installed")
        self.plan.validate(len(self.cluster))
        self._installed = True
        sim = self.cluster.sim
        for fault in self.plan.faults:
            if isinstance(fault, NodeCrash):
                sim.process(self._run_crash(fault))
            elif isinstance(fault, DiskDegrade):
                sim.process(self._run_degrade(fault))
            elif isinstance(fault, NetworkPartition):
                sim.process(self._run_partition(fault))
            else:  # pragma: no cover - plan construction validates kinds
                raise TypeError(f"unknown fault {fault!r}")

    def _run_crash(self, fault: NodeCrash):
        yield self.cluster.sim.timeout(fault.at)
        self._take_down(fault.node, cause=f"node{fault.node} crashed")
        if fault.recover_at is not None:
            yield self.cluster.sim.timeout(fault.recover_at - fault.at)
            self._bring_up(fault.node)

    def _run_degrade(self, fault: DiskDegrade):
        disk = self.cluster.node(fault.node).disk
        yield self.cluster.sim.timeout(fault.at)
        self.faults_injected += 1
        self.degraded.add(fault.node)
        disk.bandwidth_bps /= fault.factor
        if fault.until is not None:
            yield self.cluster.sim.timeout(fault.until - fault.at)
            disk.bandwidth_bps *= fault.factor
            self.degraded.discard(fault.node)

    def _run_partition(self, fault: NetworkPartition):
        yield self.cluster.sim.timeout(fault.at)
        for node in fault.nodes:
            self._take_down(node, cause=f"node{node} partitioned")
        yield self.cluster.sim.timeout(fault.until - fault.at)
        for node in fault.nodes:
            self._bring_up(node)

    def _take_down(self, node_index: int, cause: str) -> None:
        if node_index in self.down:
            return
        self.down.add(node_index)
        self.faults_injected += 1
        for callback in list(self._down_callbacks):
            callback(node_index, cause)
        # Kill over a copy: interrupted supervisors unregister reentrantly.
        for process in list(self._attempts.get(node_index, ())):
            process.interrupt(cause)

    def _bring_up(self, node_index: int) -> None:
        if node_index not in self.down:
            return
        self.down.discard(node_index)
        for callback in list(self._up_callbacks):
            callback(node_index)
