"""Discrete-event cluster substrate.

Stands in for the paper's 5-node Xeon E5645 testbed: nodes with cores,
disks and NICs execute workload tasks as coroutine processes, and the
resource models account CPU utilization, I/O-wait, weighted disk I/O
time and I/O bandwidth — the inputs to the paper's §3.2.1 system-
behaviour classification.
"""

from repro.cluster.events import (
    Interrupted,
    Process,
    Resource,
    Simulation,
    Timeout,
)
from repro.cluster.disk import Disk
from repro.cluster.network import Nic, Network
from repro.cluster.node import Node, NodeSpec
from repro.cluster.cluster import Cluster
from repro.cluster.faults import (
    DiskDegrade,
    FaultInjector,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
)
from repro.cluster.filesystem import DistributedFileSystem, FileHandle

__all__ = [
    "Simulation",
    "Process",
    "Timeout",
    "Resource",
    "Interrupted",
    "Disk",
    "Nic",
    "Network",
    "Node",
    "NodeSpec",
    "Cluster",
    "FaultPlan",
    "FaultInjector",
    "NodeCrash",
    "DiskDegrade",
    "NetworkPartition",
    "DistributedFileSystem",
    "FileHandle",
]
