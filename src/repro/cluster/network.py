"""Network model: per-node NICs over a non-blocking switch.

The paper's testbed interconnect is modelled as full-bisection: transfers
contend only at the sending and receiving NICs, which matches the
shared-nothing, scale-out architecture the paper's introduction
describes.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.events import Event, Resource, Simulation


class Nic:
    """A network interface with finite bandwidth, serialising transfers."""

    def __init__(self, sim: Simulation, name: str, bandwidth_gbps: float = 1.0):
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_gbps * 1e9 / 8.0  # bytes per second
        self._channel = Resource(sim, capacity=1, name=f"{name}-nic")
        self.bytes_sent = 0
        self.bytes_received = 0

    def _transfer(self, nbytes: int, receive: bool):
        grant = self._channel.request()
        yield grant
        try:
            yield self.sim.timeout(nbytes / self.bandwidth_bps)
        finally:
            self._channel.release()
            if receive:
                self.bytes_received += nbytes
            else:
                self.bytes_sent += nbytes

    def send(self, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.sim.process(self._transfer(nbytes, receive=False))

    def receive(self, nbytes: int) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.sim.process(self._transfer(nbytes, receive=True))

    def busy_time(self) -> float:
        return self._channel.busy_time()

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received

    def bandwidth_used_mbps(self, elapsed: float) -> float:
        """Achieved throughput over a window of ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.total_bytes / elapsed / 1e6


class Network:
    """A non-blocking switch connecting named NICs."""

    def __init__(self, sim: Simulation):
        self.sim = sim
        self._nics: Dict[str, Nic] = {}

    def attach(self, nic: Nic) -> None:
        if nic.name in self._nics:
            raise ValueError(f"nic {nic.name!r} already attached")
        self._nics[nic.name] = nic

    def nic(self, name: str) -> Nic:
        return self._nics[name]

    def _do_transfer(self, source: str, destination: str, nbytes: int):
        sender = self._nics[source]
        receiver = self._nics[destination]
        send_event = sender.send(nbytes)
        receive_event = receiver.receive(nbytes)
        yield self.sim.all_of([send_event, receive_event])

    def transfer(self, source: str, destination: str, nbytes: int) -> Event:
        """Process event for moving ``nbytes`` between two nodes.

        Local "transfers" (same source and destination) complete without
        consuming NIC bandwidth, like the paper's data-local tasks.
        """
        if source == destination:
            return self.sim.timeout(0.0)
        return self.sim.process(self._do_transfer(source, destination, nbytes))
