"""Disk model with weighted-I/O-time accounting.

The paper's §3.2.1 classifies workloads using, among others, the
*average weighted disk I/O time ratio*: "the number of I/O in progress
times the number of milliseconds spent doing I/O since the last update"
divided by running time (the Linux ``/proc/diskstats`` field 11
semantics).  This model reproduces that accounting: every in-flight
request accumulates queue-weighted time.
"""

from __future__ import annotations

from repro.cluster.events import Event, Interrupted, Resource, Simulation


class Disk:
    """A single spindle with limited bandwidth and seek latency.

    Requests are serialised through a channel resource (one transfer at a
    time, as on the paper's SATA disks); transfer time is
    ``bytes / bandwidth + seek``.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str = "disk",
        bandwidth_mbps: float = 120.0,
        seek_ms: float = 4.0,
    ):
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if seek_ms < 0:
            raise ValueError("seek time must be non-negative")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_mbps * 1e6
        self.seek_s = seek_ms / 1e3
        self._channel = Resource(sim, capacity=1, name=f"{name}-channel")
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0
        # Integral of (requests in flight) over time — the numerator of
        # the weighted I/O time metric.
        self._inflight = 0
        self._weighted_io_time = 0.0
        self._last_change = sim.now

    def _account(self) -> None:
        elapsed = self.sim.now - self._last_change
        self._weighted_io_time += elapsed * self._inflight
        self._last_change = self.sim.now

    def _transfer_time(self, nbytes: int, sequential: bool) -> float:
        seek = 0.0 if sequential else self.seek_s
        return seek + nbytes / self.bandwidth_bps

    def _partial_credit(self, nbytes: int, elapsed: float, duration: float) -> int:
        """Bytes that crossed the channel in ``elapsed`` of ``duration``.

        Separated out so the credit rule is auditable (and mutable by
        the chaos suite's deliberate-bug tests): an interrupted transfer
        may never be credited more than time-proportional progress.
        """
        if duration <= 0:
            return 0
        return int(nbytes * elapsed / duration)

    def _io(self, nbytes: int, is_write: bool, sequential: bool):
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._account()
        self._inflight += 1
        self.requests += 1
        grant = self._channel.request()
        try:
            yield grant
        except Interrupted:
            # Killed while queued for the channel: withdraw the request.
            self._channel.cancel(grant)
            self._account()
            self._inflight -= 1
            raise
        duration = self._transfer_time(nbytes, sequential)
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "write" if is_write else "read",
                "disk",
                track=self.name,
                bytes=nbytes,
                sequential=sequential,
            )
        started = self.sim.now
        done = 0
        try:
            yield self.sim.timeout(duration)
            done = nbytes
        except Interrupted:
            # Transfer cut short (node crash): credit the bytes that
            # actually crossed the channel before the kill.
            elapsed = self.sim.now - started
            done = self._partial_credit(nbytes, elapsed, duration)
            auditor = self.sim.auditor
            if auditor is not None:
                auditor.observe_disk_interrupt(
                    self.name, nbytes, done, elapsed, duration
                )
            raise
        finally:
            self._channel.release()
            self._account()
            self._inflight -= 1
            if is_write:
                self.bytes_written += done
            else:
                self.bytes_read += done
            if span is not None:
                tracer.end(span, transferred=done)

    def read(self, nbytes: int, sequential: bool = True) -> Event:
        """Process event for reading ``nbytes`` from this disk."""
        return self.sim.process(self._io(nbytes, is_write=False, sequential=sequential))

    def write(self, nbytes: int, sequential: bool = True) -> Event:
        """Process event for writing ``nbytes`` to this disk."""
        return self.sim.process(self._io(nbytes, is_write=True, sequential=sequential))

    def weighted_io_time(self) -> float:
        """Queue-weighted I/O seconds so far (diskstats field-11 analogue)."""
        self._account()
        return self._weighted_io_time

    def peek_weighted_io_time(self) -> float:
        """:meth:`weighted_io_time` without flushing the lazy integral
        (non-mutating; safe for mid-run telemetry samples)."""
        elapsed = self.sim.now - self._last_change
        return self._weighted_io_time + elapsed * self._inflight

    def busy_time(self) -> float:
        """Seconds the disk channel spent transferring."""
        return self._channel.busy_time()

    def peek_busy_time(self) -> float:
        """:meth:`busy_time` without flushing the channel's integral."""
        return self._channel.peek_busy_time()

    @property
    def inflight(self) -> int:
        """Requests currently in progress (queued or transferring)."""
        return self._inflight

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def bandwidth_used_mbps(self, elapsed: float) -> float:
        """Achieved throughput over a window of ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.total_bytes / elapsed / 1e6
