"""Chaos engineering for the simulator itself.

``repro.chaos`` stress-tests the discrete-event substrate the paper's
numbers rest on: seeded fault campaigns sweep randomized
:class:`~repro.cluster.faults.FaultPlan` scenarios across the
workload x stack matrix while an :class:`InvariantAuditor` checks
conservation laws and structural invariants from inside the
simulation.  Violating plans are minimised by :func:`shrink_plan` and
pinned to replay files for deterministic reproduction
(``repro chaos --replay``).
"""

from repro.chaos.audit import InvariantAuditor, Violation
from repro.chaos.campaign import (
    CampaignResult,
    CaseResult,
    ChaosCase,
    SCENARIOS,
    STACKS,
    WORKLOADS,
    generate_campaign,
    make_plan,
    run_campaign,
    run_case,
    run_plan,
)
from repro.chaos.replay import load_replay, replay_to_dict, save_replay
from repro.chaos.shrink import shrink_plan, violation_signature

__all__ = [
    "CampaignResult",
    "CaseResult",
    "ChaosCase",
    "InvariantAuditor",
    "SCENARIOS",
    "STACKS",
    "Violation",
    "WORKLOADS",
    "generate_campaign",
    "load_replay",
    "make_plan",
    "replay_to_dict",
    "run_campaign",
    "run_case",
    "run_plan",
    "save_replay",
    "shrink_plan",
    "violation_signature",
]
