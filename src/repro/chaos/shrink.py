"""Deterministic fault-plan shrinking.

When a chaos case breaks an invariant, the raw plan usually carries
faults that have nothing to do with the bug.  The shrinker minimises it
the way ``ddmin`` minimises failing inputs, leaning on the simulator's
determinism: re-running the same plan always reproduces the same
violation, so a candidate plan either preserves the violation signature
or it does not — there is no flakiness to average over.

Two passes run to a fixpoint:

1. *Subset minimisation* — greedily drop one fault at a time, keeping
   the drop whenever the first violation's invariant survives.
2. *Attribute simplification* — for each surviving fault, try the
   structurally simpler variant (a crash without its recovery, a
   degradation without its healing edge), again keeping only
   signature-preserving changes.

The result is the smallest reproducing plan this greedy search finds —
small enough to read, and exactly replayable via ``repro chaos
--replay``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Sequence

from repro.chaos.audit import Violation
from repro.cluster.faults import DiskDegrade, FaultPlan, NodeCrash
from repro.errors import FaultPlanError


def violation_signature(violations: Sequence[Violation]) -> Optional[str]:
    """The identity a shrink step must preserve: the first broken
    invariant's name (``None`` for a clean run)."""
    return violations[0].invariant if violations else None


def _simpler_variants(fault):
    """Structurally simpler versions of one fault, simplest first."""
    if isinstance(fault, NodeCrash) and fault.recover_at is not None:
        yield replace(fault, recover_at=None)
    if isinstance(fault, DiskDegrade) and fault.until is not None:
        yield replace(fault, until=None)


def shrink_plan(
    plan: FaultPlan,
    predicate: Callable[[FaultPlan], Optional[str]],
    max_runs: int = 200,
) -> FaultPlan:
    """Minimise ``plan`` while ``predicate`` keeps returning the same
    violation signature.

    ``predicate(candidate)`` must run the candidate on a fresh
    simulation and return its :func:`violation_signature` (``None`` for
    clean).  ``max_runs`` bounds the total predicate invocations so a
    pathological plan cannot stall a campaign; the best plan found so
    far is returned when the budget runs out.
    """
    budget = [max_runs]

    def check(candidate: FaultPlan) -> Optional[str]:
        if budget[0] <= 0:
            return None  # out of budget: treat as not reproducing
        budget[0] -= 1
        return predicate(candidate)

    target = check(plan)
    if target is None:
        return plan  # nothing to shrink (or no budget to prove otherwise)

    faults: List = list(plan.faults)
    # Pass 1: drop faults one at a time until no single drop reproduces.
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for index in range(len(faults)):
            if len(faults) <= 1:
                break
            candidate_faults = faults[:index] + faults[index + 1:]
            candidate = FaultPlan(
                faults=tuple(candidate_faults), seed=plan.seed
            )
            if check(candidate) == target:
                faults = candidate_faults
                changed = True
                break
    # Pass 2: simplify the survivors' attributes.
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for index, fault in enumerate(faults):
            for variant in _simpler_variants(fault):
                candidate_faults = list(faults)
                candidate_faults[index] = variant
                try:
                    candidate = FaultPlan(
                        faults=tuple(candidate_faults), seed=plan.seed
                    )
                except FaultPlanError:
                    continue  # e.g. dropping a recovery created an overlap
                if check(candidate) == target:
                    faults = candidate_faults
                    changed = True
                    break
            if changed:
                break
    return FaultPlan(faults=tuple(faults), seed=plan.seed)
