"""Replay files: serialise a violating chaos case and re-run it.

A replay file is a small JSON document pinning everything a violation
needs to reproduce: the workload, the stack, the scale, and the (ideally
shrunken) fault plan.  Because the simulator is deterministic, loading
the file and re-running it yields the identical violation — or, after a
fix, a clean audit, which is exactly what ``repro chaos --replay``
exits 0 on.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.cluster.faults import (
    DiskDegrade,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
)
from repro.errors import FaultPlanError

#: Bumped if the schema ever changes incompatibly.
FORMAT_VERSION = 1


def fault_to_dict(fault) -> dict:
    if isinstance(fault, NodeCrash):
        return {
            "kind": "crash",
            "node": fault.node,
            "at": fault.at,
            "recover_at": fault.recover_at,
        }
    if isinstance(fault, DiskDegrade):
        return {
            "kind": "degrade",
            "node": fault.node,
            "at": fault.at,
            "factor": fault.factor,
            "until": fault.until,
        }
    if isinstance(fault, NetworkPartition):
        return {
            "kind": "partition",
            "nodes": list(fault.nodes),
            "at": fault.at,
            "until": fault.until,
        }
    raise FaultPlanError(f"unserialisable fault {type(fault).__name__!r}")


def fault_from_dict(entry: dict):
    kind = entry.get("kind")
    if kind == "crash":
        return NodeCrash(
            node=entry["node"], at=entry["at"],
            recover_at=entry.get("recover_at"),
        )
    if kind == "degrade":
        return DiskDegrade(
            node=entry["node"], at=entry["at"], factor=entry["factor"],
            until=entry.get("until"),
        )
    if kind == "partition":
        return NetworkPartition(
            nodes=tuple(entry["nodes"]), at=entry["at"], until=entry["until"],
        )
    raise FaultPlanError(f"unknown fault kind {kind!r} in replay file")


def plan_to_dict(plan: FaultPlan) -> dict:
    return {
        "seed": plan.seed,
        "faults": [fault_to_dict(fault) for fault in plan.faults],
    }


def plan_from_dict(data: dict) -> FaultPlan:
    return FaultPlan(
        faults=tuple(fault_from_dict(entry) for entry in data["faults"]),
        seed=data.get("seed"),
    )


def replay_to_dict(
    workload: str,
    stack: str,
    plan: FaultPlan,
    scale: float,
    scenario: str = "",
    seed: Optional[int] = None,
    violations: Optional[List[dict]] = None,
) -> dict:
    return {
        "version": FORMAT_VERSION,
        "workload": workload,
        "stack": stack,
        "scenario": scenario,
        "seed": seed,
        "scale": scale,
        "plan": plan_to_dict(plan),
        "violations": violations or [],
    }


def save_replay(path: str, data: dict) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_replay(path: str) -> dict:
    """Load a replay file; the ``plan`` key is inflated to a
    :class:`FaultPlan` (which re-validates it on construction)."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        from repro.errors import ReplayFileError

        raise ReplayFileError(
            f"cannot read replay file {path!r}: {error.strerror or error}"
        ) from None
    except json.JSONDecodeError as error:
        from repro.errors import ReplayFileError

        raise ReplayFileError(
            f"replay file {path!r} is not valid JSON: {error}"
        ) from None
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise FaultPlanError(
            f"replay file {path!r} has version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    data["plan"] = plan_from_dict(data["plan"])
    return data
