"""Runtime invariant auditing for the discrete-event substrate.

The paper's system-behaviour results are only trustworthy if the
simulator conserves work under every interleaving of faults.  The
:class:`InvariantAuditor` watches one simulation from the inside —
``events.py`` registers processes and resources with it and reports
every event timestamp, ``disk.py`` reports interrupted transfers, and
the wave scheduler keeps a per-task commit ledger — and checks the
catalogue below at fault boundaries, at job end and after the final
drain.

Invariant catalogue (the ``invariant`` field of each
:class:`Violation`):

- ``task-commit-once`` — every logical task completes exactly once per
  wave: a zero count is lost work, two is double-counted work (e.g. a
  speculative duplicate and its primary both credited).
- ``byte-conservation-disk`` — total disk bytes equal the committed
  task bytes exactly on an interruption-free run, and stay within
  ``[committed, committed + waste-bound]`` under faults (the waste
  bound sums the full demand of every killed or race-losing attempt).
- ``byte-conservation-net`` — the same conservation law over NIC bytes.
- ``cpu-conservation`` — the same law over CPU seconds (with float
  tolerance: CPU time accumulates, it is not counted).
- ``disk-partial-credit`` — an interrupted transfer may never be
  credited more bytes than bandwidth x elapsed time allows (nor a
  negative count, nor more than requested).
- ``resource-leak`` — after the final drain no resource holds a grant
  and no waiter is stranded in any FIFO.
- ``stranded-process`` — after the final drain every process has
  triggered (completed or unwound); anything else leaks simulation
  state into the next run.
- ``clock-monotonic`` — event timestamps never decrease.
- ``telemetry-consistency`` — when a utilization timeline was sampled,
  its closing totals are bit-identical to the live node counters.
- ``metrics-sanity`` — reported :class:`SystemMetrics` are internally
  coherent (ratios within [0, 1], wins never exceed launches, ...).

The auditor *collects* violations rather than raising mid-simulation
(``strict=True`` opts into raising immediately), so a single chaos run
reports every broken invariant at once and the shrinker can compare
violation signatures across candidate plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import InvariantViolation

#: Relative tolerance for float (CPU-second) conservation checks.
_REL_TOL = 1e-9
#: Interrupted transfers may round partial credit up by at most one byte.
_BYTE_SLACK = 1


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to reproduce it."""

    invariant: str
    detail: str
    time: float

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "time": self.time,
        }


@dataclass
class _JobLedger:
    """Byte/record accounting for one ``run_waves`` job."""

    expected_tasks: Dict[Tuple[int, int], Tuple[int, int, float]] = field(
        default_factory=dict
    )  # (wave, task) -> (disk_bytes, net_bytes, cpu_seconds)
    commits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    committed_disk: int = 0
    committed_net: int = 0
    committed_cpu: float = 0.0
    waste_disk: int = 0
    waste_net: int = 0
    waste_cpu: float = 0.0
    interrupted_attempts: int = 0
    start_disk_bytes: int = 0
    start_net_bytes: int = 0
    start_cpu_seconds: float = 0.0


class InvariantAuditor:
    """Watches one :class:`~repro.cluster.events.Simulation` for broken
    invariants.  Attach it at construction (``Simulation(auditor=...)``)
    so every process and resource registers itself."""

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.violations: List[Violation] = []
        self._processes: List[object] = []
        self._resources: List[object] = []
        self._last_time: Optional[float] = None
        self._now = 0.0
        self._ledger: Optional[_JobLedger] = None
        self._cluster = None
        self._wave_open: Optional[int] = None

    # ---- recording -------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    def record(self, invariant: str, detail: str) -> None:
        violation = Violation(invariant=invariant, detail=detail, time=self._now)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(
                f"{invariant}: {detail}",
                violations=self.violations,
                time=self._now,
            )

    # ---- events.py hooks -------------------------------------------------
    def register_process(self, process) -> None:
        self._processes.append(process)

    def register_resource(self, resource) -> None:
        self._resources.append(resource)

    def observe_time(self, time: float) -> None:
        if self._last_time is not None and time < self._last_time:
            self.record(
                "clock-monotonic",
                f"event at t={time} after t={self._last_time}",
            )
        self._last_time = time
        self._now = time

    # ---- disk.py hook ----------------------------------------------------
    def observe_disk_interrupt(
        self,
        disk_name: str,
        nbytes: int,
        credited: int,
        elapsed: float,
        duration: float,
    ) -> None:
        """An in-flight transfer was killed; check the partial credit.

        Credited bytes are bounded by physics: no more than
        bandwidth x elapsed (here expressed as the time fraction of the
        request), never negative, never more than requested.
        """
        allowed = nbytes if duration <= 0 else nbytes * elapsed / duration
        if credited < 0 or credited > min(nbytes, allowed + _BYTE_SLACK):
            self.record(
                "disk-partial-credit",
                f"{disk_name}: credited {credited} of {nbytes} bytes but "
                f"only {elapsed:.3g}s of a {duration:.3g}s transfer elapsed",
            )

    # ---- scheduler hooks -------------------------------------------------
    def begin_job(self, cluster) -> None:
        """Snapshot cluster counters; expected work arrives per wave."""
        self._cluster = cluster
        totals = cluster.direct_totals(peek=True)
        self._ledger = _JobLedger(
            start_disk_bytes=totals.disk_bytes,
            start_net_bytes=totals.net_bytes,
            start_cpu_seconds=totals.cpu_seconds,
        )

    def begin_wave(self, wave_index: int, tasks, instruction_rate: float) -> None:
        if self._ledger is None:
            return
        self._wave_open = wave_index
        for task_index, task in enumerate(tasks):
            self._ledger.expected_tasks[(wave_index, task_index)] = (
                task.read_bytes + task.write_bytes,
                task.net_bytes,
                task.cpu_instructions / instruction_rate,
            )

    def attempt_settled(self, wave_index: int, task_index: int, committed: bool) -> None:
        """One task attempt finished: count it as useful or as waste."""
        ledger = self._ledger
        if ledger is None:
            return
        disk, net, cpu = ledger.expected_tasks.get(
            (wave_index, task_index), (0, 0, 0.0)
        )
        if committed:
            key = (wave_index, task_index)
            ledger.commits[key] = ledger.commits.get(key, 0) + 1
            ledger.committed_disk += disk
            ledger.committed_net += net
            ledger.committed_cpu += cpu
        else:
            ledger.interrupted_attempts += 1
            ledger.waste_disk += disk
            ledger.waste_net += net
            ledger.waste_cpu += cpu

    def end_wave(self, wave_index: int) -> None:
        """Every task in the wave must have committed exactly once."""
        ledger = self._ledger
        if ledger is None:
            return
        self._wave_open = None
        for (wave, task), _ in sorted(ledger.expected_tasks.items()):
            if wave != wave_index:
                continue
            commits = ledger.commits.get((wave, task), 0)
            if commits != 1:
                kind = "lost (never committed)" if commits == 0 else (
                    f"double-counted ({commits} commits)"
                )
                self.record(
                    "task-commit-once",
                    f"wave {wave} task {task} was {kind}",
                )

    def fault_boundary(self, node_index: int, up: bool) -> None:
        """Cheap structural checks at the instant a fault lands/heals."""
        for resource in self._resources:
            if not 0 <= resource.in_use <= resource.capacity:
                self.record(
                    "resource-leak",
                    f"{resource.name}: in_use={resource.in_use} outside "
                    f"[0, {resource.capacity}] at fault boundary "
                    f"(node {node_index} {'up' if up else 'down'})",
                )

    def end_job(self, cluster, metrics=None) -> None:
        """Conservation and consistency checks at ``run_waves`` return."""
        ledger = self._ledger
        if ledger is None:
            return
        totals = cluster.direct_totals(peek=True)
        faulted = ledger.interrupted_attempts > 0
        self._check_conservation(
            "byte-conservation-disk",
            actual=totals.disk_bytes - ledger.start_disk_bytes,
            committed=ledger.committed_disk,
            waste_bound=ledger.waste_disk,
            faulted=faulted,
            slack=0,
        )
        # A transfer credits both the sending and receiving NIC.
        self._check_conservation(
            "byte-conservation-net",
            actual=totals.net_bytes - ledger.start_net_bytes,
            committed=2 * ledger.committed_net if len(cluster) > 1 else 0,
            waste_bound=2 * ledger.waste_net,
            faulted=faulted,
            slack=0,
        )
        cpu_slack = _REL_TOL * max(1.0, ledger.committed_cpu + ledger.waste_cpu)
        self._check_conservation(
            "cpu-conservation",
            actual=totals.cpu_seconds - ledger.start_cpu_seconds,
            committed=ledger.committed_cpu,
            waste_bound=ledger.waste_cpu,
            faulted=faulted,
            slack=cpu_slack,
        )
        if cluster.telemetry is not None:
            timeline_totals = cluster.telemetry.timeline.final_totals(
                [node.name for node in cluster.nodes]
            )
            if timeline_totals != totals:
                self.record(
                    "telemetry-consistency",
                    f"timeline totals {timeline_totals} != live counters "
                    f"{totals}",
                )
        if metrics is not None:
            self._check_metrics(metrics)
        self._ledger = None

    def _check_conservation(
        self,
        invariant: str,
        actual,
        committed,
        waste_bound,
        faulted: bool,
        slack,
    ) -> None:
        if not faulted:
            # No attempt was ever interrupted: committed work is the
            # whole story and the accounting must balance exactly.
            upper = committed + waste_bound + slack
            if not committed - slack <= actual <= upper:
                self.record(
                    invariant,
                    f"fault-free run moved {actual} but tasks committed "
                    f"{committed} (+{waste_bound} lost races)",
                )
            return
        if actual < committed - slack:
            self.record(
                invariant,
                f"moved {actual} < committed {committed}: completed work "
                f"went missing",
            )
        elif actual > committed + waste_bound + slack:
            self.record(
                invariant,
                f"moved {actual} > committed {committed} + waste bound "
                f"{waste_bound}: work was double-counted",
            )

    def _check_metrics(self, metrics) -> None:
        ratios = (
            ("cpu_utilization", metrics.cpu_utilization),
            ("io_wait_ratio", metrics.io_wait_ratio),
            ("wasted_work_ratio", metrics.wasted_work_ratio),
        )
        for name, value in ratios:
            if not 0.0 <= value <= 1.0:
                self.record(
                    "metrics-sanity", f"{name}={value} outside [0, 1]"
                )
        if metrics.elapsed < 0:
            self.record("metrics-sanity", f"elapsed={metrics.elapsed} < 0")
        if metrics.speculative_wins > metrics.speculative_launches:
            self.record(
                "metrics-sanity",
                f"{metrics.speculative_wins} speculative wins from only "
                f"{metrics.speculative_launches} launches",
            )

    # ---- final drain checks ---------------------------------------------
    def check_drained(self, sim, cluster=None, aborted: bool = False) -> None:
        """After the queue drains: no leaked grants, no live processes.

        Call only once the caller has drained the simulation
        (``sim.run()`` past any completion gate) — a mid-run call would
        report in-flight work as leaks.  ``aborted=True`` (the job died
        with :class:`~repro.errors.JobFailedError`) skips the
        process-liveness check: a supervisor that raised the abort
        legitimately never triggers, but grants must still have been
        released on the way out.
        """
        if sim._queue:
            self.record(
                "stranded-process",
                f"check_drained called with {len(sim._queue)} events "
                f"still queued",
            )
            return
        for resource in self._resources:
            if resource.in_use or resource.waiters:
                self.record(
                    "resource-leak",
                    f"{resource.name}: {resource.in_use} grants held, "
                    f"{resource.waiters} waiters stranded after drain",
                )
        if cluster is not None:
            for leak in cluster.leak_report():
                if leak["kind"] != "disk-inflight":
                    continue  # channel leaks already covered above
                self.record(
                    "resource-leak",
                    f"{leak['resource']}: {leak['in_use']} I/O requests "
                    f"still in flight after drain",
                )
        if aborted:
            return
        live = [p for p in self._processes if not p.triggered]
        if live:
            self.record(
                "stranded-process",
                f"{len(live)} of {len(self._processes)} processes never "
                f"completed after drain",
            )

    def raise_if_violated(self) -> None:
        """Raise :class:`~repro.errors.InvariantViolation` on any finding."""
        if self.violations:
            first = self.violations[0]
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s); first: "
                f"{first.invariant}: {first.detail}",
                violations=self.violations,
            )
