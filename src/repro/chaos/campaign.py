"""Seeded chaos campaigns across the workload x stack matrix.

A *campaign* is derived entirely from one integer seed: for every
(workload, stack) cell in the matrix it draws a fault *scenario* — a
crash storm, a rolling disk degradation, a flapping network partition,
or a crash landing during another node's recovery window — and
instantiates it as a concrete, valid :class:`FaultPlan` timed against
that cell's fault-free makespan.  Each case then runs on a fresh
audited simulation and the :class:`InvariantAuditor`'s findings are the
verdict: the *job* may recover or abort (both are legitimate stack
behaviours under fire), but the *simulator* must never break an
invariant.

The same seed always reproduces the same campaign, the same plans and
the same verdicts — which is what lets the shrinker and the
``--replay`` flow bisect a violation offline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.audit import InvariantAuditor, Violation
from repro.cluster.cluster import Cluster
from repro.cluster.events import Simulation
from repro.cluster.faults import (
    DiskDegrade,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
)
from repro.errors import InvariantViolation, JobFailedError
from repro.stacks.scheduler import policy_for
from repro.workloads.kernels import (
    hadoop_grep,
    hadoop_sort,
    hadoop_wordcount,
    mpi_grep,
    mpi_sort,
    mpi_wordcount,
    spark_grep,
    spark_sort,
    spark_wordcount,
)

#: The workload x stack matrix the campaign sweeps (§4.1's algorithms
#: in their Hadoop/Spark/MPI incarnations).
WORKLOADS: Dict[str, Dict[str, Callable]] = {
    "wordcount": {
        "Hadoop": hadoop_wordcount,
        "Spark": spark_wordcount,
        "MPI": mpi_wordcount,
    },
    "grep": {
        "Hadoop": hadoop_grep,
        "Spark": spark_grep,
        "MPI": mpi_grep,
    },
    "sort": {
        "Hadoop": hadoop_sort,
        "Spark": spark_sort,
        "MPI": mpi_sort,
    },
}

STACKS: Tuple[str, ...] = ("Hadoop", "Spark", "MPI")

#: Same convention as ``experiments.fault_resilience``: recovery-policy
#: clocks written for minutes-long jobs are shrunk to
#: ``baseline_makespan / POLICY_TIME_UNIT``.
POLICY_TIME_UNIT = 100.0

N_NODES = 5

#: Maximum supervisor generators a drain loop may unwind; each
#: ``JobFailedError`` raised during the drain kills exactly one, so any
#: real job hits the fixpoint long before this.
_MAX_DRAIN_ROUNDS = 1000


# --------------------------------------------------------------------------
# Scenario generators: rng -> tuple of faults (always a valid plan)
# --------------------------------------------------------------------------

def _crash_storm(rng: random.Random, n_nodes: int, horizon: float):
    """Two distinct nodes die mid-job; each may or may not come back."""
    faults = []
    for node in rng.sample(range(n_nodes), 2):
        at = rng.uniform(0.15, 0.6) * horizon
        recover_at = (
            at + rng.uniform(0.3, 0.8) * horizon
            if rng.random() < 0.5 else None
        )
        faults.append(NodeCrash(node=node, at=at, recover_at=recover_at))
    return tuple(faults)


def _rolling_degrade(rng: random.Random, n_nodes: int, horizon: float):
    """Three disks slow down in a staggered wave of straggler windows."""
    faults = []
    start = 0.1 * horizon
    for node in rng.sample(range(n_nodes), 3):
        at = start + rng.uniform(0.0, 0.15) * horizon
        faults.append(
            DiskDegrade(
                node=node,
                at=at,
                factor=rng.uniform(3.0, 6.0),
                until=at + rng.uniform(0.3, 0.6) * horizon,
            )
        )
        start = at + 0.2 * horizon
    return tuple(faults)


def _partition_flap(rng: random.Random, n_nodes: int, horizon: float):
    """One node's link flaps: partitioned, healed, partitioned again."""
    node = rng.randrange(n_nodes)
    faults = []
    at = rng.uniform(0.15, 0.3) * horizon
    for _ in range(2):
        until = at + rng.uniform(0.1, 0.25) * horizon
        faults.append(NetworkPartition(nodes=(node,), at=at, until=until))
        at = until + rng.uniform(0.1, 0.3) * horizon
    return tuple(faults)


def _crash_during_recovery(rng: random.Random, n_nodes: int, horizon: float):
    """A second node dies while the first is still down-but-recovering."""
    first, second = rng.sample(range(n_nodes), 2)
    t_down = rng.uniform(0.15, 0.35) * horizon
    t_up = t_down + rng.uniform(0.5, 0.9) * horizon
    t_second = rng.uniform(t_down + 0.05 * horizon, t_up - 0.05 * horizon)
    return (
        NodeCrash(node=first, at=t_down, recover_at=t_up),
        NodeCrash(
            node=second,
            at=t_second,
            recover_at=t_second + rng.uniform(0.2, 0.4) * horizon,
        ),
    )


SCENARIOS: Dict[str, Callable] = {
    "crash-storm": _crash_storm,
    "rolling-degrade": _rolling_degrade,
    "partition-flap": _partition_flap,
    "crash-during-recovery": _crash_during_recovery,
}


def make_plan(
    scenario: str, seed_key: str, n_nodes: int, horizon: float
) -> FaultPlan:
    """Instantiate ``scenario`` as a concrete plan, seeded by ``seed_key``."""
    if scenario not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}"
        )
    rng = random.Random(seed_key)
    return FaultPlan(faults=SCENARIOS[scenario](rng, n_nodes, horizon))


# --------------------------------------------------------------------------
# Cases and results
# --------------------------------------------------------------------------

@dataclass
class ChaosCase:
    """One cell of one campaign: a workload, a stack, a scenario."""

    workload: str
    stack: str
    scenario: str
    seed: int
    plan: Optional[FaultPlan] = None  # filled once the horizon is known

    @property
    def seed_key(self) -> str:
        """The deterministic rng key for this case's plan."""
        return f"{self.seed}:{self.workload}:{self.stack}:{self.scenario}"


@dataclass
class CaseResult:
    """Verdict of one audited case run."""

    case: ChaosCase
    outcome: str  # "recovered" | "aborted" | "stranded"
    violations: List[Violation] = field(default_factory=list)
    failure: str = ""
    elapsed: float = 0.0
    tasks_retried: int = 0
    faults_injected: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "workload": self.case.workload,
            "stack": self.case.stack,
            "scenario": self.case.scenario,
            "seed": self.case.seed,
            "outcome": self.outcome,
            "failure": self.failure,
            "elapsed": self.elapsed,
            "tasks_retried": self.tasks_retried,
            "faults_injected": self.faults_injected,
            "violations": [v.to_dict() for v in self.violations],
        }


@dataclass
class CampaignResult:
    """All case verdicts for one campaign seed."""

    seed: int
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(case.clean for case in self.cases)

    @property
    def dirty_cases(self) -> List[CaseResult]:
        return [case for case in self.cases if not case.clean]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "clean": self.clean,
            "cases": [case.to_dict() for case in self.cases],
        }


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------

#: Fault-free makespans are deterministic per (workload, stack, scale),
#: so one baseline run serves every campaign in a process.
_BASELINE_CACHE: Dict[Tuple[str, str, float], float] = {}


def baseline_elapsed(workload: str, stack: str, scale: float) -> float:
    """Fault-free makespan for one matrix cell (memoised)."""
    key = (workload, stack, scale)
    if key not in _BASELINE_CACHE:
        runner = WORKLOADS[workload][stack]
        result = runner(scale, cluster=Cluster(n_nodes=N_NODES))
        # Memoising a deterministic value: the cached elapsed is a pure
        # function of the key, so cache hits can't change any outcome.
        _BASELINE_CACHE[key] = result.system.elapsed  # repro: allow[PUR001]
    return _BASELINE_CACHE[key]


def run_plan(
    workload: str,
    stack: str,
    plan: FaultPlan,
    scale: float = 0.3,
    case: Optional[ChaosCase] = None,
) -> CaseResult:
    """Run one (workload, stack) cell under ``plan`` on a fresh audited
    simulation; the shared executor behind cases, the shrinker's
    predicate and ``--replay``.
    """
    if case is None:
        case = ChaosCase(
            workload=workload, stack=stack, scenario="explicit", seed=-1,
            plan=plan,
        )
    runner = WORKLOADS[workload][stack]
    baseline = baseline_elapsed(workload, stack, scale)
    policy = policy_for(stack).scaled(baseline / POLICY_TIME_UNIT)
    auditor = InvariantAuditor()
    sim = Simulation(auditor=auditor)
    cluster = Cluster(sim=sim, n_nodes=N_NODES)
    outcome, failure = "recovered", ""
    elapsed = retried = injected = 0
    try:
        result = runner(
            scale, cluster=cluster, faults=plan, recovery=policy
        )
        elapsed = result.system.elapsed
        retried = result.system.tasks_retried
        injected = result.system.faults_injected
    except JobFailedError as exc:
        # A legitimate stack response (MPI aborts on any node loss, deep
        # stacks abort after max_attempts) — not a simulator bug.
        outcome, failure = "aborted", str(exc)
    except InvariantViolation as exc:
        # The scheduler itself detected stranded work mid-run.
        outcome, failure = "stranded", str(exc)
        auditor.record("wave-drain", str(exc))
    # Drain residual fault timers, detectors and backoff sleeps so the
    # leak checks see a quiescent simulation.  Each JobFailedError
    # raised during the drain unwinds exactly one more supervisor.
    aborted = outcome == "aborted"
    for _ in range(_MAX_DRAIN_ROUNDS):
        try:
            sim.run()
            break
        except JobFailedError:
            aborted = True
        except InvariantViolation as exc:
            auditor.record("wave-drain", str(exc))
    auditor.check_drained(sim, cluster, aborted=aborted)
    return CaseResult(
        case=case,
        outcome=outcome,
        violations=list(auditor.violations),
        failure=failure,
        elapsed=elapsed,
        tasks_retried=retried,
        faults_injected=injected,
    )


def run_case(case: ChaosCase, scale: float = 0.3) -> CaseResult:
    """Instantiate the case's plan against its baseline horizon and run."""
    horizon = baseline_elapsed(case.workload, case.stack, scale)
    case.plan = make_plan(case.scenario, case.seed_key, N_NODES, horizon)
    return run_plan(case.workload, case.stack, case.plan, scale, case=case)


def generate_campaign(
    seed: int,
    workloads: Optional[Sequence[str]] = None,
    stacks: Optional[Sequence[str]] = None,
) -> List[ChaosCase]:
    """Derive one campaign's cases from ``seed``.

    Every (workload, stack) cell gets one scenario, chosen by an rng
    keyed to the campaign seed and the cell — so consecutive seeds
    rotate scenarios through the matrix and 20 seeds cover every
    scenario on every cell many times over.
    """
    names = sorted(SCENARIOS)
    cases = []
    for workload in workloads if workloads is not None else sorted(WORKLOADS):
        if workload not in WORKLOADS:
            raise KeyError(
                f"unknown workload {workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        for stack in stacks if stacks is not None else STACKS:
            if stack not in STACKS:
                raise KeyError(
                    f"unknown stack {stack!r}; choose from {STACKS}"
                )
            rng = random.Random(f"campaign:{seed}:{workload}:{stack}")
            cases.append(
                ChaosCase(
                    workload=workload,
                    stack=stack,
                    scenario=rng.choice(names),
                    seed=seed,
                )
            )
    return cases


def run_campaign(
    seed: int,
    workloads: Optional[Sequence[str]] = None,
    stacks: Optional[Sequence[str]] = None,
    scale: float = 0.3,
) -> CampaignResult:
    """Run every case of the campaign derived from ``seed``."""
    result = CampaignResult(seed=seed)
    for case in generate_campaign(seed, workloads, stacks):
        result.cases.append(run_case(case, scale=scale))
    return result
