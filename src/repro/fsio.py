"""``repro.fsio``: the durable-I/O layer under the run-registry storage tier.

Every byte the substrate persists — registry records, sweep journals
and snapshots, progress streams, span files, merged traces — now flows
through this module, for two reasons:

- **One durability contract.**  There are exactly three write shapes
  (DESIGN §5i): the *atomic JSON write* (tmp file → flush → fsync →
  ``os.replace`` → parent-dir fsync), the *durable append*
  (:class:`JournalWriter`: write line → flush → fsync before the caller
  proceeds), and the *best-effort append* (:class:`BestEffortWriter`:
  observability streams that may drop data but must *count* every drop
  instead of swallowing it).  Hand-rolled fsync choreography in the
  writers is gone; so are the silent ``except OSError: pass`` holes.

- **Injectable failure.**  Every syscall-shaped operation goes through
  an :class:`IOBackend`.  The default :data:`REAL_IO` talks to the
  real filesystem; :class:`FaultyIO` deterministically simulates torn
  writes, short writes, ``ENOSPC``/``EIO``, lying fsyncs and whole-
  process crash at any operation boundary (ALICE/CrashMonkey-style
  crash points).  The crash-consistency campaign
  (:mod:`repro.analysis.crashsim`) enumerates those boundaries and
  proves — not hopes — that ``repro fsck`` plus ``--resume`` recovers
  every one of them with bit-identical metrics.

Crash semantics simulated by :class:`FaultyIO` (and therefore the
states ``repro fsck`` must handle):

- data written but not fsynced is lost, wholly or as a *torn* seeded
  prefix, when the crash hits;
- an fsync that *lied* (``fsync_lies=True``) leaves its data just as
  volatile as unsynced data;
- an ``os.replace`` not followed by a parent-directory fsync may be
  rolled back by the crash — the old file reappears and the new
  content survives only as the leaked ``*.tmp`` source file;
- creates/removes/mkdirs are treated as immediately durable (a
  deliberate simplification; the journal/record protocols never depend
  on their ordering).
"""

from __future__ import annotations

import errno as errno_mod
import json
import os
import random
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class SimulatedCrash(BaseException):
    """The injected process death of a :class:`FaultyIO` crash point.

    Deliberately a ``BaseException``: a crash must tear through every
    ``except Exception``/``except OSError`` in the storage tier exactly
    the way SIGKILL would, so no writer can "handle" its own death.
    """

    def __init__(self, op_index: int, op: str, path: str):
        self.op_index = op_index
        self.op = op
        self.path = path
        super().__init__(f"simulated crash at op {op_index} ({op} {path})")


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------

class RealIO:
    """The production backend: thin pass-through to the OS.

    Methods mirror the syscall boundaries :class:`FaultyIO` can fault,
    so a writer coded against this interface is automatically
    crash-testable.
    """

    def open(self, path: str, mode: str):
        return open(path, mode, encoding="utf-8")

    def open_exclusive(self, path: str):
        """Create-or-fail open (O_EXCL), for advisory lock files."""
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        return os.fdopen(fd, "w", encoding="utf-8")

    def write(self, handle, data: str) -> None:
        handle.write(data)

    def flush(self, handle) -> None:
        handle.flush()

    def fsync(self, handle) -> None:
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def fsync_path(self, path: str) -> None:
        """fsync a path (directories: rename/create durability)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def makedirs(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def remove(self, path: str) -> None:
        os.remove(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> List[str]:
        return sorted(os.listdir(path))


#: The default backend used whenever a writer is given ``io=None``.
REAL_IO = RealIO()


def _io(io) -> RealIO:
    return io if io is not None else REAL_IO


# ---------------------------------------------------------------------------
# The three write shapes
# ---------------------------------------------------------------------------

def fsync_dir(path: str, io=None) -> None:
    """Best-effort directory fsync (rename/create durability).

    Advisory by design: some filesystems refuse directory fsync, and a
    refused fsync only widens the crash window — it never corrupts —
    so this is the one sanctioned swallow in the durable path.
    """
    backend = _io(io)
    try:
        backend.fsync_path(path)
    except OSError:  # repro: allow[ERR002] — advisory; see docstring
        pass


def write_json_atomic(path: str, payload: object, *, indent: int = 2,
                      io=None) -> None:
    """Crash-safe JSON write: tmp file + flush + fsync + ``os.replace``.

    A reader never observes a half-written file: either the old content
    (or nothing) or the complete new content exists at ``path``.  If the
    write *fails* (``ENOSPC``, ``EIO``, a serialization error) the tmp
    file is removed before the error propagates, so failed writes do
    not leak ``*.tmp`` litter — only a genuine crash can, and
    ``repro fsck`` sweeps those up.
    """
    backend = _io(io)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        handle = backend.open(tmp, "w")
        try:
            backend.write(
                handle,
                json.dumps(payload, indent=indent, sort_keys=True) + "\n",
            )
            backend.flush(handle)
            backend.fsync(handle)
        finally:
            backend.close(handle)
        backend.replace(tmp, path)
    except Exception:
        # Failed atomic writes must not leak their tmp file.  (A
        # SimulatedCrash is a BaseException and deliberately skips this
        # cleanup: a dead process cannot tidy up after itself.)
        try:
            backend.remove(tmp)
        except OSError:  # repro: allow[ERR002] — original error propagates
            pass  # an unremovable tmp is litter for fsck, not a new error
        raise
    fsync_dir(os.path.dirname(path) or ".", io=backend)


class JournalWriter:
    """Durable append-only JSONL writer: flush + fsync per record.

    The write protocol for data the substrate *must not lose*: a
    record handed to :meth:`append` is on disk (modulo lying hardware)
    before the call returns.  I/O errors propagate — a journal that
    cannot persist must fail loudly, never silently.
    """

    def __init__(self, path: str, io=None):
        self.path = path
        self.io = _io(io)
        self._handle = None

    def append(self, record: dict) -> None:
        """Durably append one record (opens the journal lazily)."""
        if self._handle is None:
            self.io.makedirs(os.path.dirname(self.path) or ".")
            needs_newline = self._torn_tail()
            self._handle = self.io.open(self.path, "a")
            if needs_newline:
                # A previous process died (or hit ENOSPC) mid-append:
                # isolate its torn fragment on its own line so it can
                # never concatenate with — and corrupt — our record.
                self.io.write(self._handle, "\n")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self.io.write(self._handle, line + "\n")
        self.io.flush(self._handle)
        self.io.fsync(self._handle)

    def _torn_tail(self) -> bool:
        """True when the journal exists and lacks a trailing newline."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:  # repro: allow[ERR002] — read-path probe of the tail
            return False  # absent (the common case) or unreadable

    def close(self) -> None:
        if self._handle is not None:
            self.io.close(self._handle)
            self._handle = None


@dataclass
class WriterStats:
    """Drop accounting for one best-effort writer."""

    writes: int = 0
    writer_errors: int = 0
    dropped_events: int = 0
    #: The first error observed, kept for diagnostics.
    first_error: str = ""


class BestEffortWriter:
    """Append-only JSONL writer for observability streams.

    Progress events and spans must never fail a sweep, but PR 8 made
    them fail *silently*: a dead disk dropped data without a trace.
    This writer degrades the same way — after the first I/O error it
    stops touching the disk — but every dropped record is counted in
    :attr:`stats`, the counters ride into the run record's ``exec.*``
    telemetry, and the first failure prints a one-time stderr warning.
    """

    def __init__(self, path: str, io=None, *, label: str = "writer"):
        self.path = path
        self.io = _io(io)
        self.label = label
        self.stats = WriterStats()
        self._handle = None
        self._failed = False

    def append(self, record: dict) -> bool:
        """Write one record; returns False (and counts) on a drop."""
        if self._failed:
            self.stats.dropped_events += 1
            return False
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError) as error:
            self._note_failure(error)
            return False
        try:
            if self._handle is None:
                self.io.makedirs(os.path.dirname(self.path) or ".")
                self._handle = self.io.open(self.path, "a")
            self.io.write(self._handle, line + "\n")
            self.io.flush(self._handle)
        except OSError as error:
            self._note_failure(error)
            return False
        self.stats.writes += 1
        return True

    def _note_failure(self, error: BaseException) -> None:
        """Latch the failure, count the drop, warn exactly once."""
        self._failed = True
        self.stats.writer_errors += 1
        self.stats.dropped_events += 1
        self.stats.first_error = f"{type(error).__name__}: {error}"
        print(
            f"warning: {self.label} can no longer write {self.path} "
            f"({self.stats.first_error}); further events will be "
            f"dropped and counted",
            file=sys.stderr,
        )

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.io.close(self._handle)
            except OSError as error:
                self.stats.writer_errors += 1
                self.stats.first_error = (
                    self.stats.first_error
                    or f"{type(error).__name__}: {error}"
                )
            self._handle = None

    def telemetry(self, prefix: str) -> Dict[str, float]:
        """The counters as ``<prefix>_*`` telemetry entries."""
        return {
            f"{prefix}_writes": float(self.stats.writes),
            f"{prefix}_writer_errors": float(self.stats.writer_errors),
            f"{prefix}_dropped_events": float(self.stats.dropped_events),
        }


def quarantine_corrupt(path: str, io=None) -> str:
    """Move an unreadable artifact aside to ``<file>.corrupt`` and warn.

    Returns the quarantine path (a numeric suffix disambiguates repeat
    offenders).  Never raises: if the rename itself fails the original
    file is left in place and only the warning is printed.
    """
    backend = _io(io)
    target, n = f"{path}.corrupt", 1
    while backend.exists(target):
        target = f"{path}.corrupt.{n}"
        n += 1
    try:
        backend.replace(path, target)
    except OSError as error:
        print(f"warning: could not quarantine {path}: {error}",
              file=sys.stderr)
        target = path
    print(
        f"warning: {path} is truncated or corrupt; quarantined to {target}",
        file=sys.stderr,
    )
    return target


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

@dataclass
class _FileState:
    """Durability bookkeeping for one path under :class:`FaultyIO`."""

    synced_len: int = 0
    current_len: int = 0

    @property
    def unsynced(self) -> int:
        return self.current_len - self.synced_len


@dataclass
class _PendingReplace:
    """An ``os.replace`` whose parent directory was not fsynced yet."""

    src: str
    dst: str
    old_content: Optional[bytes]  # dst's bytes before the replace


class _TrackedFile:
    """A real file handle plus the path identity FaultyIO tracks."""

    def __init__(self, path: str, handle):
        self.path = path
        self.handle = handle
        self.closed = False


class FaultyIO:
    """Deterministic fault-injecting backend over the real filesystem.

    Construction arguments:

    - ``seed`` — drives every random choice (torn-write lengths,
      rename rollback) so a campaign run is exactly reproducible;
    - ``crash_at`` — the operation index at which the simulated
      process dies: the op applies a *partial* effect (a torn seeded
      prefix for writes, nothing for fsync/replace) and raises
      :class:`SimulatedCrash`; every later operation raises too,
      because dead processes do not write;
    - ``errors`` — ``{op_index: errno}`` injected I/O failures: a
      write performs a seeded *short write* before raising, everything
      else raises cleanly;
    - ``fsync_lies`` — fsync returns success without making data
      durable, the classic volatile-write-cache lie.

    After a crash, :meth:`apply_crash` reshapes the on-disk state into
    one the dead process could have left behind: unsynced (or
    lied-about) tails are torn at a seeded byte, unpersisted renames
    are rolled back — leaking the ``*.tmp`` source — and open handles
    are closed.  ``repro fsck`` and ``--resume`` then face exactly what
    a real crash would have produced.
    """

    def __init__(self, *, seed: int = 0, crash_at: Optional[int] = None,
                 errors: Optional[Dict[int, int]] = None,
                 fsync_lies: bool = False):
        self.seed = seed
        self.crash_at = crash_at
        self.errors = dict(errors or {})
        self.fsync_lies = fsync_lies
        self.rng = random.Random(seed)
        self.ops = 0
        self.crashed = False
        self.log: List[Tuple[int, str, str]] = []
        self._files: Dict[str, _FileState] = {}
        self._open: List[_TrackedFile] = []
        self._pending_replaces: List[_PendingReplace] = []

    # ---- the operation gate ----------------------------------------------
    def _op(self, kind: str, path: str) -> int:
        """Count one syscall boundary; inject the configured fault.

        Writes handle their own errno injection (a failing ``write``
        performs a seeded *short write* before raising — the partial
        data that reached the disk); every other op fails cleanly.
        """
        if self.crashed:
            raise SimulatedCrash(self.ops, kind, path)
        index = self.ops
        self.ops += 1
        self.log.append((index, kind, path))
        injected = self.errors.get(index)
        if injected is not None and kind != "write":
            raise OSError(injected, os.strerror(injected), path)
        return index

    def _maybe_crash(self, index: int, kind: str, path: str) -> None:
        if self.crash_at is not None and index == self.crash_at:
            self.crashed = True
            raise SimulatedCrash(index, kind, path)

    def _state(self, path: str) -> _FileState:
        return self._files.setdefault(path, _FileState())

    # ---- backend interface -----------------------------------------------
    def open(self, path: str, mode: str):
        index = self._op("open", path)
        self._maybe_crash(index, "open", path)
        handle = open(path, mode, encoding="utf-8")
        size = os.path.getsize(path)
        state = self._state(path)
        # Bytes present before this process opened the file are durable;
        # only what *we* write is at risk.
        state.synced_len = size
        state.current_len = size
        tracked = _TrackedFile(path, handle)
        self._open.append(tracked)
        return tracked

    def open_exclusive(self, path: str):
        index = self._op("open-excl", path)
        self._maybe_crash(index, "open-excl", path)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        handle = os.fdopen(fd, "w", encoding="utf-8")
        state = self._state(path)
        state.synced_len = 0
        state.current_len = 0
        tracked = _TrackedFile(path, handle)
        self._open.append(tracked)
        return tracked

    def write(self, tracked, data: str) -> None:
        index = self._op("write", tracked.path)
        payload = data.encode("utf-8")
        injected = self.errors.get(index)
        crashing = self.crash_at is not None and index == self.crash_at
        if crashing or injected is not None:
            # Short/torn write: a seeded prefix reaches the disk before
            # the failure — crash (death) or errno (ENOSPC mid-buffer).
            torn = payload[: self.rng.randint(0, len(payload))]
            if torn:
                tracked.handle.write(torn.decode("utf-8", "ignore"))
                tracked.handle.flush()
                self._state(tracked.path).current_len += len(torn)
            if crashing:
                self.crashed = True
                raise SimulatedCrash(index, "write", tracked.path)
            raise OSError(injected, os.strerror(injected), tracked.path)
        tracked.handle.write(data)
        self._state(tracked.path).current_len += len(payload)

    def flush(self, tracked) -> None:
        index = self._op("flush", tracked.path)
        self._maybe_crash(index, "flush", tracked.path)
        tracked.handle.flush()

    def fsync(self, tracked) -> None:
        index = self._op("fsync", tracked.path)
        self._maybe_crash(index, "fsync", tracked.path)
        tracked.handle.flush()
        if not self.fsync_lies:
            os.fsync(tracked.handle.fileno())
            state = self._state(tracked.path)
            state.synced_len = state.current_len

    def close(self, tracked) -> None:
        # Close never raises and never crashes: a dead process's handles
        # are closed by the kernel, and close() itself syncs nothing.
        if tracked.closed:
            return
        self.log.append((self.ops, "close", tracked.path))
        try:
            tracked.handle.close()
        except OSError:  # repro: allow[ERR002] — kernel-side close is free
            pass
        tracked.closed = True

    def replace(self, src: str, dst: str) -> None:
        index = self._op("replace", f"{src} -> {dst}")
        self._maybe_crash(index, "replace", f"{src} -> {dst}")
        old_content: Optional[bytes] = None
        if os.path.exists(dst):
            with open(dst, "rb") as handle:
                old_content = handle.read()
        os.replace(src, dst)
        # The bytes travel with the rename: the tmp file's durability
        # state now belongs to the destination path.
        if src in self._files:
            self._files[dst] = self._files.pop(src)
        self._pending_replaces.append(
            _PendingReplace(src=src, dst=dst, old_content=old_content)
        )

    def fsync_path(self, path: str) -> None:
        index = self._op("fsync-dir", path)
        self._maybe_crash(index, "fsync-dir", path)
        if self.fsync_lies:
            return
        self._pending_replaces = [
            pending for pending in self._pending_replaces
            if os.path.dirname(pending.dst) != path
        ]

    def makedirs(self, path: str) -> None:
        index = self._op("makedirs", path)
        self._maybe_crash(index, "makedirs", path)
        os.makedirs(path, exist_ok=True)

    def remove(self, path: str) -> None:
        index = self._op("remove", path)
        self._maybe_crash(index, "remove", path)
        os.remove(path)
        self._files.pop(path, None)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def listdir(self, path: str) -> List[str]:
        return sorted(os.listdir(path))

    # ---- crash-state application -----------------------------------------
    def apply_crash(self) -> List[str]:
        """Reshape the disk into a state the dead process left behind.

        Returns a human-readable list of the loss events applied, for
        campaign artifacts.  Order matters: torn tails first (the tmp
        file's bytes may be torn), then rename rollback (which may
        resurrect the torn tmp as leaked litter).
        """
        events: List[str] = []
        for tracked in self._open:
            if not tracked.closed:
                try:
                    tracked.handle.close()
                except OSError:  # repro: allow[ERR002] — died with process
                    pass
                tracked.closed = True
        self._open = []
        for path in sorted(self._files):
            state = self._files[path]
            if state.unsynced <= 0 or not os.path.exists(path):
                continue
            keep = state.synced_len + self.rng.randint(0, state.unsynced)
            if keep >= os.path.getsize(path):
                continue
            with open(path, "rb+") as handle:
                handle.truncate(keep)
            events.append(
                f"torn {path}: kept {keep} of {state.current_len} bytes"
            )
        for pending in reversed(self._pending_replaces):
            if self.rng.random() < 0.5:
                continue  # the rename made it to disk after all
            if not os.path.exists(pending.dst):
                continue
            with open(pending.dst, "rb") as handle:
                new_content = handle.read()
            with open(pending.src, "wb") as handle:
                handle.write(new_content)
            if pending.old_content is None:
                os.remove(pending.dst)
                events.append(
                    f"rolled back replace: {pending.dst} gone, "
                    f"{pending.src} leaked"
                )
            else:
                with open(pending.dst, "wb") as handle:
                    handle.write(pending.old_content)
                events.append(
                    f"rolled back replace: {pending.dst} restored, "
                    f"{pending.src} leaked"
                )
        self._pending_replaces = []
        self._files = {}
        return events

    # ---- campaign helpers -------------------------------------------------
    @property
    def op_count(self) -> int:
        return self.ops

    def op_log_tail(self, upto: Optional[int] = None,
                    window: int = 20) -> List[str]:
        """The last ``window`` logged ops before ``upto``, rendered."""
        entries = self.log
        if upto is not None:
            entries = [e for e in entries if e[0] <= upto]
        return [
            f"op {index}: {kind} {path}"
            for index, kind, path in entries[-window:]
        ]


#: Errno values the campaign injects by default (disk full, I/O error).
DEFAULT_FAULT_ERRNOS = (errno_mod.ENOSPC, errno_mod.EIO)
