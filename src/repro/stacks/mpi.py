"""A message-passing runtime (the MPICH2 stand-in).

Rank programs are Python generators that *yield* collective requests
(allreduce, alltoall, gather, broadcast); the runtime advances every
rank to its next collective, combines the contributions, and resumes
the ranks with their results — a bulk-synchronous-parallel execution
that is deadlock-free by construction and exactly fits the paper's six
MPI data-analysis workloads (Bayes, K-means, PageRank, Grep, WordCount,
Sort).

The thin-stack traits (:data:`repro.stacks.base.MPI_TRAITS`) give these
programs their PARSEC-like instruction footprints (§5.5, Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.errors import SimulationError
from repro.stacks.base import (
    MPI_TRAITS,
    KernelTraits,
    Meter,
    SoftwareStack,
    StackTraits,
    WorkloadResult,
    build_profile,
)
from repro.stacks.scheduler import (
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)


@dataclass
class _Collective:
    """A pending collective operation request from one rank."""

    op: str  # "allreduce" | "alltoall" | "gather" | "broadcast"
    payload: object
    combine: Optional[Callable] = None


class MpiCommunicator:
    """Per-rank handle used inside rank programs to request collectives."""

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size

    def allreduce(self, value, combine: Callable) -> _Collective:
        """All ranks contribute ``value``; everyone receives the fold."""
        return _Collective("allreduce", value, combine)

    def alltoall(self, buckets: List[object]) -> _Collective:
        """Rank *i* sends ``buckets[j]`` to rank *j*; receives a list."""
        if len(buckets) != self.size:
            raise ValueError("alltoall needs one bucket per rank")
        return _Collective("alltoall", buckets)

    def gather(self, value) -> _Collective:
        """Everyone receives the list of all ranks' values."""
        return _Collective("gather", value)

    def broadcast(self, value, root: int = 0) -> _Collective:
        """Everyone receives rank ``root``'s value."""
        return _Collective("broadcast", (value, root))


def _payload_bytes(payload: object) -> int:
    if isinstance(payload, (str, bytes)):
        return len(payload)
    if isinstance(payload, dict):
        return sum(
            _payload_bytes(k) + _payload_bytes(v) for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(p) for p in payload)
    return 8


class MpiRuntime(SoftwareStack):
    """Runs rank generators in lockstep supersteps."""

    def __init__(self, n_ranks: int = 6, traits: StackTraits = MPI_TRAITS):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        super().__init__(traits)
        self.n_ranks = n_ranks

    def run(
        self,
        name: str,
        program: Callable,
        partitions: Sequence[Sequence[object]],
        kernel: KernelTraits,
        state_bytes: int = 2 * 1024 * 1024,
        state_fraction: float = 0.03,
        stream_fraction: float = 0.01,
        cluster: Optional[Cluster] = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
    ) -> WorkloadResult:
        """Execute ``program(rank, comm, data, meter)`` on every rank.

        ``partitions`` supplies each rank's local data (padded with empty
        lists when shorter than the rank count).  Returns per-rank return
        values as the functional output.

        MPI has no task-level fault tolerance: under a ``faults`` plan
        that kills a node, the default ``recovery`` policy aborts the
        whole job with :class:`~repro.stacks.scheduler.JobFailedError` —
        the contrast with Hadoop/Spark the paper's stack comparison
        turns on.
        """
        padded: List[list] = [
            list(partitions[r]) if r < len(partitions) else []
            for r in range(self.n_ranks)
        ]
        meters = [Meter() for _ in range(self.n_ranks)]
        for rank, data in enumerate(padded):
            nbytes = sum(_payload_bytes(r) for r in data)
            meters[rank].record_in(nbytes, records=len(data))

        generators = []
        for rank in range(self.n_ranks):
            comm = MpiCommunicator(rank, self.n_ranks)
            generators.append(program(rank, comm, padded[rank], meters[rank]))

        results: List[object] = [None] * self.n_ranks
        inbox: List[object] = [None] * self.n_ranks
        live = set(range(self.n_ranks))
        supersteps = 0
        net_bytes_total = 0

        while live:
            pending: dict = {}
            for rank in sorted(live):
                try:
                    request = generators[rank].send(inbox[rank])
                except StopIteration as stop:
                    results[rank] = stop.value
                    live.discard(rank)
                    continue
                if not isinstance(request, _Collective):
                    raise TypeError(
                        f"rank {rank} yielded {request!r}; expected a collective"
                    )
                pending[rank] = request
            if not pending:
                break
            ops = {request.op for request in pending.values()}
            if len(ops) != 1 or set(pending) != live:
                raise SimulationError(
                    "collective mismatch: all live ranks must join the same "
                    f"collective (got {sorted(ops)} from {sorted(pending)})"
                )
            op = ops.pop()
            supersteps += 1
            net_bytes_total += self._execute_collective(
                op, pending, inbox, meters
            )

        merged = Meter()
        for rank_meter in meters:
            merged.merge(rank_meter)

        data_model = self.data_footprint(
            merged,
            kernel,
            state_bytes=state_bytes,
            state_fraction=state_fraction,
            stream_fraction=stream_fraction,
        )
        profile = build_profile(
            name=name,
            meter=merged,
            stack=self.traits,
            kernel=kernel,
            data=data_model,
            threads=self.n_ranks,
        )

        system = None
        elapsed = None
        if cluster is not None:
            system, elapsed = self._simulate(
                merged, supersteps, net_bytes_total, cluster,
                faults=faults, recovery=recovery,
                tracer=tracer, name=name,
            )

        return WorkloadResult(
            name=name,
            output=results,
            profile=profile,
            meter=merged,
            system=system,
            elapsed=elapsed,
        )

    def _execute_collective(
        self,
        op: str,
        pending: dict,
        inbox: List[object],
        meters: List[Meter],
    ) -> int:
        """Perform one collective; returns bytes moved over the network."""
        total_bytes = 0
        for rank, request in pending.items():
            nbytes = _payload_bytes(request.payload)
            total_bytes += nbytes
            meters[rank].record_shuffle(nbytes)
        if op == "allreduce":
            combine = next(iter(pending.values())).combine
            ranks = sorted(pending)
            accumulator = pending[ranks[0]].payload
            for rank in ranks[1:]:
                accumulator = combine(accumulator, pending[rank].payload)
            for rank in ranks:
                inbox[rank] = accumulator
        elif op == "alltoall":
            ranks = sorted(pending)
            for receiver in ranks:
                inbox[receiver] = [
                    pending[sender].payload[receiver] for sender in ranks
                ]
        elif op == "gather":
            ranks = sorted(pending)
            everything = [pending[rank].payload for rank in ranks]
            for rank in ranks:
                inbox[rank] = everything
        elif op == "broadcast":
            ranks = sorted(pending)
            roots = {request.payload[1] for request in pending.values()}
            if len(roots) != 1:
                raise SimulationError(
                    "broadcast root mismatch", roots=sorted(roots)
                )
            root = roots.pop()
            value = pending[root].payload[0]
            for rank in ranks:
                inbox[rank] = value
        else:  # pragma: no cover
            raise ValueError(f"unknown collective {op!r}")
        return total_bytes

    def _simulate(
        self,
        meter: Meter,
        supersteps: int,
        net_bytes: int,
        cluster: Cluster,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
        name: str = "mpi-job",
    ) -> tuple:
        rate = self.traits.instruction_rate
        start = cluster.sim.now
        total_instr = (
            meter.kernel_mix().total + self.traits.framework_instructions(meter)
        ) * self.traits.des_cpu_factor
        n_waves = max(1, supersteps)
        per_rank_instr = total_instr / self.n_ranks / n_waves
        per_rank_net = net_bytes // max(1, self.n_ranks * n_waves)
        read_bytes = meter.bytes_in // self.n_ranks
        waves = []
        for step in range(n_waves):
            waves.append(
                [
                    TaskDescriptor(
                        cpu_instructions=per_rank_instr,
                        read_bytes=read_bytes if step == 0 else 0,
                        write_bytes=meter.bytes_out // self.n_ranks
                        if step == n_waves - 1
                        else 0,
                        net_bytes=per_rank_net,
                        preferred_node=rank,
                    )
                    for rank in range(self.n_ranks)
                ]
            )
        if recovery is None:
            recovery = policy_for("MPI")
        metrics = run_waves(
            cluster, waves, rate, faults=faults, policy=recovery,
            tracer=tracer, job_name=name,
            wave_names=[f"superstep{i}" for i in range(n_waves)],
        )
        return metrics, cluster.sim.now - start
