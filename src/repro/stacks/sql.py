"""SQL engines: Hive (on MapReduce), Shark (on Spark), Impala (native MPP).

A :class:`Query` is a small logical plan of relational operators — the
paper's interactive-analysis workloads use exactly the five basic
relational-algebra operators (select/filter, project, order-by, set
difference, join) plus grouping/aggregation for the TPC-DS queries.

All three engines execute the same plans over the same row dicts and
produce identical results; what differs is the *stack model*: Hive and
Shark interpret operators on JVM engines with per-row dispatch and
shuffles for wide operators, Impala scans natively with vectorised
batches — which is why the paper's Impala workloads show thin-stack
micro-architecture behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.stacks.base import (
    HIVE_TRAITS,
    IMPALA_TRAITS,
    SHARK_TRAITS,
    KernelTraits,
    Meter,
    SoftwareStack,
    StackTraits,
    WorkloadResult,
    build_profile,
)
from repro.stacks.scheduler import (
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)

Rows = List[dict]


@dataclass(frozen=True)
class Operator:
    """One step of a logical plan."""

    kind: str
    args: tuple = ()

    #: Operators that force a data exchange (shuffle) on MapReduce/RDD
    #: engines.
    WIDE = ("order_by", "group_by", "difference", "join")


@dataclass
class Query:
    """A logical plan: a scan followed by operators.

    Build fluently::

        Query("web_sales").filter(pred).join("item", "ws_item_sk",
        "i_item_sk").group_by(("i_brand",), {"sum_price": (...)})
    """

    table: str
    operators: List[Operator] = field(default_factory=list)

    def filter(self, predicate: Callable[[dict], bool]) -> "Query":
        """SELECT ... WHERE predicate (the 'filter' basic operator)."""
        self.operators.append(Operator("filter", (predicate,)))
        return self

    def project(self, columns: Sequence[str]) -> "Query":
        """Keep only ``columns`` (the 'project' basic operator)."""
        self.operators.append(Operator("project", (tuple(columns),)))
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Total order on ``column`` (the 'sort' operator)."""
        self.operators.append(Operator("order_by", (column, descending)))
        return self

    def difference(self, other_table: str, key: str) -> "Query":
        """Rows whose ``key`` does not appear in ``other_table``."""
        self.operators.append(Operator("difference", (other_table, key)))
        return self

    def join(self, right_table: str, left_key: str, right_key: str) -> "Query":
        """Hash equi-join against ``right_table``."""
        self.operators.append(Operator("join", (right_table, left_key, right_key)))
        return self

    def group_by(
        self, keys: Sequence[str], aggregates: Dict[str, tuple]
    ) -> "Query":
        """Group on ``keys``; ``aggregates`` maps output column to
        ``(function_name, input_column)`` with functions sum/count/avg."""
        self.operators.append(Operator("group_by", (tuple(keys), dict(aggregates))))
        return self

    def limit(self, n: int) -> "Query":
        self.operators.append(Operator("limit", (n,)))
        return self


def _row_bytes(row: dict) -> int:
    return sum(
        (len(v) if isinstance(v, str) else 8) + len(k) for k, v in row.items()
    )


class SqlEngine(SoftwareStack):
    """Shared executor; subclasses fix the stack traits and kernel."""

    #: Per-row batch size for vectorised execution (Impala overrides).
    batch_rows = 1

    #: Which stack's recovery policy governs lost tasks — the engine a
    #: query compiles to (Hive -> MapReduce retries, Shark -> Spark
    #: lineage, Impala -> query abort).  See :func:`policy_for`.
    recovery_stack = ""

    def __init__(self, traits: StackTraits):
        super().__init__(traits)

    def execute(
        self,
        name: str,
        query: Query,
        tables: Dict[str, Rows],
        kernel: Optional[KernelTraits] = None,
        state_fraction: float = 0.035,
        cluster: Optional[Cluster] = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
    ) -> WorkloadResult:
        """Run ``query`` against ``tables``; returns rows + profile."""
        if query.table not in tables:
            raise KeyError(f"unknown table {query.table!r}")
        meter = Meter()
        kernel = kernel or KernelTraits(
            code_kb=28.0, ilp=2.3, data_dependent_fraction=0.55,
            loop_fraction=0.35, pattern_fraction=0.10, taken_prob=0.04,
        )

        rows = list(tables[query.table])
        in_bytes = sum(_row_bytes(r) for r in rows)
        meter.record_in(in_bytes, records=len(rows))

        shuffle_events: List[int] = []
        state_bytes = 1536 * 1024
        for op in query.operators:
            rows, op_state = self._apply(op, rows, tables, meter, shuffle_events)
            state_bytes = max(state_bytes, op_state)

        out_bytes = sum(_row_bytes(r) for r in rows)
        meter.record_out(out_bytes, records=len(rows))

        data = self.data_footprint(
            meter,
            kernel,
            state_bytes=state_bytes,
            state_fraction=state_fraction,
            stream_fraction=0.012,
        )
        profile = build_profile(
            name=name,
            meter=meter,
            stack=self.traits,
            kernel=kernel,
            data=data,
            threads=6,
        )
        system = None
        elapsed = None
        if cluster is not None:
            system, elapsed = self._simulate(
                meter, shuffle_events, cluster,
                faults=faults, recovery=recovery,
                tracer=tracer, name=name,
            )
        return WorkloadResult(
            name=name,
            output=rows,
            profile=profile,
            meter=meter,
            system=system,
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------
    def _apply(
        self,
        op: Operator,
        rows: Rows,
        tables: Dict[str, Rows],
        meter: Meter,
        shuffle_events: List[int],
    ) -> tuple:
        """Execute one operator; returns (rows, resident_state_bytes)."""
        n = len(rows)
        state_bytes = 0
        if op.kind == "filter":
            predicate = op.args[0]
            meter.ops(compare=n, array_access=n, int_op=n)
            rows = [row for row in rows if predicate(row)]
        elif op.kind == "project":
            columns = op.args[0]
            meter.ops(array_access=n * len(columns), field_store=n * len(columns))
            rows = [{c: row[c] for c in columns} for row in rows]
        elif op.kind == "order_by":
            column, descending = op.args
            if n > 1:
                cost = n * math.log2(n)
                meter.ops(compare=cost, array_access=cost)
            rows = sorted(rows, key=lambda r: r[column], reverse=descending)
            self._shuffle(rows, meter, shuffle_events)
            state_bytes = sum(_row_bytes(r) for r in rows)
        elif op.kind == "difference":
            other_table, key = op.args
            other = tables[other_table]
            meter.ops(hash=len(other) + n, compare=n)
            exclude = {row[key] for row in other}
            rows = [row for row in rows if row[key] not in exclude]
            self._shuffle(rows, meter, shuffle_events)
            state_bytes = 64 * len(exclude)
        elif op.kind == "join":
            right_table, left_key, right_key = op.args
            right = tables[right_table]
            meter.ops(hash=len(right) + n, compare=n, array_access=n)
            index: Dict[object, dict] = {}
            for row in right:
                index[row[right_key]] = row
            joined = []
            for row in rows:
                match = index.get(row[left_key])
                if match is not None:
                    merged = dict(match)
                    merged.update(row)
                    joined.append(merged)
            rows = joined
            self._shuffle(rows, meter, shuffle_events)
            state_bytes = sum(_row_bytes(r) for r in right)
        elif op.kind == "group_by":
            keys, aggregates = op.args
            meter.ops(hash=n, compare=n, int_op=n * max(1, len(aggregates)))
            groups: Dict[tuple, dict] = {}
            counts: Dict[tuple, int] = {}
            for row in rows:
                group_key = tuple(row[k] for k in keys)
                bucket = groups.setdefault(group_key, {})
                counts[group_key] = counts.get(group_key, 0) + 1
                for out_col, (fn, in_col) in aggregates.items():
                    if fn == "count":
                        bucket[out_col] = bucket.get(out_col, 0) + 1
                    elif fn in ("sum", "avg"):
                        bucket[out_col] = bucket.get(out_col, 0.0) + row[in_col]
                        meter.ops(fp_op=1)
                    else:
                        raise ValueError(f"unknown aggregate {fn!r}")
            output = []
            for group_key, bucket in groups.items():
                row = {k: v for k, v in zip(keys, group_key)}
                for out_col, (fn, _in_col) in aggregates.items():
                    value = bucket[out_col]
                    if fn == "avg":
                        value /= counts[group_key]
                    row[out_col] = value
                output.append(row)
            rows = output
            self._shuffle(rows, meter, shuffle_events)
            state_bytes = 128 * len(groups)
        elif op.kind == "limit":
            rows = rows[: op.args[0]]
        else:  # pragma: no cover
            raise ValueError(f"unknown operator {op.kind!r}")
        return rows, state_bytes

    def _shuffle(self, rows: Rows, meter: Meter, shuffle_events: List[int]) -> None:
        """Wide operators exchange data on Hive/Shark; Impala streams
        between plan fragments with far less serialisation."""
        nbytes = sum(_row_bytes(r) for r in rows)
        meter.record_shuffle(nbytes, records=len(rows))
        shuffle_events.append(nbytes)

    def _simulate(
        self,
        meter: Meter,
        shuffle_events: List[int],
        cluster: Cluster,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
        name: str = "query",
    ) -> tuple:
        rate = self.traits.instruction_rate
        start = cluster.sim.now
        total_instr = (
            meter.kernel_mix().total + self.traits.framework_instructions(meter)
        ) * self.traits.des_cpu_factor
        n_waves = 1 + len(shuffle_events)
        # One task per core: the paper deploys with matching scale, so
        # every node runs cores-many workers sharing one disk.
        n_tasks = len(cluster) * cluster.nodes[0].spec.cores
        instr_per_task = total_instr / n_waves / n_tasks
        waves = []
        for wave_index in range(n_waves):
            shuffle = shuffle_events[wave_index - 1] if wave_index > 0 else 0
            waves.append(
                [
                    TaskDescriptor(
                        cpu_instructions=instr_per_task,
                        read_bytes=meter.bytes_in // n_tasks
                        if wave_index == 0
                        else 0,
                        write_bytes=(
                            (shuffle + (meter.bytes_out if wave_index == n_waves - 1 else 0))
                            * (3 if self.traits.shuffle_is_streaming else 1)
                        )
                        // n_tasks,
                        net_bytes=shuffle // n_tasks,
                        random_writes=not self.traits.shuffle_is_streaming,
                        preferred_node=t,
                    )
                    for t in range(n_tasks)
                ]
            )
        if recovery is None:
            recovery = policy_for(self.recovery_stack)
        wave_names = ["scan"] + [
            f"exchange{i}" for i in range(len(shuffle_events))
        ]
        metrics = run_waves(
            cluster, waves, rate, faults=faults, policy=recovery,
            tracer=tracer, job_name=name, wave_names=wave_names,
        )
        return metrics, cluster.sim.now - start


class HiveEngine(SqlEngine):
    """Hive 0.9: SQL compiled to MapReduce jobs on the JVM."""

    recovery_stack = "Hive"

    def __init__(self):
        super().__init__(HIVE_TRAITS)


class SharkEngine(SqlEngine):
    """Shark: SQL compiled to Spark RDD operations."""

    recovery_stack = "Shark"

    def __init__(self):
        super().__init__(SHARK_TRAITS)


class ImpalaEngine(SqlEngine):
    """Impala: a native C++ MPP engine with vectorised scans."""

    batch_rows = 1024
    recovery_stack = "Impala"

    def __init__(self):
        super().__init__(IMPALA_TRAITS)
