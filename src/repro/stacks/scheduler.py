"""Task scheduling onto the discrete-event cluster.

Every stack engine reduces its execution to a set of
:class:`TaskDescriptor` waves (map wave then reduce wave, stages, BSP
supersteps, request batches); this module places those tasks onto
cluster nodes and runs the event simulation, producing the §3.2.1
system-behaviour metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.cluster import Cluster, SystemMetrics


@dataclass(frozen=True)
class TaskDescriptor:
    """Resource demands of one task.

    Attributes:
        cpu_instructions: Dynamic instructions the task retires.
        read_bytes: Bytes read from the local disk.
        write_bytes: Bytes written to the local disk.
        net_bytes: Bytes exchanged with other nodes (shuffle traffic).
        random_writes: Whether writes are small random files (Spark 1.x
            shuffle) rather than sequential spills.
        preferred_node: Data-local placement hint (None = round-robin).
    """

    cpu_instructions: float
    read_bytes: int = 0
    write_bytes: int = 0
    net_bytes: int = 0
    random_writes: bool = False
    preferred_node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cpu_instructions < 0:
            raise ValueError("cpu_instructions must be non-negative")
        for name in ("read_bytes", "write_bytes", "net_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


def run_waves(
    cluster: Cluster,
    waves: List[List[TaskDescriptor]],
    instruction_rate: float,
    io_chunk_bytes: int = 64 * 1024 * 1024,
) -> SystemMetrics:
    """Execute task waves with a barrier between waves.

    Tasks interleave I/O and compute in ``io_chunk_bytes`` chunks, which
    is how MapReduce-style engines overlap them.  Returns the cluster's
    system metrics at completion.
    """
    if instruction_rate <= 0:
        raise ValueError("instruction_rate must be positive")
    sim = cluster.sim
    n_nodes = len(cluster)

    def task_process(task: TaskDescriptor, node_index: int):
        node = cluster.node(node_index)
        peer = cluster.node((node_index + 1) % n_nodes)
        total_io = task.read_bytes + task.write_bytes
        cpu_seconds = task.cpu_instructions / instruction_rate
        n_chunks = max(1, (total_io + io_chunk_bytes - 1) // io_chunk_bytes)
        cpu_per_chunk = cpu_seconds / n_chunks
        read_per_chunk = task.read_bytes // n_chunks
        write_per_chunk = task.write_bytes // n_chunks
        for _ in range(n_chunks):
            if read_per_chunk:
                yield node.blocking_read(read_per_chunk)
            if cpu_per_chunk > 0:
                yield node.compute(cpu_per_chunk)
            if write_per_chunk:
                yield node.blocking_write(
                    write_per_chunk, sequential=not task.random_writes
                )
        if task.net_bytes and n_nodes > 1:
            yield cluster.network.transfer(node.name, peer.name, task.net_bytes)

    next_node = 0
    for wave in waves:
        processes = []
        for task in wave:
            if task.preferred_node is not None:
                node_index = task.preferred_node % n_nodes
            else:
                node_index = next_node
                next_node = (next_node + 1) % n_nodes
            processes.append(sim.process(task_process(task, node_index)))
        if processes:
            gate = sim.all_of(processes)
            sim.run()  # drain this wave before starting the next
            assert gate.triggered
    return cluster.metrics()
