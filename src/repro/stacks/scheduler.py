"""Fault-tolerant task scheduling onto the discrete-event cluster.

Every stack engine reduces its execution to a set of
:class:`TaskDescriptor` waves (map wave then reduce wave, stages, BSP
supersteps, request batches); this module places those tasks onto
cluster nodes and runs the event simulation, producing the §3.2.1
system-behaviour metrics.

On top of the placement loop sits the fault-tolerance machinery the
paper's deep-software-stack result (§4) rests on: per-task attempt
tracking, heartbeat-lagged failure detection, retry with capped
exponential backoff onto surviving nodes, and speculative re-execution
of stragglers.  Each stack reacts with its own
:class:`RecoveryPolicy` — Hadoop and Spark re-execute lost tasks while
MPI aborts the whole job on any node loss, exactly the asymmetry the
paper's Hadoop-vs-MPI comparison highlights.

With no fault plan (or an empty one) the scheduler takes a pass-through
path that is event-for-event identical to plain wave execution, so the
characterization baseline is never perturbed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import median
from typing import List, Optional

from repro.cluster.cluster import Cluster, SystemMetrics
from repro.cluster.events import Event, Interrupted, Process
from repro.cluster.faults import FaultInjector, FaultPlan
from repro.errors import InvariantViolation, JobFailedError

__all__ = [
    "JobFailedError",  # re-homed to repro.errors; re-exported for callers
    "TaskDescriptor",
    "RecoveryPolicy",
    "policy_for",
    "run_waves",
]


@dataclass(frozen=True)
class TaskDescriptor:
    """Resource demands of one task.

    Attributes:
        cpu_instructions: Dynamic instructions the task retires.
        read_bytes: Bytes read from the local disk.
        write_bytes: Bytes written to the local disk.
        net_bytes: Bytes exchanged with other nodes (shuffle traffic).
        random_writes: Whether writes are small random files (Spark 1.x
            shuffle) rather than sequential spills.
        preferred_node: Data-local placement hint (None = round-robin).
    """

    cpu_instructions: float
    read_bytes: int = 0
    write_bytes: int = 0
    net_bytes: int = 0
    random_writes: bool = False
    preferred_node: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cpu_instructions < 0:
            raise ValueError("cpu_instructions must be non-negative")
        for name in ("read_bytes", "write_bytes", "net_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a software stack reacts to task and node failure.

    Attributes:
        max_attempts: Attempts per task before the job fails (Hadoop's
            ``mapred.map.max.attempts``, Spark's ``task.maxFailures``).
        heartbeat_interval: Cadence of the speculation monitor's scan.
        heartbeat_timeout: Failure-detection latency — the scheduler
            only learns a node died this long after it stopped
            heartbeating, so retries launch no earlier.
        retry_backoff / backoff_factor / max_backoff: Capped exponential
            delay added on each successive retry of the same task.
        speculation: Launch a duplicate of a straggling task once it
            exceeds ``slowdown_threshold`` x the wave's median runtime;
            the first finisher wins and the loser is killed.
        abort_on_node_loss: Fail the whole job the instant any node is
            lost (the MPI/Impala behaviour: no task-level recovery).
    """

    max_attempts: int = 4
    heartbeat_interval: float = 3.0
    heartbeat_timeout: float = 30.0
    retry_backoff: float = 1.0
    backoff_factor: float = 2.0
    max_backoff: float = 60.0
    speculation: bool = False
    slowdown_threshold: float = 1.5
    abort_on_node_loss: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout < 0:
            raise ValueError("heartbeat parameters must be positive")
        if self.slowdown_threshold <= 1.0:
            raise ValueError("slowdown_threshold must exceed 1")

    def scaled(self, time_unit: float) -> "RecoveryPolicy":
        """A copy with every time constant multiplied by ``time_unit``.

        The defaults suit jobs lasting minutes; scaled-down simulations
        (makespans of milliseconds) shrink the detector and backoff
        clocks proportionally so recovery dynamics stay in proportion
        to the job, the way real deployments tune their timeouts.
        """
        if time_unit <= 0:
            raise ValueError("time_unit must be positive")
        return replace(
            self,
            heartbeat_interval=self.heartbeat_interval * time_unit,
            heartbeat_timeout=self.heartbeat_timeout * time_unit,
            retry_backoff=self.retry_backoff * time_unit,
            max_backoff=self.max_backoff * time_unit,
        )


#: Task re-execution with speculative duplicates: the JobTracker model.
HADOOP_POLICY = RecoveryPolicy(
    max_attempts=4,
    heartbeat_interval=3.0,
    heartbeat_timeout=30.0,
    retry_backoff=1.0,
    speculation=True,
)
#: Lineage-based re-execution; faster detection, same task-level retry.
SPARK_POLICY = RecoveryPolicy(
    max_attempts=4,
    heartbeat_interval=1.0,
    heartbeat_timeout=10.0,
    retry_backoff=0.5,
    speculation=True,
)
#: No fault tolerance in the runtime: any rank loss kills the job.
MPI_POLICY = RecoveryPolicy(max_attempts=1, abort_on_node_loss=True)
#: Impala cancels the query when an executor disappears.
IMPALA_POLICY = RecoveryPolicy(max_attempts=1, abort_on_node_loss=True)
#: Region reassignment: quick redetection, a few retries, no speculation.
HBASE_POLICY = RecoveryPolicy(
    max_attempts=3,
    heartbeat_interval=1.0,
    heartbeat_timeout=5.0,
    retry_backoff=0.2,
)

_STACK_POLICIES = {
    "Hadoop": HADOOP_POLICY,
    "Spark": SPARK_POLICY,
    "MPI": MPI_POLICY,
    "Hive": HADOOP_POLICY,  # rides Hadoop's JobTracker recovery
    "Shark": SPARK_POLICY,  # rides Spark's lineage recovery
    "Impala": IMPALA_POLICY,
    "HBase": HBASE_POLICY,
}


def policy_for(stack_name: str) -> RecoveryPolicy:
    """The recovery policy a named stack ships with."""
    return _STACK_POLICIES.get(stack_name, RecoveryPolicy())


@dataclass
class _TaskState:
    """Book-keeping for one logical task across its attempts."""

    index: int
    task: TaskDescriptor
    node: int
    wave: int = 0
    done: bool = False
    attempts: int = 0
    first_launch: float = 0.0
    runtime: Optional[float] = None
    speculated: bool = False
    supervisor: Optional[Process] = None
    primary: Optional[Process] = None
    speculative: Optional[Process] = None
    span: Optional[object] = None  # the task's tracer span, if tracing


@dataclass
class _RecoveryStats:
    tasks_retried: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    wasted_seconds: float = 0.0
    useful_seconds: float = 0.0

    @property
    def wasted_work_ratio(self) -> float:
        total = self.wasted_seconds + self.useful_seconds
        return self.wasted_seconds / total if total > 0 else 0.0


class _WaveScheduler:
    """Runs task waves with per-task supervision under one policy."""

    def __init__(
        self,
        cluster: Cluster,
        instruction_rate: float,
        io_chunk_bytes: int,
        faults: Optional[FaultPlan],
        policy: RecoveryPolicy,
        tracer=None,
        job_name: str = "job",
        wave_names: Optional[List[str]] = None,
        auditor=None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.n_nodes = len(cluster)
        self.instruction_rate = instruction_rate
        self.io_chunk_bytes = io_chunk_bytes
        self.policy = policy
        self.stats = _RecoveryStats()
        self.detected_down: set = set()
        self.tracer = tracer
        # Like the tracer, the auditor defaults to the simulation's own
        # so an audited Simulation audits every job run on it.
        self.auditor = auditor if auditor is not None else self.sim.auditor
        self.job_name = job_name
        self.wave_names = wave_names
        self.telemetry = None
        self._wave_span = None
        if tracer is not None:
            # run_waves may get a tracer the Simulation was not built
            # with; publish it so node/disk instrumentation sees it and
            # bind its clock (both idempotent).
            self.sim.tracer = tracer
            tracer.bind_clock(lambda: self.sim.now)
            self.telemetry = cluster.attach_telemetry(tracer)
        self.injector: Optional[FaultInjector] = None
        if faults is not None and not faults.is_empty:
            self.injector = FaultInjector(cluster, faults)
            self.injector.on_down(self._on_node_down)
            self.injector.on_up(self._on_node_up)
            self.injector.install()
        self._next_node = 0

    # ---- failure detection ----------------------------------------------
    def _on_node_down(self, node_index: int, cause: str) -> None:
        if self.auditor is not None:
            self.auditor.fault_boundary(node_index, up=False)
        if self.tracer is not None:
            self.tracer.instant(
                "node down",
                "fault",
                track=self.cluster.node(node_index).name,
                cause=cause,
            )
        if self.policy.abort_on_node_loss:
            raise JobFailedError(
                f"{cause}: the runtime aborts the whole job on node loss"
            )

        def detect():
            # Heartbeats stop at the fault; the scheduler declares the
            # node dead one timeout later.
            yield self.sim.timeout(self.policy.heartbeat_timeout)
            if self.injector is not None and self.injector.is_down(node_index):
                self.detected_down.add(node_index)
                if self.tracer is not None:
                    self.tracer.instant(
                        "failure detected",
                        "fault",
                        node=self.cluster.node(node_index).name,
                        cause=cause,
                    )

        self.sim.process(detect())

    def _on_node_up(self, node_index: int) -> None:
        if self.auditor is not None:
            self.auditor.fault_boundary(node_index, up=True)
        # A rejoining tracker re-registers immediately.
        self.detected_down.discard(node_index)
        if self.tracer is not None:
            self.tracer.instant(
                "node up", "fault", track=self.cluster.node(node_index).name
            )

    # ---- placement -------------------------------------------------------
    def _initial_node(self, task: TaskDescriptor) -> int:
        if task.preferred_node is not None:
            node_index = task.preferred_node % self.n_nodes
        else:
            node_index = self._next_node
            self._next_node = (self._next_node + 1) % self.n_nodes
        return self._alive_node_from(node_index)

    def _alive_node_from(self, node_index: int, exclude: int = -1) -> int:
        """First node at or after ``node_index`` believed alive."""
        for offset in range(self.n_nodes):
            candidate = (node_index + offset) % self.n_nodes
            if candidate == exclude:
                continue
            if candidate not in self.detected_down:
                return candidate
        raise JobFailedError("no surviving nodes to schedule on")

    # ---- the task body (identical to plain wave execution) ---------------
    @staticmethod
    def _chunk_sizes(nbytes: int, n_chunks: int) -> tuple:
        """Per-chunk bytes and the remainder that rides the final chunk.

        Integer division would silently drop up to n_chunks-1 bytes per
        task (and *all* I/O when bytes < n_chunks); the remainder rides
        the final chunk so bandwidth metrics account for every byte.
        Kept as its own method so the chaos suite's mutation tests can
        re-break it and prove the byte-conservation audit catches it.
        """
        return divmod(nbytes, n_chunks)

    def _attempt_body(self, task: TaskDescriptor, node_index: int):
        node = self.cluster.node(node_index)
        peer = self.cluster.node((node_index + 1) % self.n_nodes)
        total_io = task.read_bytes + task.write_bytes
        cpu_seconds = task.cpu_instructions / self.instruction_rate
        n_chunks = max(1, (total_io + self.io_chunk_bytes - 1) // self.io_chunk_bytes)
        cpu_per_chunk = cpu_seconds / n_chunks
        read_per_chunk, read_remainder = self._chunk_sizes(task.read_bytes, n_chunks)
        write_per_chunk, write_remainder = self._chunk_sizes(task.write_bytes, n_chunks)
        for chunk in range(n_chunks):
            last = chunk == n_chunks - 1
            nread = read_per_chunk + (read_remainder if last else 0)
            if nread:
                yield node.blocking_read(nread)
            if cpu_per_chunk > 0:
                yield node.compute(cpu_per_chunk)
            nwrite = write_per_chunk + (write_remainder if last else 0)
            if nwrite:
                yield node.blocking_write(
                    nwrite, sequential=not task.random_writes
                )
        if task.net_bytes and self.n_nodes > 1:
            yield self.cluster.network.transfer(
                node.name, peer.name, task.net_bytes
            )

    def _launch(self, state: _TaskState, node_index: int) -> Process:
        process = self.sim.process(self._attempt_body(state.task, node_index))
        if self.injector is not None:
            self.injector.register_attempt(node_index, process)
        return process

    def _finish_attempt(self, node_index: int, process: Process) -> None:
        if self.injector is not None:
            self.injector.unregister_attempt(node_index, process)

    def _settle(self, state: _TaskState, committed: bool) -> None:
        """Report one finished attempt to the invariant auditor."""
        if self.auditor is not None:
            self.auditor.attempt_settled(state.wave, state.index, committed)

    # ---- supervision -----------------------------------------------------
    def _supervise(self, state: _TaskState):
        """One generator per task: launch, await, retry, give up."""
        policy = self.policy
        tracer = self.tracer
        backoff = policy.retry_backoff
        node_index = state.node
        state.first_launch = self.sim.now
        if tracer is not None:
            state.span = tracer.begin(
                f"task{state.index}", "task", parent=self._wave_span
            )
        try:
            yield from self._supervise_attempts(state, node_index, backoff)
        finally:
            if tracer is not None:
                tracer.end(
                    state.span,
                    attempts=state.attempts,
                    done=state.done,
                    speculated=state.speculated,
                )

    def _supervise_attempts(
        self, state: _TaskState, node_index: int, backoff: float
    ):
        policy = self.policy
        tracer = self.tracer
        while True:
            state.attempts += 1
            started = self.sim.now
            attempt_span = None
            if tracer is not None:
                attempt_span = tracer.begin(
                    f"task{state.index}.attempt{state.attempts}",
                    "attempt",
                    track=self.cluster.node(node_index).name,
                    parent=state.span,
                    node=self.cluster.node(node_index).name,
                    attempt=state.attempts,
                )
            process = self._launch(state, node_index)
            state.primary = process
            outcome = yield process
            self._finish_attempt(node_index, process)
            elapsed = self.sim.now - started
            if not isinstance(outcome, Interrupted):
                if state.done:
                    # A speculative duplicate won at this very instant
                    # and saw this attempt as already triggered, so its
                    # kill was a no-op.  Without this guard both
                    # attempts would commit — the double-count the
                    # invariant auditor exists to catch.
                    if attempt_span is not None:
                        tracer.end(attempt_span, outcome="lost race")
                    self.stats.wasted_seconds += elapsed
                    self._settle(state, committed=False)
                    return
                # Clean finish: this attempt wins.
                if attempt_span is not None:
                    tracer.end(attempt_span, outcome="ok")
                self.stats.useful_seconds += elapsed
                self._settle(state, committed=True)
                self._mark_done(state)
                return
            if attempt_span is not None:
                tracer.end(
                    attempt_span,
                    outcome="interrupted",
                    cause=str(outcome.cause),
                )
            if state.done:
                # A speculative duplicate beat this attempt; its watcher
                # already recorded the win.  The primary's time is waste.
                self.stats.wasted_seconds += elapsed
                self._settle(state, committed=False)
                return
            # Genuine failure.
            self.stats.wasted_seconds += elapsed
            self._settle(state, committed=False)
            if policy.abort_on_node_loss:
                raise JobFailedError(
                    f"task {state.index} lost ({outcome.cause}); "
                    f"the runtime aborts the whole job on node loss"
                )
            if state.attempts >= policy.max_attempts:
                raise JobFailedError(
                    f"task {state.index} failed {state.attempts} attempts "
                    f"(last cause: {outcome.cause})"
                )
            self.stats.tasks_retried += 1
            if tracer is not None:
                tracer.instant(
                    "retry scheduled",
                    "fault",
                    task=state.index,
                    attempt=state.attempts,
                    cause=str(outcome.cause),
                )
            # The scheduler only learns of the loss after a heartbeat
            # timeout, then waits out the capped exponential backoff.
            try:
                yield self.sim.timeout(policy.heartbeat_timeout + backoff)
            except Interrupted:
                pass  # woken early: a speculative duplicate finished
            if state.done:
                return
            backoff = min(backoff * policy.backoff_factor, policy.max_backoff)
            node_index = self._alive_node_from(node_index + 1)

    def _mark_done(self, state: _TaskState) -> None:
        state.done = True
        if state.runtime is None:
            state.runtime = self.sim.now - state.first_launch
        loser = state.speculative
        if loser is not None and not loser.triggered:
            loser.interrupt("speculative duplicate lost the race")

    # ---- speculative execution -------------------------------------------
    def _speculative_attempt(self, state: _TaskState, node_index: int):
        self.stats.speculative_launches += 1
        tracer = self.tracer
        attempt_span = None
        if tracer is not None:
            node_name = self.cluster.node(node_index).name
            attempt_span = tracer.begin(
                f"task{state.index}.speculative",
                "attempt",
                track=node_name,
                parent=state.span,
                node=node_name,
                speculative=True,
            )
            tracer.instant(
                "speculation launched",
                "fault",
                task=state.index,
                node=node_name,
            )
        started = self.sim.now
        process = self._launch(state, node_index)
        state.speculative = process
        outcome = yield process
        self._finish_attempt(node_index, process)
        elapsed = self.sim.now - started
        if isinstance(outcome, Interrupted) or state.done:
            # Lost the race (or its node died): duplicated work is waste.
            if attempt_span is not None:
                tracer.end(attempt_span, outcome="lost race")
            self.stats.wasted_seconds += elapsed
            self._settle(state, committed=False)
            return
        if attempt_span is not None:
            tracer.end(attempt_span, outcome="won race")
        self.stats.useful_seconds += elapsed
        self.stats.speculative_wins += 1
        self._settle(state, committed=True)
        state.runtime = self.sim.now - state.first_launch
        state.done = True
        primary = state.primary
        if primary is not None and not primary.triggered:
            primary.interrupt("speculative duplicate won the race")
        supervisor = state.supervisor
        if supervisor is not None and not supervisor.triggered:
            # Wake a supervisor sleeping out a retry backoff.
            supervisor.interrupt("task completed speculatively")

    def _speculation_monitor(self, states: List[_TaskState], gate: Event):
        policy = self.policy
        while not gate.triggered:
            yield self.sim.timeout(policy.heartbeat_interval)
            runtimes = [
                s.runtime for s in states if s.done and s.runtime is not None
            ]
            if 2 * len(runtimes) < len(states):
                continue  # speculate only once the wave's median is known
            threshold = policy.slowdown_threshold * median(runtimes)
            for state in states:
                if state.done or state.speculated:
                    continue
                if self.sim.now - state.first_launch < threshold:
                    continue
                try:
                    node_index = self._alive_node_from(
                        state.node + 1, exclude=state.node
                    )
                except JobFailedError:
                    continue  # nowhere to duplicate onto
                state.speculated = True
                self.sim.process(self._speculative_attempt(state, node_index))

    # ---- telemetry sampling ----------------------------------------------
    def _sampler(self):
        """Periodic utilization sampling at the tracer's cadence."""
        interval = self.tracer.sample_interval
        try:
            while True:
                yield self.sim.timeout(interval)
                self.telemetry.sample()
        except Interrupted:
            return

    def _wave_name(self, wave_index: int) -> str:
        if self.wave_names is not None and wave_index < len(self.wave_names):
            return self.wave_names[wave_index]
        return f"wave{wave_index}"

    # ---- wave loop -------------------------------------------------------
    def run(self, waves: List[List[TaskDescriptor]]) -> SystemMetrics:
        tracer = self.tracer
        job_span = None
        sampler = None
        if self.auditor is not None:
            self.auditor.begin_job(self.cluster)
        if tracer is not None:
            job_span = tracer.begin(self.job_name, "job", waves=len(waves))
            self.telemetry.sample()
            if tracer.sample_interval is not None:
                sampler = self.sim.process(self._sampler())
        try:
            return self._run_waves(waves, job_span)
        finally:
            if tracer is not None:
                if sampler is not None and not sampler.triggered:
                    sampler.interrupt("job complete")
                tracer.end(job_span)

    def _run_waves(self, waves, job_span) -> SystemMetrics:
        tracer = self.tracer
        for wave_index, wave in enumerate(waves):
            if not wave:
                continue
            stage_span = None
            if tracer is not None:
                stage_span = tracer.begin(
                    self._wave_name(wave_index),
                    "stage",
                    parent=job_span,
                    tasks=len(wave),
                )
                self._wave_span = tracer.begin(
                    f"wave{wave_index}",
                    "wave",
                    parent=stage_span,
                    tasks=len(wave),
                )
            if self.auditor is not None:
                self.auditor.begin_wave(wave_index, wave, self.instruction_rate)
            states = []
            for task_index, task in enumerate(wave):
                states.append(
                    _TaskState(
                        index=task_index,
                        task=task,
                        node=self._initial_node(task),
                        wave=wave_index,
                    )
                )
            supervisors = []
            for state in states:
                state.supervisor = self.sim.process(self._supervise(state))
                supervisors.append(state.supervisor)
            gate = self.sim.all_of(supervisors)
            monitor = None
            if self.injector is not None and self.policy.speculation:
                monitor = self.sim.process(
                    self._speculation_monitor(states, gate)
                )
            self.sim.run(until_event=gate)
            if monitor is not None:
                monitor.interrupt("wave complete")
            if tracer is not None:
                # Wave boundaries are always sampled, even with periodic
                # sampling disabled, so every stage has a closing point.
                self.telemetry.sample()
                tracer.end(self._wave_span)
                tracer.end(stage_span)
                self._wave_span = None
            if not gate.triggered:
                # Reachable when fault injection strands work: report
                # exactly which tasks were lost (an assert would vanish
                # under ``python -O`` and name nothing).
                lost = [s.index for s in states if not s.done]
                raise InvariantViolation(
                    f"wave {wave_index} did not drain: tasks {lost} were "
                    f"lost without completing or failing the job",
                    time=self.sim.now,
                    wave=wave_index,
                    lost_tasks=lost,
                )
            if self.auditor is not None:
                self.auditor.end_wave(wave_index)
        metrics = self.cluster.metrics()
        metrics.tasks_retried = self.stats.tasks_retried
        metrics.speculative_launches = self.stats.speculative_launches
        metrics.speculative_wins = self.stats.speculative_wins
        metrics.wasted_work_ratio = self.stats.wasted_work_ratio
        if self.injector is not None:
            metrics.faults_injected = self.injector.faults_injected
        if self.auditor is not None:
            self.auditor.end_job(self.cluster, metrics)
        return metrics


def run_waves(
    cluster: Cluster,
    waves: List[List[TaskDescriptor]],
    instruction_rate: float,
    io_chunk_bytes: int = 64 * 1024 * 1024,
    faults: Optional[FaultPlan] = None,
    policy: Optional[RecoveryPolicy] = None,
    tracer=None,
    job_name: str = "job",
    wave_names: Optional[List[str]] = None,
    auditor=None,
) -> SystemMetrics:
    """Execute task waves with a barrier between waves.

    Tasks interleave I/O and compute in ``io_chunk_bytes`` chunks, which
    is how MapReduce-style engines overlap them.  ``faults`` injects a
    :class:`~repro.cluster.faults.FaultPlan` into the run and ``policy``
    selects the stack's recovery behaviour (defaults to a generic
    retrying policy; see :func:`policy_for`).  Returns the cluster's
    system metrics at completion, including recovery accounting.

    ``tracer`` (an :class:`repro.obs.Tracer`) records job → stage →
    wave → task → attempt spans plus per-node utilization samples; it
    defaults to the simulation's own ``sim.tracer`` so a traced
    :class:`~repro.cluster.events.Simulation` traces every job run on
    it without threading the tracer through each engine.  ``job_name``
    labels the root span and ``wave_names`` the per-wave stage spans.
    With no tracer the instrumentation records nothing and the event
    schedule is untouched.

    ``auditor`` (an :class:`repro.chaos.InvariantAuditor`) receives the
    per-task commit ledger and job/wave boundaries; like the tracer it
    defaults to the simulation's own ``sim.auditor``, and with neither
    the audit hooks cost one ``None`` check each.

    Raises :class:`JobFailedError` when the policy gives up — a task
    exhausts ``max_attempts``, or any node is lost under an
    ``abort_on_node_loss`` (MPI-style) policy.
    """
    if instruction_rate <= 0:
        raise ValueError("instruction_rate must be positive")
    if tracer is None:
        tracer = cluster.sim.tracer
    scheduler = _WaveScheduler(
        cluster,
        instruction_rate,
        io_chunk_bytes,
        faults,
        policy if policy is not None else RecoveryPolicy(),
        tracer=tracer,
        job_name=job_name,
        wave_names=wave_names,
        auditor=auditor,
    )
    return scheduler.run(waves)
