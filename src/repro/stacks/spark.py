"""A functional RDD engine (the Spark 1.0.2 stand-in).

RDDs carry lazy lineage; actions trigger evaluation.  Narrow
transformations (map/flatMap/filter) fuse into one pass per stage; wide
ones (reduceByKey, groupByKey, sortBy) introduce a shuffle boundary and
start a new stage, exactly as Spark's DAG scheduler splits stages.
Caching keeps a materialised partition list in memory, so re-used
lineage is not recomputed (and costs no re-read) — the in-memory
advantage the paper contrasts with Hadoop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.stacks.base import (
    SPARK_TRAITS,
    KernelTraits,
    Meter,
    SoftwareStack,
    StackTraits,
    WorkloadResult,
    build_profile,
    stable_hash,
)
from repro.stacks.scheduler import (
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)


def _value_bytes(value: object) -> int:
    if isinstance(value, (str, bytes)):
        return len(value)
    if isinstance(value, tuple):
        return sum(_value_bytes(part) for part in value)
    if isinstance(value, list):
        return sum(_value_bytes(part) for part in value)
    return 8


@dataclass
class _Op:
    """One lineage step."""

    kind: str  # "map" | "flat_map" | "filter" | "reduce_by_key" | ...
    fn: Optional[Callable] = None
    meter_fn: Optional[Callable] = None


class Rdd:
    """A lazy, partitioned dataset with lineage."""

    def __init__(
        self,
        spark: "Spark",
        partitions: Optional[List[list]] = None,
        lineage: Optional[List[_Op]] = None,
        parent: Optional["Rdd"] = None,
    ):
        self.spark = spark
        self._partitions = partitions
        self._lineage: List[_Op] = lineage or []
        self._parent = parent
        self._cached: Optional[List[list]] = None
        self.cache_requested = False

    # ---- transformations (lazy) ------------------------------------------
    def _derive(self, op: _Op) -> "Rdd":
        return Rdd(self.spark, lineage=self._lineage + [op], parent=self._parent or self)

    def map(self, fn: Callable, meter_fn: Optional[Callable] = None) -> "Rdd":
        """Element-wise transform; ``meter_fn(element, meter)`` accounts
        the kernel work per element batch."""
        return self._derive(_Op("map", fn, meter_fn))

    def flat_map(self, fn: Callable, meter_fn: Optional[Callable] = None) -> "Rdd":
        return self._derive(_Op("flat_map", fn, meter_fn))

    def filter(self, fn: Callable, meter_fn: Optional[Callable] = None) -> "Rdd":
        return self._derive(_Op("filter", fn, meter_fn))

    def reduce_by_key(self, fn: Callable) -> "Rdd":
        """Wide transformation: hash-shuffle then per-key fold."""
        return self._derive(_Op("reduce_by_key", fn))

    def group_by_key(self) -> "Rdd":
        return self._derive(_Op("group_by_key"))

    def sort_by(self, key_fn: Callable) -> "Rdd":
        return self._derive(_Op("sort_by", key_fn))

    def cache(self) -> "Rdd":
        """Request materialisation on first evaluation."""
        self.cache_requested = True
        return self

    # ---- actions (eager) ---------------------------------------------------
    def collect(self) -> list:
        partitions = self.spark._evaluate(self)
        return [element for partition in partitions for element in partition]

    def count(self) -> int:
        partitions = self.spark._evaluate(self)
        total = 0
        for partition in partitions:
            self.spark._meter.ops(int_op=len(partition), compare=len(partition))
            total += len(partition)
        return total

    def reduce(self, fn: Callable):
        elements = self.collect()
        if not elements:
            raise ValueError("reduce of empty RDD")
        self.spark._meter.ops(int_op=len(elements))
        accumulator = elements[0]
        for element in elements[1:]:
            accumulator = fn(accumulator, element)
        return accumulator


class Spark(SoftwareStack):
    """The RDD engine: holds the driver-side meter and task statistics."""

    def __init__(self, traits: StackTraits = SPARK_TRAITS, n_partitions: int = 30):
        super().__init__(traits)
        self.n_partitions = n_partitions
        self._meter = Meter()
        self._stage_stats: List[dict] = []

    # ---- construction ---------------------------------------------------
    def parallelize(self, records: Sequence[object]) -> Rdd:
        """Create a source RDD of ``records`` split into partitions."""
        if not records:
            raise ValueError("cannot parallelize an empty collection")
        n = max(1, min(self.n_partitions, len(records)))
        size = (len(records) + n - 1) // n
        partitions = [
            list(records[i * size:(i + 1) * size])
            for i in range(n)
            if records[i * size:(i + 1) * size]
        ]
        for partition in partitions:
            nbytes = sum(_value_bytes(r) for r in partition)
            self._meter.record_in(nbytes, records=len(partition))
        return Rdd(self, partitions=partitions)

    # ---- evaluation -------------------------------------------------------
    def _evaluate(self, rdd: Rdd) -> List[list]:
        source = rdd._parent if rdd._parent is not None else rdd
        if source._cached is not None:
            partitions = [list(p) for p in source._cached]
        else:
            partitions = [list(p) for p in (source._partitions or [])]
            if source.cache_requested:
                source._cached = [list(p) for p in partitions]

        stage_elements = sum(len(p) for p in partitions)
        for op in rdd._lineage:
            if op.kind in ("map", "flat_map", "filter"):
                partitions = self._narrow(op, partitions)
            elif op.kind in ("reduce_by_key", "group_by_key", "sort_by"):
                partitions = self._wide(op, partitions)
            else:  # pragma: no cover
                raise ValueError(f"unknown op {op.kind!r}")
            stage_elements = max(
                stage_elements, sum(len(p) for p in partitions)
            )
        return partitions

    def _narrow(self, op: _Op, partitions: List[list]) -> List[list]:
        out: List[list] = []
        for partition in partitions:
            result: list = []
            for element in partition:
                if op.meter_fn is not None:
                    op.meter_fn(element, self._meter)
                else:
                    self._meter.ops(compare=1, array_access=1)
                if op.kind == "map":
                    result.append(op.fn(element))
                elif op.kind == "flat_map":
                    result.extend(op.fn(element))
                else:  # filter
                    if op.fn(element):
                        result.append(element)
            out.append(result)
        self._stage_stats.append(
            {
                "kind": "narrow",
                "elements": sum(len(p) for p in partitions),
                "shuffle_bytes": 0,
                "n_tasks": len(partitions),
            }
        )
        return out

    def _wide(self, op: _Op, partitions: List[list]) -> List[list]:
        # Shuffle: hash (or range) partition all elements.
        n_out = max(1, len(partitions))
        shuffle_bytes = 0
        n_elements = 0
        buckets: List[list] = [[] for _ in range(n_out)]
        all_elements = [e for p in partitions for e in p]
        n_elements = len(all_elements)
        if op.kind == "sort_by":
            all_elements.sort(key=op.fn)
            if n_elements > 1:
                cost = n_elements * math.log2(n_elements)
                self._meter.ops(compare=cost, array_access=cost)
            size = (n_elements + n_out - 1) // n_out
            buckets = [
                all_elements[i * size:(i + 1) * size] for i in range(n_out)
            ]
        else:
            for element in all_elements:
                key = element[0]
                self._meter.ops(hash=1)
                buckets[stable_hash(key) % n_out].append(element)
        for element in all_elements:
            shuffle_bytes += _value_bytes(element)
        self._meter.record_shuffle(shuffle_bytes, records=n_elements)

        out: List[list] = []
        for bucket in buckets:
            if op.kind == "reduce_by_key":
                folded: dict = {}
                for key, value in bucket:
                    self._meter.ops(hash=1, compare=1, int_op=1)
                    if key in folded:
                        folded[key] = op.fn(folded[key], value)
                    else:
                        folded[key] = value
                out.append(list(folded.items()))
            elif op.kind == "group_by_key":
                grouped: dict = {}
                for key, value in bucket:
                    self._meter.ops(hash=1, compare=1)
                    grouped.setdefault(key, []).append(value)
                out.append(list(grouped.items()))
            else:  # sort_by buckets are already the output
                out.append(bucket)
        self._stage_stats.append(
            {
                "kind": "wide",
                "elements": n_elements,
                "shuffle_bytes": shuffle_bytes,
                "n_tasks": n_out,
            }
        )
        return out

    # ---- workload finalisation ---------------------------------------------
    def finish(
        self,
        name: str,
        output: object,
        kernel: KernelTraits,
        state_bytes: int = 8 * 1024 * 1024,
        state_fraction: float = 0.035,
        stream_fraction: float = 0.008,
        output_bytes: Optional[int] = None,
        cluster: Optional[Cluster] = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
    ) -> WorkloadResult:
        """Assemble the WorkloadResult after the driver program ran.

        ``faults`` injects an infrastructure fault plan into the
        cluster replay; lost tasks are recomputed from lineage under
        ``recovery`` (Spark's task-retry policy by default).
        ``tracer`` records the replay's span tree (defaults to the
        cluster simulation's tracer, if any).
        """
        meter = self._meter
        if output_bytes is None:
            output_bytes = _value_bytes(output) if output is not None else 0
        if meter.records_out == 0 and output_bytes:
            meter.record_out(
                output_bytes,
                records=len(output) if isinstance(output, list) else 1,
            )
        data = self.data_footprint(
            meter,
            kernel,
            state_bytes=state_bytes,
            state_fraction=state_fraction,
            stream_fraction=stream_fraction,
        )
        profile = build_profile(
            name=name,
            meter=meter,
            stack=self.traits,
            kernel=kernel,
            data=data,
            threads=6,
        )
        system = None
        elapsed = None
        if cluster is not None:
            system, elapsed = self._simulate(
                meter, cluster, faults=faults, recovery=recovery,
                tracer=tracer, name=name,
            )
        return WorkloadResult(
            name=name,
            output=output,
            profile=profile,
            meter=meter,
            system=system,
            elapsed=elapsed,
        )

    def _simulate(
        self,
        meter: Meter,
        cluster: Cluster,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
        name: str = "spark-job",
    ) -> tuple:
        """Replay stages as task waves.

        Spark reads input once from the DFS, keeps intermediate data in
        memory, and spills only shuffle data — hence lower disk traffic
        than Hadoop for the same job.
        """
        rate = self.traits.instruction_rate
        start = cluster.sim.now
        total_instr = (
            meter.kernel_mix().total
            + self.traits.framework_instructions(meter)
        ) * self.traits.des_cpu_factor
        stage_stats = self._stage_stats or [
            {"kind": "narrow", "elements": meter.records_in,
             "shuffle_bytes": meter.bytes_shuffled,
             "n_tasks": self.n_partitions}
        ]
        waves = []
        n_stages = len(stage_stats)
        instr_per_stage = total_instr / n_stages
        for i, stage in enumerate(stage_stats):
            n_tasks = max(1, stage["n_tasks"])
            read_bytes = meter.bytes_in if i == 0 else 0
            shuffle = stage["shuffle_bytes"]
            wave = [
                TaskDescriptor(
                    cpu_instructions=instr_per_stage / n_tasks,
                    read_bytes=read_bytes // n_tasks,
                    write_bytes=shuffle // n_tasks,
                    net_bytes=shuffle // n_tasks,
                    # Spark 1.x writes one file per map x reduce pair;
                    # seeks only matter once those files are material.
                    random_writes=(shuffle // n_tasks) > 8 * 1024,
                    preferred_node=t,
                )
                for t, _ in zip(range(n_tasks), range(n_tasks))
            ]
            waves.append(wave)
        if recovery is None:
            recovery = policy_for("Spark")
        stage_names = [
            f"stage{i} ({stage['kind']})"
            for i, stage in enumerate(stage_stats)
        ]
        metrics = run_waves(
            cluster, waves, rate, faults=faults, policy=recovery,
            tracer=tracer, job_name=name, wave_names=stage_names,
        )
        return metrics, cluster.sim.now - start
