"""An LSM-tree key-value store (the HBase 0.94.5 stand-in).

Writes land in a sorted in-memory *memstore* that flushes to immutable
sorted *SSTables*; reads consult the memstore, then each SSTable newest
first, skipping files whose Bloom filter rejects the key.  The H-Read
service workload issues Zipf-distributed random gets over the
ProfSearch resumé table through a deep RPC/regionserver dispatch path —
the paper's highest-L1I-MPKI workload (51) and its only low-IPC service
representative.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.stacks.base import (
    HBASE_TRAITS,
    KernelTraits,
    Meter,
    SoftwareStack,
    StackTraits,
    WorkloadResult,
    build_profile,
)
from repro.stacks.scheduler import (
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)


class _BloomFilter:
    """A compact Bloom filter over integer keys (k=3 hash functions)."""

    def __init__(self, capacity: int, bits_per_key: int = 10):
        self._size = max(64, capacity * bits_per_key)
        self._bits = bytearray((self._size + 7) // 8)

    def _hashes(self, key: int) -> Tuple[int, int, int]:
        h1 = (key * 0x9E3779B1) % self._size
        h2 = (key * 0x85EBCA77 + 0x165667B1) % self._size
        h3 = (h1 + 3 * h2) % self._size
        return h1, h2, h3

    def add(self, key: int) -> None:
        for h in self._hashes(key):
            self._bits[h // 8] |= 1 << (h % 8)

    def may_contain(self, key: int) -> bool:
        return all(
            self._bits[h // 8] & (1 << (h % 8)) for h in self._hashes(key)
        )


class _SsTable:
    """An immutable sorted run of (key, value) pairs with a Bloom filter."""

    def __init__(self, items: List[Tuple[int, object]]):
        self.keys = [k for k, _ in items]
        self.values = [v for _, v in items]
        self.bloom = _BloomFilter(len(items))
        for key in self.keys:
            self.bloom.add(key)

    def get(self, key: int, meter: Meter) -> Optional[object]:
        meter.ops(hash=3, compare=3)  # bloom probes
        if not self.bloom.may_contain(key):
            return None
        index = bisect.bisect_left(self.keys, key)
        meter.ops(
            compare=max(1, int(np.log2(max(2, len(self.keys))))),
            array_access=max(1, int(np.log2(max(2, len(self.keys))))),
        )
        if index < len(self.keys) and self.keys[index] == key:
            return self.values[index]
        return None


class HBase(SoftwareStack):
    """A single region server holding one table."""

    def __init__(
        self,
        traits: StackTraits = HBASE_TRAITS,
        memstore_limit: int = 2048,
    ):
        super().__init__(traits)
        self.memstore_limit = memstore_limit
        self._memstore: Dict[int, object] = {}
        self._sstables: List[_SsTable] = []
        self.value_bytes = 1128  # ProfSearch record size (Table 2)

    # ---- write path -------------------------------------------------------
    def put(self, key: int, value: object, meter: Optional[Meter] = None) -> None:
        """Insert into the memstore, flushing when full."""
        if meter is not None:
            meter.ops(hash=1, field_store=1, alloc=1)
        self._memstore[key] = value
        if len(self._memstore) >= self.memstore_limit:
            self.flush()

    #: Minor compaction triggers when this many SSTables accumulate.
    COMPACTION_THRESHOLD = 6

    def flush(self) -> None:
        """Freeze the memstore into a new SSTable (newest first)."""
        if not self._memstore:
            return
        items = sorted(self._memstore.items())
        self._sstables.insert(0, _SsTable(items))
        self._memstore = {}
        if len(self._sstables) >= self.COMPACTION_THRESHOLD:
            self.compact()

    def compact(self) -> None:
        """Minor compaction: merge the oldest half of the SSTables.

        Newer tables shadow older ones for duplicate keys, exactly as
        the read path resolves them.
        """
        if len(self._sstables) < 2:
            return
        split = len(self._sstables) // 2
        keep, merge = self._sstables[:split], self._sstables[split:]
        merged: Dict[int, object] = {}
        for sstable in reversed(merge):  # oldest first; newer overwrite
            for key, value in zip(sstable.keys, sstable.values):
                merged[key] = value
        self._sstables = keep + [_SsTable(sorted(merged.items()))]

    def load(self, rows: Sequence[Tuple[int, object]]) -> None:
        """Bulk-load a table."""
        for key, value in rows:
            self.put(key, value)
        self.flush()

    # ---- read path ----------------------------------------------------------
    def get(self, key: int, meter: Meter) -> Optional[object]:
        """The LSM read path: memstore, then SSTables newest first."""
        meter.ops(hash=1, compare=1)
        if key in self._memstore:
            return self._memstore[key]
        for sstable in self._sstables:
            value = sstable.get(key, meter)
            if value is not None:
                return value
        return None

    @property
    def n_sstables(self) -> int:
        return len(self._sstables)

    # ---- the H-Read service workload -----------------------------------------
    def run_read_workload(
        self,
        name: str,
        keys: Sequence[int],
        cluster: Optional[Cluster] = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
    ) -> WorkloadResult:
        """Issue ``keys`` as client gets; every request crosses the RPC
        and region-server layers (heavy dispatch per record).

        Under a ``faults`` plan, requests to a dead region server are
        retried after the master reassigns the region (the default
        ``recovery`` is HBase's quick-redetect/retry policy).
        """
        meter = Meter()
        hits = 0
        for key in keys:
            meter.record_in(64)  # the request itself
            value = self.get(int(key), meter)
            if value is not None:
                hits += 1
                meter.record_out(self.value_bytes)
        kernel = KernelTraits(
            code_kb=16.0,
            ilp=1.6,
            loop_fraction=0.22,
            pattern_fraction=0.10,
            data_dependent_fraction=0.68,
            taken_prob=0.08,
            loop_trip=10,
            state_zipf=0.75,  # hot rows dominate the request stream
        )
        table_bytes = (
            sum(len(t.keys) for t in self._sstables) + len(self._memstore)
        ) * self.value_bytes
        data = self.data_footprint(
            meter,
            kernel,
            state_bytes=min(max(table_bytes, 6 * 1024 * 1024), 8 * 1024 * 1024),
            state_fraction=0.045,
            stream_fraction=0.004,
        )
        profile = build_profile(
            name=name,
            meter=meter,
            stack=self.traits,
            kernel=kernel,
            data=data,
            threads=6,
        )
        system = None
        elapsed = None
        if cluster is not None:
            rate = self.traits.instruction_rate
            start = cluster.sim.now
            total_instr = (
                meter.kernel_mix().total
                + self.traits.framework_instructions(meter)
            ) * self.traits.des_cpu_factor
            n_tasks = len(cluster) * cluster.nodes[0].spec.cores
            # Random reads: each request is a small non-sequential disk
            # read (block-cache misses dominate for a table this large).
            read_bytes = meter.records_in * 8 * 1024 // n_tasks
            wave = [
                TaskDescriptor(
                    cpu_instructions=total_instr / n_tasks,
                    read_bytes=read_bytes,
                    write_bytes=0,
                    net_bytes=meter.bytes_out // n_tasks,
                    preferred_node=t,
                )
                for t in range(n_tasks)
            ]
            if recovery is None:
                recovery = policy_for("HBase")
            system = run_waves(
                cluster, [wave], rate, faults=faults, policy=recovery,
                tracer=tracer, job_name=name, wave_names=["requests"],
            )
            elapsed = cluster.sim.now - start
        return WorkloadResult(
            name=name,
            output=hits,
            profile=profile,
            meter=meter,
            system=system,
            elapsed=elapsed,
        )
