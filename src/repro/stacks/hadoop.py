"""A functional MapReduce engine (the Hadoop 1.0.2 stand-in).

Jobs really execute: mappers emit key-value pairs from input records,
an optional combiner folds map outputs, the shuffle hash-partitions and
*sorts* intermediate data (Hadoop always sorts), and reducers fold each
key group.  Alongside the functional run, the engine meters data flow
and schedules equivalent map/reduce task waves onto the discrete-event
cluster for system-behaviour measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.filesystem import DistributedFileSystem
from repro.stacks.base import (
    HADOOP_TRAITS,
    KernelTraits,
    Meter,
    SoftwareStack,
    StackTraits,
    WorkloadResult,
    build_profile,
    stable_hash,
)
from repro.stacks.scheduler import (
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)

#: (key, value) pair type emitted by mappers and reducers.
Pair = Tuple[object, object]

Mapper = Callable[[object, Callable[[object, object], None], Meter], None]
Reducer = Callable[[object, list, Callable[[object, object], None], Meter], None]


def _pair_bytes(key: object, value: object) -> int:
    """Rough serialised size of a pair (framework byte accounting)."""
    key_len = len(key) if isinstance(key, (str, bytes)) else 8
    value_len = len(value) if isinstance(value, (str, bytes)) else 8
    return key_len + value_len + 8


def _record_bytes(record: object) -> int:
    if isinstance(record, (str, bytes)):
        return len(record)
    if isinstance(record, tuple):
        return sum(_record_bytes(part) for part in record)
    return 8


@dataclass
class MapReduceJob:
    """A MapReduce program plus its kernel behaviour model.

    Attributes:
        name: Job name (becomes the workload ID).
        mapper: ``mapper(record, emit, meter)``.
        reducer: ``reducer(key, values, emit, meter)``; None = identity.
        combiner: Optional map-side reducer.
        kernel: Algorithm-intrinsic traits for profile assembly.
        state_bytes: Resident state estimate (hash tables, buffers); may
            be a callable of the merged meter for data-dependent sizing.
        state_fraction: Fraction of data references into that state.
        n_maps / n_reduces: Task parallelism.
    """

    name: str
    mapper: Mapper
    reducer: Optional[Reducer] = None
    combiner: Optional[Reducer] = None
    kernel: KernelTraits = field(default_factory=KernelTraits)
    state_bytes: object = 4 * 1024 * 1024
    state_fraction: float = 0.03
    stream_fraction: float = 0.01
    n_maps: int = 30
    n_reduces: int = 10
    #: Map-side sort buffer (Hadoop's io.sort.mb).  Map output beyond
    #: this spills to disk in runs that a final merge pass re-reads —
    #: extra disk traffic the §3.2.1 classification sees.
    sort_buffer_bytes: int = 4 * 1024 * 1024


class Hadoop(SoftwareStack):
    """The MapReduce engine."""

    def __init__(self, traits: StackTraits = HADOOP_TRAITS):
        super().__init__(traits)

    def run(
        self,
        job: MapReduceJob,
        records: Sequence[object],
        cluster: Optional[Cluster] = None,
        dfs: "DistributedFileSystem" = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
    ) -> WorkloadResult:
        """Execute ``job`` over ``records``.

        Returns the functional output (list of reducer-emitted pairs),
        the behaviour profile, and — when a cluster is supplied — the
        simulated system metrics.  ``faults`` injects an infrastructure
        fault plan into the cluster simulation; lost tasks are
        re-executed under ``recovery`` (Hadoop's JobTracker policy by
        default: retries with backoff plus speculative execution).
        ``tracer`` records the job's span tree and utilization samples
        (defaults to the cluster simulation's tracer, if any).
        """
        if not records:
            raise ValueError(f"{job.name}: no input records")
        meter = Meter()

        # ---- Map phase ---------------------------------------------------
        splits = self._split(records, job.n_maps)
        map_outputs: List[List[Pair]] = []
        map_task_stats: List[dict] = []
        for split in splits:
            task_meter = Meter()
            emitted: List[Pair] = []

            def emit(key: object, value: object, _sink=emitted) -> None:
                _sink.append((key, value))

            in_bytes = 0
            for record in split:
                nbytes = _record_bytes(record)
                in_bytes += nbytes
                task_meter.record_in(nbytes)
                job.mapper(record, emit, task_meter)

            if job.combiner is not None:
                emitted = self._combine(job.combiner, emitted, task_meter)
            shuffle_bytes = 0
            for key, value in emitted:
                shuffle_bytes += _pair_bytes(key, value)
            task_meter.record_shuffle(shuffle_bytes, records=len(emitted))
            map_outputs.append(emitted)
            map_task_stats.append(
                {"in_bytes": in_bytes, "shuffle_bytes": shuffle_bytes,
                 "meter": task_meter}
            )
            meter.merge(task_meter)

        # ---- Shuffle: hash partition + sort (Hadoop always sorts) --------
        partitions: List[List[Pair]] = [[] for _ in range(job.n_reduces)]
        for output in map_outputs:
            for key, value in output:
                partitions[stable_hash(key) % job.n_reduces].append((key, value))
        for partition in partitions:
            partition.sort(key=lambda pair: repr(pair[0]))
            # Sorting cost: ~n log n compares through the raw comparator.
            n = len(partition)
            if n > 1:
                meter.ops(compare=n * math.log2(n), array_access=n * math.log2(n))

        # ---- Reduce phase -------------------------------------------------
        output: List[Pair] = []
        reduce_task_stats: List[dict] = []
        for partition in partitions:
            task_meter = Meter()
            emitted: List[Pair] = []

            def emit(key: object, value: object, _sink=emitted) -> None:
                _sink.append((key, value))

            grouped = self._group_sorted(partition)
            for key, values in grouped:
                task_meter.ops(compare=len(values), array_access=len(values))
                if job.reducer is not None:
                    job.reducer(key, values, emit, task_meter)
                else:
                    for value in values:
                        emit(key, value)
            out_bytes = sum(_pair_bytes(k, v) for k, v in emitted)
            task_meter.record_out(out_bytes, records=len(emitted))
            output.extend(emitted)
            reduce_task_stats.append({"out_bytes": out_bytes, "meter": task_meter})
            meter.merge(task_meter)

        # ---- Profile ------------------------------------------------------
        state_bytes = (
            job.state_bytes(meter) if callable(job.state_bytes) else job.state_bytes
        )
        data = self.data_footprint(
            meter,
            job.kernel,
            state_bytes=int(state_bytes),
            state_fraction=job.state_fraction,
            stream_fraction=job.stream_fraction,
        )
        profile = build_profile(
            name=job.name,
            meter=meter,
            stack=self.traits,
            kernel=job.kernel,
            data=data,
            threads=6,
        )

        # ---- Phase segments (the §5.4 five-segment sampling) ----------------
        segments = self._phase_segments(job, map_task_stats, reduce_task_stats)

        # ---- Cluster simulation --------------------------------------------
        system = None
        elapsed = None
        if cluster is not None:
            system, elapsed = self._simulate(
                job, map_task_stats, reduce_task_stats, cluster, dfs,
                faults=faults, recovery=recovery, tracer=tracer,
            )

        return WorkloadResult(
            name=job.name,
            output=output,
            profile=profile,
            meter=meter,
            system=system,
            elapsed=elapsed,
            segments=segments,
        )

    def _phase_segments(self, job, map_stats, reduce_stats):
        """(profile, weight) samples per the paper's five segments.

        Map-phase and reduce-phase meters yield distinct profiles; the
        paper samples each phase at its start, middle and end (maps) and
        start/end (reduces), weighting by the phase's instruction share.
        The per-phase behaviour in this engine is stationary within a
        phase, so the three map samples share the map profile.
        """
        map_meter = Meter()
        for stats in map_stats:
            map_meter.merge(stats["meter"])
        reduce_meter = Meter()
        for stats in reduce_stats:
            reduce_meter.merge(stats["meter"])
        segments = []
        for phase_meter, sample_points in (
            (map_meter, ("map-0%", "map-50%", "map-99%")),
            (reduce_meter, ("reduce-0%", "reduce-99%")),
        ):
            if phase_meter.kernel_mix().total <= 0 and (
                self.traits.framework_instructions(phase_meter) <= 0
            ):
                continue
            weight = (
                phase_meter.kernel_mix().total
                + self.traits.framework_instructions(phase_meter)
            ) / len(sample_points)
            state_bytes = (
                job.state_bytes(phase_meter)
                if callable(job.state_bytes)
                else job.state_bytes
            )
            data = self.data_footprint(
                phase_meter,
                job.kernel,
                state_bytes=int(state_bytes),
                state_fraction=job.state_fraction,
                stream_fraction=job.stream_fraction,
            )
            phase_profile = build_profile(
                name=f"{job.name}/{sample_points[0].split('-')[0]}",
                meter=phase_meter,
                stack=self.traits,
                kernel=job.kernel,
                data=data,
                threads=6,
            )
            for _point in sample_points:
                segments.append((phase_profile, weight))
        return segments

    # ------------------------------------------------------------------
    @staticmethod
    def _split(records: Sequence[object], n_splits: int) -> List[Sequence[object]]:
        n = max(1, min(n_splits, len(records)))
        size = (len(records) + n - 1) // n
        return [records[i * size:(i + 1) * size] for i in range(n) if records[i * size:(i + 1) * size]]

    @staticmethod
    def _group_sorted(pairs: List[Pair]) -> List[Tuple[object, list]]:
        grouped: List[Tuple[object, list]] = []
        current_key: object = object()
        current_values: list = []
        for key, value in pairs:
            if key != current_key:
                if current_values:
                    grouped.append((current_key, current_values))
                current_key = key
                current_values = []
            current_values.append(value)
        if current_values:
            grouped.append((current_key, current_values))
        return grouped

    def _combine(
        self, combiner: Reducer, pairs: List[Pair], meter: Meter
    ) -> List[Pair]:
        by_key: Dict[object, list] = {}
        for key, value in pairs:
            meter.ops(hash=1)
            by_key.setdefault(key, []).append(value)
        combined: List[Pair] = []

        def emit(key: object, value: object) -> None:
            combined.append((key, value))

        for key, values in by_key.items():
            combiner(key, values, emit, meter)
        return combined

    def _simulate(
        self,
        job: MapReduceJob,
        map_stats: List[dict],
        reduce_stats: List[dict],
        cluster: Cluster,
        dfs: "DistributedFileSystem" = None,
        faults: Optional[FaultPlan] = None,
        recovery: Optional[RecoveryPolicy] = None,
        tracer=None,
    ) -> tuple:
        """Schedule equivalent task waves on the cluster.

        With a :class:`DistributedFileSystem`, the input is placed as
        replicated blocks and map tasks are scheduled *data-locally* on
        a replica holder (Hadoop's locality-first scheduling); reduce
        outputs are written back with pipeline replication, which adds
        the corresponding network and remote-disk traffic.
        """
        rate = self.traits.instruction_rate
        start = cluster.sim.now

        map_nodes = list(range(len(map_stats)))
        replicate_output = 1
        if dfs is not None:
            total_in = sum(stats["in_bytes"] for stats in map_stats)
            handle = dfs.create(f"/{job.name}/input-{id(map_stats)}", max(1, total_in))
            # One logical split per map task; place each task on its
            # split's primary replica holder.
            map_nodes = [
                handle.blocks[i % handle.n_blocks].replicas[0]
                for i in range(len(map_stats))
            ]
            replicate_output = dfs.replication

        def task_instructions(task_meter: Meter) -> float:
            # Startup costs are excluded: the paper measures after a 30 s
            # ramp-up, past JVM start and task-tracker spin-up.
            return (
                task_meter.kernel_mix().total
                + self.traits.framework_instructions(task_meter)
            ) * self.traits.des_cpu_factor

        def spill_write_bytes(shuffle_bytes: int) -> int:
            """Map output written to disk, including multi-spill merges.

            Output that fits the sort buffer is written once.  Larger
            output spills in buffer-sized runs and a merge pass rewrites
            everything — i.e. roughly twice the bytes touch disk.
            """
            if shuffle_bytes <= job.sort_buffer_bytes:
                return shuffle_bytes
            return 2 * shuffle_bytes

        map_wave = [
            TaskDescriptor(
                cpu_instructions=task_instructions(stats["meter"]),
                read_bytes=stats["in_bytes"],
                write_bytes=spill_write_bytes(stats["shuffle_bytes"]),
                net_bytes=0,
                preferred_node=map_nodes[i],
            )
            for i, stats in enumerate(map_stats)
        ]
        total_shuffle = sum(s["shuffle_bytes"] for s in map_stats)
        per_reduce_shuffle = total_shuffle // max(1, len(reduce_stats))
        reduce_wave = [
            TaskDescriptor(
                cpu_instructions=task_instructions(stats["meter"]),
                read_bytes=per_reduce_shuffle,
                write_bytes=stats["out_bytes"] * replicate_output,
                net_bytes=per_reduce_shuffle
                + stats["out_bytes"] * max(0, replicate_output - 1),
                preferred_node=i,
            )
            for i, stats in enumerate(reduce_stats)
        ]
        if recovery is None:
            recovery = policy_for("Hadoop")
        metrics = run_waves(
            cluster, [map_wave, reduce_wave], rate,
            faults=faults, policy=recovery,
            tracer=tracer, job_name=job.name, wave_names=["map", "reduce"],
        )
        return metrics, cluster.sim.now - start
