"""Stack-independent metering and the per-stack trait models.

The pipeline from real execution to a characterizable profile:

1. Workload kernels process generated records and report *abstract
   operations* (compares, hashes, array accesses, string scanning, ...)
   to a :class:`Meter`.
2. Each abstract operation expands into instruction-class counts via the
   :data:`OP_EXPANSION` cost table — this is the kernel's contribution to
   the instruction mix.
3. The software stack adds *framework instructions* per record moved
   through it (:class:`StackTraits`: dispatch depth, per-byte buffer
   handling), with the branch-heavy, load-heavy mix characteristic of
   layered middleware.
4. The combined mix, code-footprint and branch models form a
   :class:`repro.uarch.profile.BehaviorProfile` which the simulators
   measure.

The §5.5 software-stack findings (MPI ≈ PARSEC-sized instruction
footprints; Hadoop/Spark an order of magnitude larger L1I miss rates)
follow from the trait constants at the bottom of this module.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.uarch.isa import InstructionClass, InstructionMix, IntBreakdown
from repro.uarch.profile import (
    LINE_BYTES,
    BehaviorProfile,
    BranchProfile,
    CodeFootprint,
    CodeRegion,
    DataFootprint,
)

def stable_hash(key: object) -> int:
    """Partition hash that is identical across interpreter invocations.

    The builtin ``hash()`` is salted per-process for str/bytes
    (PYTHONHASHSEED), which would make shuffle partition sizes — and
    every downstream scheduler/IO metric — differ between runs.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


#: Expansion of one abstract kernel operation into instruction classes.
#: Each entry also carries the share of its integer instructions doing
#: integer-array / floating-point-array address calculation (Figure 2).
OP_EXPANSION: Dict[str, dict] = {
    "compare": {
        "load": 1.0, "int": 1.0, "branch": 1.0,
        "int_addr": 0.5, "fp_addr": 0.0,
    },
    "hash": {
        "load": 1.0, "store": 0.5, "int": 4.0, "branch": 0.5,
        "int_addr": 0.4, "fp_addr": 0.0,
    },
    "int_op": {
        "int": 1.0,
        "int_addr": 0.0, "fp_addr": 0.0,
    },
    "fp_op": {
        "fp": 1.0, "int": 0.7, "load": 0.8,
        "int_addr": 0.0, "fp_addr": 1.0,
    },
    "array_access": {
        "load": 1.0, "int": 1.0,
        "int_addr": 1.0, "fp_addr": 0.0,
    },
    "field_store": {
        "store": 1.0, "int": 0.5,
        "int_addr": 1.0, "fp_addr": 0.0,
    },
    "str_byte": {
        "load": 0.3, "int": 0.4, "branch": 0.2,
        "int_addr": 0.7, "fp_addr": 0.0,
    },
    "call": {
        "load": 1.5, "store": 1.5, "branch": 1.0, "int": 1.0, "other": 0.5,
        "int_addr": 0.6, "fp_addr": 0.0,
    },
    "alloc": {
        "load": 2.0, "store": 4.0, "int": 4.0, "branch": 1.0,
        "int_addr": 0.7, "fp_addr": 0.0,
    },
    # Pure-class ballast ops: x86 folds address arithmetic into its
    # memory and branch instructions, so suites use these to shape mixes
    # without inflating the integer class.
    "branch_op": {
        "branch": 1.0,
        "int_addr": 0.0, "fp_addr": 0.0,
    },
    "mem_op": {
        "load": 0.72, "store": 0.28,
        "int_addr": 0.0, "fp_addr": 0.0,
    },
}


class Meter:
    """Accumulates abstract operations and data-flow volumes.

    Kernels report batched operation counts (one call per record or per
    record batch, not per element) so that metering does not dominate
    Python runtime while remaining data-dependent.
    """

    def __init__(self):
        self.op_counts: Dict[str, float] = {op: 0.0 for op in OP_EXPANSION}
        self.records_in = 0
        self.records_out = 0
        self.records_shuffled = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.bytes_shuffled = 0
        self.fp_ops = 0.0

    def ops(self, **counts: float) -> None:
        """Record abstract operations, e.g. ``ops(compare=10, hash=10)``."""
        for op, count in counts.items():
            if op not in self.op_counts:
                raise KeyError(f"unknown abstract operation {op!r}")
            if count < 0:
                raise ValueError(f"count for {op!r} must be non-negative")
            self.op_counts[op] += count
            if op == "fp_op":
                self.fp_ops += count

    def record_in(self, nbytes: int, records: int = 1) -> None:
        """Account ``records`` input records totalling ``nbytes``."""
        self.records_in += records
        self.bytes_in += nbytes

    def record_out(self, nbytes: int, records: int = 1) -> None:
        """Account ``records`` output records totalling ``nbytes``."""
        self.records_out += records
        self.bytes_out += nbytes

    def record_shuffle(self, nbytes: int, records: int = 1) -> None:
        """Account intermediate records crossing the shuffle/exchange."""
        self.records_shuffled += records
        self.bytes_shuffled += nbytes

    def merge(self, other: "Meter") -> None:
        """Fold another meter (e.g. a task's) into this one."""
        for op, count in other.op_counts.items():
            self.op_counts[op] += count
        self.records_in += other.records_in
        self.records_out += other.records_out
        self.records_shuffled += other.records_shuffled
        self.bytes_in += other.bytes_in
        self.bytes_out += other.bytes_out
        self.bytes_shuffled += other.bytes_shuffled
        self.fp_ops += other.fp_ops

    def kernel_mix(self) -> InstructionMix:
        """The kernel-side instruction mix implied by the recorded ops."""
        mix = InstructionMix()
        for op, count in self.op_counts.items():
            if count == 0:
                continue
            expansion = OP_EXPANSION[op]
            for klass in ("load", "store", "branch", "int", "fp", "other"):
                amount = expansion.get(klass, 0.0) * count
                if amount:
                    target = {
                        "load": InstructionClass.LOAD,
                        "store": InstructionClass.STORE,
                        "branch": InstructionClass.BRANCH,
                        "int": InstructionClass.INTEGER,
                        "fp": InstructionClass.FP,
                        "other": InstructionClass.OTHER,
                    }[klass]
                    mix.add(target, amount)
        return mix

    def kernel_int_breakdown(self) -> IntBreakdown:
        """Figure-2 style breakdown of the kernel's integer instructions."""
        total_int = 0.0
        int_addr = 0.0
        fp_addr = 0.0
        for op, count in self.op_counts.items():
            if count == 0:
                continue
            expansion = OP_EXPANSION[op]
            ints = expansion.get("int", 0.0) * count
            total_int += ints
            int_addr += ints * expansion.get("int_addr", 0.0)
            fp_addr += ints * expansion.get("fp_addr", 0.0)
        if total_int == 0:
            return IntBreakdown(int_addr=0.5, fp_addr=0.1, other=0.4)
        other = max(0.0, total_int - int_addr - fp_addr)
        return IntBreakdown(
            int_addr=int_addr / total_int,
            fp_addr=fp_addr / total_int,
            other=other / total_int,
        )


@dataclass(frozen=True)
class KernelTraits:
    """Algorithm-intrinsic behaviour, independent of the hosting stack.

    Attributes:
        code_kb: Static size of the compiled kernel inner loops.
        ilp: Inherent instruction-level parallelism of the kernel.
        loop_fraction / pattern_fraction / data_dependent_fraction:
            Branch-kind composition of the kernel's branches.
        taken_prob: Taken bias of the data-dependent branches.
        loop_trip: Mean trip count of kernel loops.
        state_zipf: Access skew into the kernel's resident state.
    """

    code_kb: float = 24.0
    ilp: float = 2.2
    loop_fraction: float = 0.40
    pattern_fraction: float = 0.10
    data_dependent_fraction: float = 0.50
    taken_prob: float = 0.04
    loop_trip: int = 24
    state_zipf: float = 0.6


@dataclass(frozen=True)
class StackTraits:
    """Micro-architecturally relevant constants of one software stack.

    Attributes:
        name: Stack name as used in workload IDs ("Hadoop", "MPI", ...).
        dispatch_in / dispatch_out / shuffle_per_byte: Framework
            instructions charged per record read / emitted / shuffled
            (the layering depth the paper blames for front-end stalls).
        per_byte: Framework instructions per payload byte (buffer copies,
            (de)serialisation, checksumming).
        framework_mix: Instruction-class ratios of framework code.
        framework_int_breakdown: Figure-2 breakdown of framework integers.
        region_kb: Sizes of the (hot, warm, cold) framework code regions.
        region_split: Shares of framework instructions executed in each.
        indirect_fraction: Indirect-branch share (virtual dispatch; high
            on JVM stacks, negligible for MPI/C++).
        static_sites: Static branch-site population (code-size driven).
        ilp_factor: Multiplier on kernel ILP (layering lengthens
            dependence chains).
        shuffle_is_streaming: Whether per-shuffled-record work runs in
            tight byte-copy loops (Hadoop's raw sort/spill path, Impala's
            exchanges, MPI packing) or in sprawling object-dispatch code
            (Spark 1.x / Shark generic aggregation) — the distinction
            behind Spark's *higher* L1I miss rates than Hadoop for the
            same algorithm in Figure 4.
        startup_instructions: One-off per-task framework startup cost.
        instruction_rate: Effective instructions/second/core used for
            discrete-event task timing.
        hot_data_kb: Stack/locals working set.
        framework_state_kb: Resident framework data (buffers, metadata).
    """

    name: str
    dispatch_in: float
    dispatch_out: float
    shuffle_per_byte: float
    per_byte: float
    framework_mix: Dict[str, float]
    framework_int_breakdown: IntBreakdown
    region_kb: tuple
    region_split: tuple
    indirect_fraction: float
    static_sites: int
    ilp_factor: float
    shuffle_is_streaming: bool = True
    startup_instructions: float = 2e8
    instruction_rate: float = 2.6e9
    #: Multiplier applied to metered instructions when charging CPU time
    #: in the discrete-event cluster.  The abstract-operation meter counts
    #: semantic work; managed runtimes retire several times that in
    #: charset decoding, boxing and GC, which matters for the §3.2.1
    #: CPU/IO balance but not for the per-instruction-mix statistics.
    des_cpu_factor: float = 1.0
    hot_data_kb: float = 16.0
    framework_state_kb: float = 512.0

    def framework_components(self, meter: Meter) -> tuple:
        """(dispatch, streaming) framework instruction counts.

        *Dispatch* instructions wander the warm/cold framework regions
        (RPC, task management, operator trees, virtual call chains) and
        are charged per record; *streaming* instructions run tight
        serialisation/copy loops in the hot region and are charged per
        byte.  Shuffle handling is per byte either way, but lands on the
        streaming side only for stacks whose exchange path is raw
        byte-copy code (``shuffle_is_streaming``).
        """
        shuffle_instr = meter.bytes_shuffled * self.shuffle_per_byte
        dispatch = (
            meter.records_in * self.dispatch_in
            + meter.records_out * self.dispatch_out
        )
        streaming = (meter.bytes_in + meter.bytes_out) * self.per_byte
        if self.shuffle_is_streaming:
            streaming += shuffle_instr
        else:
            dispatch += shuffle_instr
        return dispatch, streaming

    def framework_instructions(self, meter: Meter) -> float:
        """Total framework instruction count for a metered execution."""
        dispatch, streaming = self.framework_components(meter)
        return dispatch + streaming


#: Branch behaviour of framework code: record-pump loops plus highly
#: biased error/validity checks.
_FRAMEWORK_BRANCHES = {
    "loop_fraction": 0.38,
    "pattern_fraction": 0.12,
    "data_dependent_fraction": 0.50,
    "taken_prob": 0.03,
    "loop_trip": 20,
}

_JVM_MIX = {
    "load": 0.27, "store": 0.12, "branch": 0.20,
    "integer": 0.355, "fp": 0.005, "other": 0.05,
}
_NATIVE_MIX = {
    "load": 0.26, "store": 0.11, "branch": 0.17,
    "integer": 0.40, "fp": 0.01, "other": 0.05,
}
_JVM_INT_BREAKDOWN = IntBreakdown(int_addr=0.64, fp_addr=0.16, other=0.20)
_NATIVE_INT_BREAKDOWN = IntBreakdown(int_addr=0.60, fp_addr=0.14, other=0.26)


HADOOP_TRAITS = StackTraits(
    name="Hadoop",
    dispatch_in=2000.0,
    dispatch_out=120.0,
    shuffle_per_byte=0.8,
    per_byte=0.5,
    framework_mix=_JVM_MIX,
    framework_int_breakdown=_JVM_INT_BREAKDOWN,
    region_kb=(12.0, 128.0, 896.0),
    region_split=(0.76, 0.18, 0.06),
    indirect_fraction=0.045,
    static_sites=3072,
    ilp_factor=1.00,
    shuffle_is_streaming=True,  # raw byte-oriented sort/spill path
    startup_instructions=5e8,
    instruction_rate=2.6e9,
    framework_state_kb=1024.0,
    des_cpu_factor=55.0,
)

SPARK_TRAITS = StackTraits(
    name="Spark",
    dispatch_in=1800.0,
    dispatch_out=1200.0,
    shuffle_per_byte=0.8,
    per_byte=0.3,
    framework_mix=_JVM_MIX,
    framework_int_breakdown=_JVM_INT_BREAKDOWN,
    region_kb=(12.0, 144.0, 768.0),
    region_split=(0.805, 0.15, 0.045),
    indirect_fraction=0.055,
    static_sites=4096,
    ilp_factor=0.95,
    shuffle_is_streaming=False,  # Spark 1.x object-based aggregation
    startup_instructions=3e8,
    instruction_rate=2.7e9,
    framework_state_kb=1536.0,
    des_cpu_factor=10.0,
)

MPI_TRAITS = StackTraits(
    name="MPI",
    dispatch_in=250.0,
    dispatch_out=70.0,
    shuffle_per_byte=0.06,
    per_byte=0.06,
    framework_mix=_NATIVE_MIX,
    framework_int_breakdown=_NATIVE_INT_BREAKDOWN,
    region_kb=(6.0, 72.0, 96.0),
    region_split=(0.85, 0.13, 0.02),
    indirect_fraction=0.004,
    static_sites=384,
    ilp_factor=1.05,
    shuffle_is_streaming=True,  # message packing is tight loops
    startup_instructions=5e7,
    instruction_rate=3.2e9,
    framework_state_kb=256.0,
    des_cpu_factor=4.0,
)

HIVE_TRAITS = StackTraits(
    name="Hive",
    dispatch_in=3800.0,
    dispatch_out=2200.0,
    shuffle_per_byte=1.0,
    per_byte=0.55,
    framework_mix=_JVM_MIX,
    framework_int_breakdown=_JVM_INT_BREAKDOWN,
    region_kb=(14.0, 128.0, 1024.0),
    region_split=(0.90, 0.08, 0.02),
    indirect_fraction=0.05,
    static_sites=4096,
    ilp_factor=1.00,
    shuffle_is_streaming=True,  # rides Hadoop's shuffle
    startup_instructions=6e8,
    instruction_rate=2.5e9,
    framework_state_kb=1536.0,
    des_cpu_factor=8.0,
)

SHARK_TRAITS = StackTraits(
    name="Shark",
    dispatch_in=3000.0,
    dispatch_out=2000.0,
    shuffle_per_byte=0.9,
    per_byte=0.4,
    framework_mix=_JVM_MIX,
    framework_int_breakdown=_JVM_INT_BREAKDOWN,
    region_kb=(14.0, 192.0, 896.0),
    region_split=(0.86, 0.105, 0.035),
    indirect_fraction=0.055,
    static_sites=4096,
    ilp_factor=1.00,
    shuffle_is_streaming=False,  # rides Spark's object shuffle
    startup_instructions=4e8,
    instruction_rate=2.7e9,
    framework_state_kb=1536.0,
    des_cpu_factor=6.0,
)

IMPALA_TRAITS = StackTraits(
    name="Impala",
    dispatch_in=420.0,
    dispatch_out=320.0,
    shuffle_per_byte=0.25,
    per_byte=0.1,
    framework_mix=_NATIVE_MIX,
    framework_int_breakdown=_NATIVE_INT_BREAKDOWN,
    region_kb=(12.0, 96.0, 320.0),
    region_split=(0.90, 0.085, 0.015),
    indirect_fraction=0.015,
    static_sites=1024,
    ilp_factor=1.15,
    shuffle_is_streaming=True,  # vectorised native exchanges
    startup_instructions=1e8,
    instruction_rate=3.0e9,
    framework_state_kb=768.0,
    des_cpu_factor=2.0,
)

HBASE_TRAITS = StackTraits(
    name="HBase",
    dispatch_in=9000.0,
    dispatch_out=7000.0,
    shuffle_per_byte=1.0,
    per_byte=0.8,
    framework_mix=_JVM_MIX,
    framework_int_breakdown=_JVM_INT_BREAKDOWN,
    region_kb=(20.0, 224.0, 2560.0),
    region_split=(0.60, 0.285, 0.115),
    indirect_fraction=0.06,
    static_sites=8192,
    ilp_factor=0.80,
    shuffle_is_streaming=False,
    startup_instructions=8e8,
    instruction_rate=2.2e9,
    framework_state_kb=2048.0,
    des_cpu_factor=10.0,
)


@dataclass
class WorkloadResult:
    """Everything a workload execution yields.

    Attributes:
        name: Workload identifier (e.g. ``"S-WordCount"``).
        output: The functional result (counts, sorted keys, rows, ...).
        profile: Behaviour profile for the uarch simulators.
        meter: The merged meter (data-flow volumes for §3.2.2).
        system: Cluster system metrics (None for unclustered runs).
        elapsed: Simulated wall-clock seconds (None for unclustered runs).
        segments: Optional per-phase (profile, weight) samples — the
            paper's §5.4 study samples Hadoop runs at five execution
            points (Map 0-1%, Map 50-51%, Map 99-100%, Reduce 0-1%,
            Reduce 99-100%) and takes the weighted mean of the segment
            simulations.
    """

    name: str
    output: object
    profile: BehaviorProfile
    meter: Meter
    system: Optional[object] = None
    elapsed: Optional[float] = None
    segments: Optional[list] = None


def build_profile(
    name: str,
    meter: Meter,
    stack: StackTraits,
    kernel: KernelTraits,
    data: DataFootprint,
    threads: int = 6,
    offcore_write_share: float = 0.3,
) -> BehaviorProfile:
    """Compose a kernel execution and a stack model into a profile.

    The framework-instruction share determines both the instruction mix
    blend and the dynamic weight of the framework code regions — the
    mechanism behind the paper's footprint findings.
    """
    kernel_mix = meter.kernel_mix()
    if kernel_mix.total <= 0:
        # Pure-dispatch executions (e.g. a LIMIT-only query, a collective
        # that only moves data) still retire a sliver of user code.
        kernel_mix = InstructionMix.from_ratios(
            1000.0, load=0.25, store=0.1, branch=0.15, integer=0.4,
            fp=0.02, other=0.08,
        )
    kernel_instr = kernel_mix.total
    dispatch_instr, streaming_instr = stack.framework_components(meter)
    framework_instr = dispatch_instr + streaming_instr
    framework_mix = InstructionMix.from_ratios(
        framework_instr, **stack.framework_mix
    )
    mix = kernel_mix + framework_mix
    total_instr = mix.total
    framework_share = framework_instr / total_instr
    dispatch_share = dispatch_instr / total_instr
    streaming_share = streaming_instr / total_instr

    kernel_breakdown = meter.kernel_int_breakdown()
    kernel_ints = kernel_mix.counts[InstructionClass.INTEGER]
    framework_ints = framework_mix.counts[InstructionClass.INTEGER]
    int_total = max(1e-9, kernel_ints + framework_ints)
    breakdown = IntBreakdown(
        int_addr=(
            kernel_breakdown.int_addr * kernel_ints
            + stack.framework_int_breakdown.int_addr * framework_ints
        )
        / int_total,
        fp_addr=(
            kernel_breakdown.fp_addr * kernel_ints
            + stack.framework_int_breakdown.fp_addr * framework_ints
        )
        / int_total,
        other=(
            kernel_breakdown.other * kernel_ints
            + stack.framework_int_breakdown.other * framework_ints
        )
        / int_total,
    )

    hot_kb, warm_kb, cold_kb = stack.region_kb
    hot_split, warm_split, cold_split = stack.region_split
    kernel_weight = 1.0 - framework_share
    # Streaming framework instructions execute in the hot region;
    # dispatch instructions spread per the stack's region split.
    regions = [
        CodeRegion(
            "kernel",
            int(kernel.code_kb * 1024),
            weight=kernel_weight,
            sequentiality=8.0,
        ),
        CodeRegion(
            "framework-hot",
            int(hot_kb * 1024),
            weight=streaming_share + dispatch_share * hot_split,
            sequentiality=6.0,
        ),
        # Code popularity inside the warm framework region is itself
        # skewed: a hot core (a third of the region) takes most fetches
        # and stays L2-resident, the tail churns — without this split the
        # whole warm region thrashes the 256 KB L2, which real JVMs do
        # not do.
        CodeRegion(
            "framework-warm-core",
            max(LINE_BYTES, int(warm_kb * 1024 * 0.4)),
            weight=dispatch_share * warm_split * 0.76,
            sequentiality=5.0,
        ),
        CodeRegion(
            "framework-warm-tail",
            max(LINE_BYTES, int(warm_kb * 1024 * 0.6)),
            weight=dispatch_share * warm_split * 0.24,
            sequentiality=5.0,
        ),
        CodeRegion(
            "framework-cold",
            int(cold_kb * 1024),
            weight=dispatch_share * cold_split,
            sequentiality=4.0,
        ),
    ]

    # Blend branch behaviour by instruction share.
    def blend(kernel_value: float, framework_value: float) -> float:
        return (
            kernel_value * (1.0 - framework_share)
            + framework_value * framework_share
        )

    fw = _FRAMEWORK_BRANCHES
    loop_f = blend(kernel.loop_fraction, fw["loop_fraction"])
    pattern_f = blend(kernel.pattern_fraction, fw["pattern_fraction"])
    datadep_f = blend(kernel.data_dependent_fraction, fw["data_dependent_fraction"])
    norm = loop_f + pattern_f + datadep_f
    branches = BranchProfile(
        loop_fraction=loop_f / norm,
        pattern_fraction=pattern_f / norm,
        data_dependent_fraction=datadep_f / norm,
        taken_prob=blend(kernel.taken_prob, fw["taken_prob"]),
        loop_trip=max(4, int(round(blend(kernel.loop_trip, fw["loop_trip"])))),
        indirect_fraction=stack.indirect_fraction,
        indirect_targets=4,
        static_sites=stack.static_sites,
    )

    return BehaviorProfile(
        name=name,
        mix=mix,
        int_breakdown=breakdown,
        code=CodeFootprint(regions=regions),
        data=data,
        branches=branches,
        ilp=kernel.ilp * stack.ilp_factor,
        instructions=total_instr,
        fp_ops=meter.fp_ops,
        bytes_processed=max(1, meter.bytes_in),
        threads=threads,
        offcore_write_share=offcore_write_share,
    )


class SoftwareStack:
    """Base class for stack engines.

    Concrete engines (Hadoop, Spark, MPI, SQL engines, HBase) execute
    real kernels over generated data, meter the work, and return
    :class:`WorkloadResult` objects via :func:`build_profile`.
    """

    traits: StackTraits

    def __init__(self, traits: StackTraits):
        self.traits = traits

    def data_footprint(
        self,
        meter: Meter,
        kernel: KernelTraits,
        state_bytes: int,
        state_fraction: float = 0.03,
        stream_fraction: float = 0.01,
    ) -> DataFootprint:
        """Standard data-footprint construction.

        The stream region is sized from the metered input bytes (capped
        to a sampling window); resident state combines the workload's
        structures with the stack's framework buffers.
        """
        stream_bytes = max(64 * 1024, min(meter.bytes_in, 64 * 1024 * 1024))
        total_state = state_bytes + int(self.traits.framework_state_kb * 1024)
        hot_fraction = max(0.0, 1.0 - state_fraction - stream_fraction)
        return DataFootprint(
            stream_bytes=stream_bytes,
            state_bytes=total_state,
            state_fraction=state_fraction,
            hot_bytes=int(self.traits.hot_data_kb * 1024),
            hot_fraction=hot_fraction,
            stream_reuse=2.0,
            state_zipf=kernel.state_zipf,
        )
