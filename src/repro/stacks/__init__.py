"""Software-stack engines.

Functional models of the stacks the paper benchmarks — Hadoop MapReduce,
Spark RDDs, MPI, the Hive/Shark/Impala SQL engines and the HBase KV
store — each of which really executes workload kernels over generated
data while accounting the micro-architectural consequences of its
layering (dispatch depth, instruction footprint, indirect-branch
pressure).  The paper's central §5.5 finding — an order of magnitude L1I
difference between MPI and Hadoop/Spark implementations of the same
algorithm — emerges from these per-stack traits.
"""

from repro.stacks.base import (
    Meter,
    StackTraits,
    SoftwareStack,
    WorkloadResult,
    HADOOP_TRAITS,
    SPARK_TRAITS,
    MPI_TRAITS,
    HIVE_TRAITS,
    SHARK_TRAITS,
    IMPALA_TRAITS,
    HBASE_TRAITS,
)
from repro.stacks.hadoop import Hadoop, MapReduceJob
from repro.stacks.spark import Spark, Rdd
from repro.stacks.mpi import MpiRuntime, MpiCommunicator
from repro.stacks.sql import HiveEngine, SharkEngine, ImpalaEngine, Query
from repro.stacks.hbase import HBase
from repro.stacks.scheduler import (
    JobFailedError,
    RecoveryPolicy,
    TaskDescriptor,
    policy_for,
    run_waves,
)

__all__ = [
    "Meter",
    "StackTraits",
    "SoftwareStack",
    "WorkloadResult",
    "HADOOP_TRAITS",
    "SPARK_TRAITS",
    "MPI_TRAITS",
    "HIVE_TRAITS",
    "SHARK_TRAITS",
    "IMPALA_TRAITS",
    "HBASE_TRAITS",
    "Hadoop",
    "MapReduceJob",
    "Spark",
    "Rdd",
    "MpiRuntime",
    "MpiCommunicator",
    "HiveEngine",
    "SharkEngine",
    "ImpalaEngine",
    "Query",
    "HBase",
    "JobFailedError",
    "RecoveryPolicy",
    "TaskDescriptor",
    "policy_for",
    "run_waves",
]
