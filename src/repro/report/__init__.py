"""Text rendering of experiment outputs (tables and series)."""

from repro.report.tables import render_table, render_series, render_grouped_bars

__all__ = ["render_table", "render_series", "render_grouped_bars"]
