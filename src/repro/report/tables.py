"""ASCII table and series rendering used by benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width table.

    Floats are formatted with ``float_format``; everything else via
    ``str``.  Column widths adapt to content.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: str = "",
    float_format: str = "{:.4f}",
) -> str:
    """Render several named series over a shared x-axis (figure data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    return render_table(headers, rows, title=title, float_format=float_format)


def render_grouped_bars(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    title: str = "",
) -> str:
    """ASCII bar chart: one bar per (group, key) pair."""
    peak = max(
        (value for bars in groups.values() for value in bars.values()),
        default=1.0,
    )
    peak = max(peak, 1e-12)
    lines = [title] if title else []
    for group, bars in groups.items():
        lines.append(group)
        for key, value in bars.items():
            bar = "#" * int(round(width * value / peak))
            lines.append(f"  {key:20s} {bar} {value:.3f}")
    return "\n".join(lines)
