"""The run registry: versioned JSON records of every experiment run.

A :class:`RunRecord` is what outlives a run.  Each ``repro fig`` /
``repro table`` / ``repro run`` / ``repro faults`` / ``repro chaos`` /
bench invocation serialises one into the registry directory
(``.repro-runs/`` by default, overridable via ``REPRO_RUNS_DIR`` or the
CLI's ``--runs-dir``), carrying:

- **provenance** — git SHA, seed, scale, platform(s), python version
  and a config hash, so any two records can be meaningfully compared;
- **metrics** — a flat ``name -> float`` mapping (the comparable
  surface that :mod:`repro.obs.report` diffs and that
  :mod:`repro.obs.anchors` scores against the paper);
- **series** — the experiment's full rows/series payload, for humans
  and export;
- **timings** — the wall-clock ``CounterRegistry`` snapshot.  Wall
  time is hardware noise, so it lives outside ``metrics`` and is never
  part of a drift comparison.

Determinism contract: for a fixed seed + scale + platform, ``metrics``
and ``series`` are byte-identical across runs; only ``created_at``,
``run_id`` and ``timings`` may differ.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fsio import fsync_dir, quarantine_corrupt, write_json_atomic

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_RUNS_DIR",
    "RUNS_DIR_ENV",
    "runs_dir_default",
    "fsync_dir",
    "atomic_write_json",
    "quarantine_corrupt",
    "git_sha",
    "config_hash",
    "build_provenance",
    "flatten_rows",
    "RunRecord",
    "RunRegistry",
]

#: Bumped whenever the record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default registry directory (relative to the working directory).
DEFAULT_RUNS_DIR = ".repro-runs"

#: Environment override for the registry directory.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"


def runs_dir_default() -> str:
    """The registry directory: ``$REPRO_RUNS_DIR`` or ``.repro-runs``."""
    return os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR


def atomic_write_json(path: str, payload: object, *, io=None) -> None:
    """Crash-safe JSON write — alias for :func:`repro.fsio.write_json_atomic`.

    Kept under its historical name because checkpoint code and tests
    import it from here; the implementation (tmp + fsync + replace +
    dir fsync + tmp cleanup on failure) lives in :mod:`repro.fsio`.
    """
    write_json_atomic(path, payload, io=io)


def git_sha() -> str:
    """Public alias for the provenance git probe (``repro_build_info``)."""
    return _git_sha()


def _git_sha() -> str:
    """The current commit SHA, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):  # repro: allow[ERR002] — provenance probe; "unknown" is the answer
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_hash(payload: Dict[str, object]) -> str:
    """Deterministic short hash of a JSON-serialisable config mapping."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def build_provenance(
    *,
    experiment: str,
    seed: int,
    scale: float,
    platforms: List[str],
    config: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the provenance block for one run."""
    settings: Dict[str, object] = {
        "experiment": experiment,
        "seed": seed,
        "scale": scale,
        "platforms": list(platforms),
    }
    if config:
        settings.update(config)
    return {
        "git_sha": _git_sha(),
        "seed": seed,
        "scale": scale,
        "platforms": list(platforms),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "config_hash": config_hash(settings),
    }


def flatten_rows(
    prefix: str, headers: List[str], rows: List[list]
) -> Dict[str, float]:
    """Flatten tabular experiment rows into registry metrics.

    The first column names the row; every numeric cell lands at
    ``<prefix>.<row name>.<header>``.  Non-numeric cells (outcome
    strings, member lists) are skipped — ``metrics`` is floats only.
    """
    metrics: Dict[str, float] = {}
    for row in rows:
        name = str(row[0])
        for header, value in zip(headers[1:], row[1:]):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"{prefix}.{name}.{header}"] = float(value)
    return metrics


@dataclass
class RunRecord:
    """One persisted run: provenance + comparable metrics + payload."""

    experiment: str
    kind: str
    metrics: Dict[str, float]
    provenance: Dict[str, object]
    series: Dict[str, object] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION
    created_at: str = ""
    run_id: str = ""

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "run_id": self.run_id,
            "experiment": self.experiment,
            "kind": self.kind,
            "created_at": self.created_at,
            "provenance": dict(self.provenance),
            "metrics": dict(self.metrics),
            "series": dict(self.series),
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported run-record schema {version!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        return cls(
            experiment=data["experiment"],
            kind=data["kind"],
            metrics={k: float(v) for k, v in data["metrics"].items()},
            provenance=dict(data["provenance"]),
            series=dict(data.get("series", {})),
            timings={k: float(v) for k, v in data.get("timings", {}).items()},
            schema_version=version,
            created_at=data.get("created_at", ""),
            run_id=data.get("run_id", ""),
        )


class RunRegistry:
    """A directory of ``RunRecord`` JSON files.

    File layout is flat: ``<runs dir>/<run_id>.json`` where ``run_id``
    is ``<experiment>-<utc stamp>-<config hash>`` (a numeric suffix
    disambiguates records saved within the same second).
    """

    def __init__(self, root: Optional[str] = None, *, io=None):
        self.root = root if root is not None else runs_dir_default()
        #: Durable-I/O backend for record writes (None → the real
        #: filesystem); the crash-consistency campaign injects a
        #: :class:`repro.fsio.FaultyIO` here.
        self.io = io

    # ---- writing ----------------------------------------------------------
    def save(self, record: RunRecord) -> str:
        """Assign identity, write the record, return its path."""
        os.makedirs(self.root, exist_ok=True)
        if not record.created_at:
            # created_at is quarantined by the determinism contract:
            # it may differ between runs and is never diffed.
            record.created_at = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()  # repro: allow[DET003]
            )
        if not record.run_id:
            stamp = record.created_at.replace(":", "").replace("-", "")
            stamp = stamp.replace("T", "-").rstrip("Z")
            short = record.provenance.get("config_hash", "nohash")
            base = f"{record.experiment}-{stamp}-{short}"
            run_id, n = base, 1
            while os.path.exists(self._path(run_id)):
                run_id = f"{base}.{n}"
                n += 1
            record.run_id = run_id
        path = self._path(record.run_id)
        atomic_write_json(path, record.to_dict(), io=self.io)
        return path

    def _path(self, run_id: str) -> str:
        return os.path.join(self.root, f"{run_id}.json")

    # ---- reading ----------------------------------------------------------
    def load_path(self, path: str) -> RunRecord:
        with open(path, "r", encoding="utf-8") as handle:
            return RunRecord.from_dict(json.load(handle))

    def scan(self, *, quarantine: bool = False):
        """One sweep over every record file: ``(records, problems)``.

        ``problems`` is a list of ``(path, reason)`` pairs for files
        that could not be read as current-schema records.  With
        ``quarantine=True`` (what :meth:`records` uses) corrupt files
        are renamed aside; with the default ``False`` the scan is
        strictly read-only — the observatory renders the same runs
        directory twice and must find it byte-identical both times.
        """
        loaded: List[RunRecord] = []
        problems: List[tuple] = []
        if not os.path.isdir(self.root):
            return loaded, problems
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                record = self.load_path(path)
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):  # repro: allow[ERR002] — corrupt record is surfaced (and optionally quarantined), not lost
                # Truncated or corrupt on disk (a crash mid-write under a
                # pre-atomic writer): move it aside so report/history keep
                # working, and keep the evidence for inspection.
                if quarantine:
                    quarantine_corrupt(path)
                problems.append((path, "corrupt or truncated record"))
                continue
            except (ValueError, KeyError) as error:
                # Foreign or future-schema file; not ours to read.
                problems.append((path, str(error)))
                continue
            loaded.append(record)
        loaded.sort(key=lambda r: (r.created_at, r.run_id))
        return loaded, problems

    def records(self, experiment: Optional[str] = None) -> List[RunRecord]:
        """All records (optionally one experiment's), oldest first."""
        loaded, _ = self.scan(quarantine=True)
        if experiment is not None:
            loaded = [r for r in loaded if r.experiment == experiment]
        return loaded

    def experiments(self) -> List[str]:
        """Distinct experiment names present in the registry."""
        return sorted({record.experiment for record in self.records()})

    def latest(self, experiment: str) -> Optional[RunRecord]:
        """The most recent record for one experiment, if any."""
        records = self.records(experiment)
        return records[-1] if records else None

    def resolve(self, ref: str) -> RunRecord:
        """Resolve a CLI reference to a record.

        Accepted forms, tried in order:

        - a path to a record file (``benchmarks/baselines/fig1.json``),
        - a run id stored in this registry,
        - ``<experiment>`` — that experiment's latest record,
        - ``<experiment>~N`` — the N-th record before the latest.
        """
        if os.path.isfile(ref):
            return self.load_path(ref)
        if os.path.isfile(self._path(ref)):
            return self.load_path(self._path(ref))
        name, back = ref, 0
        if "~" in ref:
            name, _, suffix = ref.rpartition("~")
            try:
                back = int(suffix)
            except ValueError:
                name, back = ref, 0
        records = self.records(name)
        if not records:
            raise KeyError(
                f"no run record matches {ref!r} in {self.root!r} "
                f"(known experiments: {', '.join(self.experiments()) or 'none'})"
            )
        if back >= len(records):
            raise KeyError(
                f"{name!r} has only {len(records)} record(s); "
                f"cannot step back {back}"
            )
        return records[-1 - back]
