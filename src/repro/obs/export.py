"""Trace exporters: Chrome ``trace_event`` JSON and text summaries.

The JSON exporter emits the Trace Event Format that Perfetto and
``chrome://tracing`` load directly: complete (``"X"``) events for spans,
instant (``"i"``) events for marks, counter (``"C"``) events for the
sampled per-node utilization gauges, and metadata (``"M"``) events
naming the process and per-track threads.  Simulated seconds become
microseconds (the format's timestamp unit).

The text exporter renders a per-category summary table and a flame-style
listing of the slowest spans — the quick look before reaching for
Perfetto.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.tracer import Span, Tracer
from repro.report.tables import render_table

#: Single simulated process: every track is a thread of it.
TRACE_PID = 1


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable tid assignment: scheduler first, then tracks by appearance."""
    tids: Dict[str, int] = {"scheduler": 0}
    sources = (
        [s.track for s in tracer.spans]
        + [i.track for i in tracer.instants]
        + [c.track for c in tracer.samples]
    )
    for track in sources:
        if track not in tids:
            tids[track] = len(tids)
    return tids


def to_chrome_trace(tracer: Tracer, process_name: str = "repro-sim") -> dict:
    """The tracer's contents as a Chrome trace_event JSON object."""
    tids = _track_ids(tracer)
    events: List[dict] = [
        {
            "name": "process_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        end = span.end if span.end is not None else span.start
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": TRACE_PID,
                "tid": tids[span.track],
                "args": args,
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.category,
                "ph": "i",
                "s": "t",
                "ts": instant.time * 1e6,
                "pid": TRACE_PID,
                "tid": tids[instant.track],
                "args": dict(instant.args),
            }
        )
    for sample in tracer.samples:
        events.append(
            {
                "name": sample.name,
                "cat": "telemetry",
                "ph": "C",
                "ts": sample.time * 1e6,
                "pid": TRACE_PID,
                "tid": tids[sample.track],
                "args": dict(sample.values),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated seconds x 1e6"},
    }


def write_chrome_trace(
    tracer: Tracer, path: str, process_name: str = "repro-sim"
) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = to_chrome_trace(tracer, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def sweep_records_to_chrome(
    records: List[dict], trace_name: str = "repro-sweep"
) -> dict:
    """Merge raw sweep span records into one multi-process Chrome trace.

    ``records`` are the dicts produced by
    :class:`repro.exec.tracing.SpanWriter` across every process of a
    sweep.  Each *lane* (one per OS process: supervisor, workers,
    serial fallback) becomes its own Chrome ``pid`` with an explicit
    ``tid`` of 0, named via ``process_name`` metadata — so Perfetto
    renders one horizontal track per process, supervisors first.

    Retries of one cell become flow events: the ``cat == "cell"``
    spans of each ``cell_id`` are ordered by start time and every
    consecutive pair is linked with a ``"s"``/``"f"`` arrow (flow id
    ``<cell_id>#<k>``), which is what makes a cell hopping between
    workers visually traceable.

    Timestamps are epoch seconds; the whole trace is rebased to its
    earliest event so viewers start at t=0.
    """

    spans = [r for r in records if r.get("kind") == "span"]
    instants = [r for r in records if r.get("kind") == "instant"]

    first_seen: Dict[str, float] = {}
    os_pid: Dict[str, int] = {}
    for record in spans + instants:
        lane = str(record.get("lane", "unknown"))
        when = float(record.get("t0", record.get("t", 0.0)))
        if lane not in first_seen or when < first_seen[lane]:
            first_seen[lane] = when
        # The lane name embeds the owning OS pid (worker-<pid>-<id> /
        # supervisor-<pid>); prefer it over the record's writer pid,
        # because the supervisor writes queue and killed-attempt spans
        # onto worker lanes.
        if lane not in os_pid:
            parts = lane.split("-")
            embedded = parts[1] if len(parts) >= 2 and parts[1].isdigit() else None
            os_pid[lane] = (
                int(embedded) if embedded else int(record.get("pid", 0))
            )
    lanes = sorted(
        first_seen,
        key=lambda lane: (
            0 if lane.startswith("supervisor") else 1,
            first_seen[lane],
            lane,
        ),
    )
    pids = {lane: index + 1 for index, lane in enumerate(lanes)}
    base = min(first_seen.values()) if first_seen else 0.0

    events: List[dict] = []
    for lane in lanes:
        events.append(
            {
                "name": "process_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": pids[lane],
                "tid": 0,
                "args": {"name": f"{lane} (os pid {os_pid[lane]})"},
            }
        )
        events.append(
            {
                "name": "process_sort_index",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": pids[lane],
                "tid": 0,
                "args": {"sort_index": pids[lane]},
            }
        )

    body: List[dict] = []
    for record in spans:
        lane = str(record.get("lane", "unknown"))
        t0 = float(record.get("t0", 0.0))
        t1 = float(record.get("t1", t0))
        body.append(
            {
                "name": str(record.get("name", "?")),
                "cat": str(record.get("cat", "span")),
                "ph": "X",
                "ts": (t0 - base) * 1e6,
                "dur": max(0.0, (t1 - t0)) * 1e6,
                "pid": pids[lane],
                "tid": 0,
                "args": dict(record.get("args", {})),
            }
        )
    for record in instants:
        lane = str(record.get("lane", "unknown"))
        body.append(
            {
                "name": str(record.get("name", "?")),
                "cat": str(record.get("cat", "mark")),
                "ph": "i",
                "s": "t",
                "ts": (float(record.get("t", 0.0)) - base) * 1e6,
                "pid": pids[lane],
                "tid": 0,
                "args": dict(record.get("args", {})),
            }
        )

    # Flow events: consecutive attempts of the same cell, ordered by
    # start time, regardless of which worker (or run — resumed sweeps
    # append to the same directory) executed them.
    attempts_by_cell: Dict[str, List[dict]] = {}
    for record in spans:
        if record.get("cat") != "cell":
            continue
        cell_id = dict(record.get("args", {})).get("cell_id")
        if cell_id:
            attempts_by_cell.setdefault(str(cell_id), []).append(record)
    flow_links = 0
    for cell_id in sorted(attempts_by_cell):
        chain = sorted(
            attempts_by_cell[cell_id], key=lambda r: float(r.get("t0", 0.0))
        )
        for k in range(len(chain) - 1):
            prev, nxt = chain[k], chain[k + 1]
            flow_id = f"{cell_id}#{k}"
            start_ts = (float(prev.get("t1", prev.get("t0", 0.0))) - base) * 1e6
            finish_ts = (float(nxt.get("t0", 0.0)) - base) * 1e6
            body.append(
                {
                    "name": "retry",
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "ts": start_ts,
                    "pid": pids[str(prev.get("lane", "unknown"))],
                    "tid": 0,
                }
            )
            body.append(
                {
                    "name": "retry",
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": max(finish_ts, start_ts),
                    "pid": pids[str(nxt.get("lane", "unknown"))],
                    "tid": 0,
                }
            )
            flow_links += 1

    body.sort(key=lambda event: event["ts"])
    return {
        "traceEvents": events + body,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "epoch seconds x 1e6, rebased to first event",
            "trace_name": trace_name,
            "lanes": len(lanes),
            "flow_links": flow_links,
        },
    }


def _depth(span: Span, by_id: Dict[int, Span]) -> int:
    depth = 0
    current = span
    while current.parent_id is not None:
        current = by_id[current.parent_id]
        depth += 1
    return depth


def render_trace_summary(tracer: Tracer, top: int = 8) -> str:
    """Category roll-up plus a flame-style view of the span tree."""
    by_category: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        by_category.setdefault(span.category, []).append(span)
    rows = []
    for category, spans in sorted(
        by_category.items(),
        key=lambda item: -sum(s.duration for s in item[1]),
    ):
        durations = [s.duration for s in spans]
        rows.append(
            [
                category,
                len(spans),
                sum(durations),
                sum(durations) / len(durations),
                max(durations),
            ]
        )
    summary = render_table(
        ["category", "spans", "total (s)", "mean (s)", "max (s)"],
        rows,
        title="Span summary (simulated time)",
        float_format="{:.6f}",
    )

    by_id = {s.span_id: s for s in tracer.spans}
    structural = [
        s for s in tracer.spans if s.category in ("job", "stage", "wave")
    ]
    slowest_work = sorted(
        (s for s in tracer.spans if s.category in ("task", "attempt")),
        key=lambda s: -s.duration,
    )[:top]
    lines = ["", "Flame view (job/stage/wave, then slowest work):"]
    for span in structural:
        indent = "  " * _depth(span, by_id)
        lines.append(
            f"  {indent}{span.name:<24s} {span.duration:12.6f} s"
        )
    for span in slowest_work:
        where = span.args.get("node", span.track)
        lines.append(
            f"  * {span.name:<22s} {span.duration:12.6f} s  on {where}"
            f"  [{span.category}]"
        )
    if tracer.samples:
        lines.append(
            f"  counters: {len(tracer.samples)} samples across "
            f"{len({s.track for s in tracer.samples})} nodes"
        )
    return summary + "\n" + "\n".join(lines)
