"""Trace exporters: Chrome ``trace_event`` JSON and text summaries.

The JSON exporter emits the Trace Event Format that Perfetto and
``chrome://tracing`` load directly: complete (``"X"``) events for spans,
instant (``"i"``) events for marks, counter (``"C"``) events for the
sampled per-node utilization gauges, and metadata (``"M"``) events
naming the process and per-track threads.  Simulated seconds become
microseconds (the format's timestamp unit).

The text exporter renders a per-category summary table and a flame-style
listing of the slowest spans — the quick look before reaching for
Perfetto.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.obs.tracer import Span, Tracer
from repro.report.tables import render_table

#: Single simulated process: every track is a thread of it.
TRACE_PID = 1


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable tid assignment: scheduler first, then tracks by appearance."""
    tids: Dict[str, int] = {"scheduler": 0}
    sources = (
        [s.track for s in tracer.spans]
        + [i.track for i in tracer.instants]
        + [c.track for c in tracer.samples]
    )
    for track in sources:
        if track not in tids:
            tids[track] = len(tids)
    return tids


def to_chrome_trace(tracer: Tracer, process_name: str = "repro-sim") -> dict:
    """The tracer's contents as a Chrome trace_event JSON object."""
    tids = _track_ids(tracer)
    events: List[dict] = [
        {
            "name": "process_name",
            "cat": "__metadata",
            "ph": "M",
            "ts": 0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "cat": "__metadata",
                "ph": "M",
                "ts": 0,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        end = span.end if span.end is not None else span.start
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": TRACE_PID,
                "tid": tids[span.track],
                "args": args,
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": instant.category,
                "ph": "i",
                "s": "t",
                "ts": instant.time * 1e6,
                "pid": TRACE_PID,
                "tid": tids[instant.track],
                "args": dict(instant.args),
            }
        )
    for sample in tracer.samples:
        events.append(
            {
                "name": sample.name,
                "cat": "telemetry",
                "ph": "C",
                "ts": sample.time * 1e6,
                "pid": TRACE_PID,
                "tid": tids[sample.track],
                "args": dict(sample.values),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated seconds x 1e6"},
    }


def write_chrome_trace(
    tracer: Tracer, path: str, process_name: str = "repro-sim"
) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    trace = to_chrome_trace(tracer, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def _depth(span: Span, by_id: Dict[int, Span]) -> int:
    depth = 0
    current = span
    while current.parent_id is not None:
        current = by_id[current.parent_id]
        depth += 1
    return depth


def render_trace_summary(tracer: Tracer, top: int = 8) -> str:
    """Category roll-up plus a flame-style view of the span tree."""
    by_category: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        by_category.setdefault(span.category, []).append(span)
    rows = []
    for category, spans in sorted(
        by_category.items(),
        key=lambda item: -sum(s.duration for s in item[1]),
    ):
        durations = [s.duration for s in spans]
        rows.append(
            [
                category,
                len(spans),
                sum(durations),
                sum(durations) / len(durations),
                max(durations),
            ]
        )
    summary = render_table(
        ["category", "spans", "total (s)", "mean (s)", "max (s)"],
        rows,
        title="Span summary (simulated time)",
        float_format="{:.6f}",
    )

    by_id = {s.span_id: s for s in tracer.spans}
    structural = [
        s for s in tracer.spans if s.category in ("job", "stage", "wave")
    ]
    slowest_work = sorted(
        (s for s in tracer.spans if s.category in ("task", "attempt")),
        key=lambda s: -s.duration,
    )[:top]
    lines = ["", "Flame view (job/stage/wave, then slowest work):"]
    for span in structural:
        indent = "  " * _depth(span, by_id)
        lines.append(
            f"  {indent}{span.name:<24s} {span.duration:12.6f} s"
        )
    for span in slowest_work:
        where = span.args.get("node", span.track)
        lines.append(
            f"  * {span.name:<22s} {span.duration:12.6f} s  on {where}"
            f"  [{span.category}]"
        )
    if tracer.samples:
        lines.append(
            f"  counters: {len(tracer.samples)} samples across "
            f"{len({s.track for s in tracer.samples})} nodes"
        )
    return summary + "\n" + "\n".join(lines)
