"""Deterministic static-site renderer for the observatory.

``repro dash`` turns an :class:`~repro.obs.observatory.ObservatoryModel`
into a multi-page HTML site: fidelity scorecard with anchor trends,
per-metric history with drift annotations, sweep lane timelines from
the merged span files, hot-function tables from host profiles, bench
trends, and a health panel (writer drop counters, fsck findings,
skipped artifacts).

Everything is rendered byte-deterministically: no "generated at"
stamps (every timestamp shown comes from record data), every iteration
sorted, floats formatted through one helper.  The golden test renders
the same fixture twice under two ``PYTHONHASHSEED`` values and
compares output bytes — any hidden set/dict order or clock read fails
it.  This is also the *only* HTML code path: ``repro history --html``
delegates here via :func:`render_history_page`.
"""

from __future__ import annotations

import html
import os
from typing import List, Optional, Sequence, Tuple

from repro.obs.anchors import (
    FAIL,
    PASS,
    WARN,
    anchored_experiments,
    evaluate_record,
)
from repro.obs.observatory import ObservatoryModel, SweepView
from repro.obs.report import (
    DEFAULT_ABS_THRESHOLD,
    DEFAULT_REL_THRESHOLD,
    History,
)

__all__ = [
    "PAGES",
    "render_history_page",
    "render_page",
    "render_site",
]

#: Every page the site renders, in navigation order.
PAGES: Tuple[Tuple[str, str], ...] = (
    ("index.html", "scorecard"),
    ("history.html", "history"),
    ("sweeps.html", "sweeps"),
    ("profiles.html", "profiles"),
    ("bench.html", "bench"),
    ("health.html", "health"),
)

_CSS = """
body{font-family:system-ui,sans-serif;margin:0;color:#1a2030;background:#f6f7fa}
nav{background:#1f2a44;padding:.6em 1.2em}
nav a{color:#cdd6ee;text-decoration:none;margin-right:1.2em;font-size:14px}
nav a.active{color:#fff;font-weight:600;border-bottom:2px solid #7aa2ff}
main{padding:1.2em 1.6em;max-width:1100px}
h1{font-size:20px;margin:.2em 0 .6em}
h2{font-size:16px;margin:1.2em 0 .4em;border-bottom:1px solid #d8dce6;padding-bottom:.2em}
h3{font-size:13px;margin:.8em 0 .2em}
table{border-collapse:collapse;font-size:12px;margin:.4em 0}
th,td{border:1px solid #d8dce6;padding:.25em .6em;text-align:left}
th{background:#e8ecf4}
p,li{font-size:13px}
.tiles{display:flex;gap:.8em;flex-wrap:wrap;margin:.6em 0}
.tile{background:#fff;border:1px solid #d8dce6;border-radius:6px;padding:.6em 1em;min-width:7em}
.tile b{display:block;font-size:20px}
.tile span{font-size:11px;color:#667}
.pass{color:#1c7c3c}.warn{color:#b07c10}.fail{color:#b02020}
.strip span{display:inline-block;width:14px;height:14px;margin-right:2px;border-radius:2px}
.s-pass{background:#34a853}.s-warn{background:#e8a80c}.s-fail{background:#d33a2c}
.m{margin-bottom:1.1em;background:#fff;border:1px solid #d8dce6;border-radius:6px;padding:.5em .8em}
.m p{margin:.2em 0;color:#556;font-size:12px}
.lanes{background:#fff;border:1px solid #d8dce6;border-radius:6px;padding:.5em .8em;overflow-x:auto}
.note{color:#667;font-size:12px}
.bar{display:inline-block;height:9px;background:#4060c0;border-radius:2px;vertical-align:middle}
""".strip()


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Optional[float]) -> str:
    """One float formatter for the whole site (diff-stable output)."""
    if value is None:
        return "-"
    return f"{value:.6g}"


def render_page(
    title: str,
    body: str,
    *,
    active: Optional[str] = None,
    nav: bool = True,
    subtitle: str = "",
) -> str:
    """The shared page chrome every observatory page uses."""
    nav_html = ""
    if nav:
        links = []
        for page, label in PAGES:
            cls = " class='active'" if label == active else ""
            links.append(f"<a href='{page}'{cls}>{_esc(label)}</a>")
        nav_html = "<nav>" + "".join(links) + "</nav>"
    sub = f"<p class='note'>{_esc(subtitle)}</p>" if subtitle else ""
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        f"{nav_html}<main><h1>{_esc(title)}</h1>{sub}{body}</main>"
        "</body></html>\n"
    )


# ---------------------------------------------------------------------------
# shared SVG helpers
# ---------------------------------------------------------------------------

def _series_svg(
    values: Sequence[Optional[float]],
    *,
    width: int = 480,
    height: int = 60,
    drift_marks: bool = True,
) -> str:
    """One metric series as an inline SVG polyline.

    With ``drift_marks`` every run-over-run move beyond the diff
    thresholds (the same ones ``repro diff`` gates on) gets a red
    marker whose tooltip names the delta — the drift annotation layer.
    """
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if not points:
        return "<p class='note'>no data</p>"
    lo = min(v for _, v in points)
    hi = max(v for _, v in points)
    span = (hi - lo) or 1.0
    step = width / max(1, len(values) - 1)

    def x(i: int) -> float:
        return i * step

    def y(v: float) -> float:
        return height - (v - lo) / span * (height - 8) - 4

    coords = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in points)
    marks = []
    if drift_marks:
        for (i_prev, prev), (i_cur, cur) in zip(points, points[1:]):
            delta = abs(cur - prev)
            relative = (
                delta / abs(prev) if prev
                else (float("inf") if delta else 0.0)
            )
            if delta > DEFAULT_ABS_THRESHOLD \
                    and relative > DEFAULT_REL_THRESHOLD:
                rel_text = (
                    f"{100 * (cur - prev) / abs(prev):+.2f}%"
                    if prev else "new-nonzero"
                )
                marks.append(
                    f"<circle cx='{x(i_cur):.1f}' cy='{y(cur):.1f}' r='3' "
                    "fill='#d33a2c'>"
                    f"<title>run {i_prev}&#8594;{i_cur}: "
                    f"{_fmt(prev)}&#8594;{_fmt(cur)} ({rel_text})</title>"
                    "</circle>"
                )
    return (
        f"<svg width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
        f"<polyline fill='none' stroke='#4060c0' stroke-width='1.5' "
        f"points='{coords}'/>" + "".join(marks) + "</svg>"
    )


def _metric_section(
    name: str, values: Sequence[Optional[float]], *, drift_marks: bool = True
) -> str:
    """One titled metric block: SVG trend + summary line."""
    present = [v for v in values if v is not None]
    if not present:
        return ""
    drifts = 0
    for prev, cur in zip(present, present[1:]):
        delta = abs(cur - prev)
        relative = (
            delta / abs(prev) if prev else (float("inf") if delta else 0.0)
        )
        if delta > DEFAULT_ABS_THRESHOLD and relative > DEFAULT_REL_THRESHOLD:
            drifts += 1
    drift_note = (
        f" · <span class='fail'>{drifts} drift(s) beyond "
        f"{100 * DEFAULT_REL_THRESHOLD:g}%</span>" if drifts else ""
    )
    return (
        f"<div class='m'><h3>{_esc(name)}</h3>"
        + _series_svg(values, drift_marks=drift_marks)
        + f"<p>last {_fmt(present[-1])} · min {_fmt(min(present))} · "
        f"max {_fmt(max(present))} · {len(present)} runs{drift_note}</p>"
        "</div>"
    )


def render_history_page(history: History) -> str:
    """The standalone ``repro history --html`` page.

    One code path for all HTML: :meth:`History.to_html` delegates here,
    and the observatory's history page is built from the same
    :func:`_metric_section` blocks.
    """
    sections = [
        _metric_section(name, history.series[name])
        for name in sorted(history.series)
    ]
    telemetry = [
        _metric_section(name, history.telemetry[name], drift_marks=False)
        for name in sorted(history.telemetry)
    ]
    body = "".join(s for s in sections if s)
    if not body:
        body = "<p>no numeric series recorded</p>"
    if any(telemetry):
        body += (
            "<h2>executor telemetry (wall-clock; never diffed)</h2>"
            + "".join(t for t in telemetry if t)
        )
    return render_page(
        f"repro history — {history.experiment}",
        body,
        nav=False,
        subtitle=f"{len(history.run_ids)} recorded runs",
    )


# ---------------------------------------------------------------------------
# the scorecard page
# ---------------------------------------------------------------------------

def _worst_status(statuses: Sequence[str]) -> str:
    if FAIL in statuses:
        return FAIL
    if WARN in statuses:
        return WARN
    return PASS


def _scorecard_page(model: ObservatoryModel) -> str:
    rows = []
    strips = []
    missing = []
    counts = {PASS: 0, WARN: 0, FAIL: 0}
    for experiment in anchored_experiments():
        records = model.by_experiment(experiment)
        if not records:
            missing.append(experiment)
            continue
        checks = evaluate_record(records[-1])
        for check in checks:
            counts[check.status] += 1
            anchor = check.anchor
            rows.append(
                "<tr><td>" + _esc(anchor.experiment)
                + "</td><td>" + _esc(anchor.metric)
                + "</td><td>" + _fmt(anchor.paper_value)
                + "</td><td>" + (
                    _fmt(check.value) if check.value is not None
                    else "missing"
                )
                + "</td><td>&plusmn;" + _fmt(anchor.band)
                + f"</td><td class='{check.status}'>" + _esc(check.status)
                + "</td><td>" + _esc(anchor.source) + "</td></tr>"
            )
        # The trend strip: one box per recorded run, worst anchor
        # status of that run — regressions show as a color flip.
        boxes = []
        for record in records:
            status = _worst_status(
                [c.status for c in evaluate_record(record)]
            )
            boxes.append(
                f"<span class='s-{status}' title='{_esc(record.run_id)}: "
                f"{_esc(status)}'></span>"
            )
        strips.append(
            f"<tr><td>{_esc(experiment)}</td>"
            f"<td><div class='strip'>{''.join(boxes)}</div></td>"
            f"<td>{len(records)}</td></tr>"
        )
    tiles = (
        "<div class='tiles'>"
        f"<div class='tile'><b>{len(model.records)}</b>"
        "<span>run records</span></div>"
        f"<div class='tile'><b>{len(model.experiments())}</b>"
        "<span>experiments</span></div>"
        f"<div class='tile'><b>{len(model.sweeps)}</b>"
        "<span>sweeps</span></div>"
        f"<div class='tile'><b class='pass'>{counts[PASS]}</b>"
        "<span>anchors pass</span></div>"
        f"<div class='tile'><b class='warn'>{counts[WARN]}</b>"
        "<span>anchors warn</span></div>"
        f"<div class='tile'><b class='fail'>{counts[FAIL]}</b>"
        "<span>anchors fail</span></div>"
        f"<div class='tile'><b>{len(model.error_findings)}</b>"
        "<span>health errors</span></div>"
        "</div>"
    )
    body = tiles
    if rows:
        body += (
            "<h2>paper-fidelity scorecard (latest recorded runs)</h2>"
            "<table><tr><th>experiment</th><th>metric</th><th>paper</th>"
            "<th>ours</th><th>band</th><th>status</th><th>source</th></tr>"
            + "".join(rows) + "</table>"
        )
    if strips:
        body += (
            "<h2>anchor trend (oldest &#8594; latest, worst status "
            "per run)</h2>"
            "<table><tr><th>experiment</th><th>trend</th><th>runs</th></tr>"
            + "".join(strips) + "</table>"
        )
    if missing:
        body += (
            "<p class='note'>no recorded runs yet for: "
            + _esc(", ".join(missing))
            + " (run `repro fig/table/...` to record them)</p>"
        )
    return render_page(
        "observatory — scorecard", body, active="scorecard",
        subtitle=f"runs directory: {model.root}",
    )


# ---------------------------------------------------------------------------
# the history page
# ---------------------------------------------------------------------------

def _history_for(model: ObservatoryModel, experiment: str) -> History:
    """Build a History straight from the model (no registry re-read)."""
    records = model.by_experiment(experiment)
    result = History(experiment=experiment)
    result.run_ids = [r.run_id for r in records]
    result.created_at = [r.created_at for r in records]
    for name in sorted({n for r in records for n in r.metrics}):
        result.series[name] = [r.metrics.get(name) for r in records]
    return result


def _history_page(model: ObservatoryModel) -> str:
    sections = []
    for experiment in model.experiments():
        if experiment.startswith("bench."):
            continue  # wall-clock records trend on the bench page
        history = _history_for(model, experiment)
        blocks = "".join(
            _metric_section(name, history.series[name])
            for name in sorted(history.series)
        )
        if not blocks:
            continue
        sections.append(
            f"<h2>{_esc(experiment)} "
            f"<span class='note'>({len(history.run_ids)} runs)</span></h2>"
            + blocks
        )
    body = "".join(sections) or (
        "<p>no metric series recorded yet — run `repro fig 3` (or any "
        "experiment verb) to populate the registry.</p>"
    )
    return render_page(
        "observatory — metric history", body, active="history",
        subtitle="red markers: run-over-run drift beyond the repro diff "
        "thresholds",
    )


# ---------------------------------------------------------------------------
# the sweeps page
# ---------------------------------------------------------------------------

_CAT_COLORS = {
    "cell": "#4060c0",
    "queue": "#9aa4bd",
    "boot": "#2a9d5c",
    "retry": "#d33a2c",
    "merge": "#7a4fc0",
}


def _lane_svg(view: SweepView) -> str:
    lanes = view.lanes
    if not lanes:
        return "<p class='note'>no span files recorded</p>"
    total = max(
        (span.t1 for lane in lanes for span in lane.spans), default=0.0
    )
    total = max(
        total,
        max((i.t0 for lane in lanes for i in lane.instants), default=0.0),
    )
    total = total or 1e-9
    width, row_h, label_w = 760, 20, 170
    height = row_h * len(lanes) + 24
    parts = [
        f"<svg width='{width + label_w}' height='{height}' "
        f"viewBox='0 0 {width + label_w} {height}'>"
    ]
    for row, lane in enumerate(lanes):
        y = row * row_h + 4
        parts.append(
            f"<text x='0' y='{y + 11}' font-size='10' "
            f"fill='#334'>{_esc(lane.lane)}</text>"
        )
        for span in lane.spans:
            x0 = label_w + span.t0 / total * width
            w = max(1.0, span.duration / total * width)
            color = _CAT_COLORS.get(span.cat, "#8a93a8")
            cell = span.args.get("cell", "")
            title = (
                f"{span.name} [{span.cat}] {span.duration:.3f}s"
                + (f" — {cell}" if cell else "")
            )
            parts.append(
                f"<rect x='{x0:.1f}' y='{y}' width='{w:.1f}' "
                f"height='{row_h - 6}' fill='{color}' rx='2'>"
                f"<title>{_esc(title)}</title></rect>"
            )
        for instant in lane.instants:
            x0 = label_w + instant.t0 / total * width
            parts.append(
                f"<path d='M {x0:.1f} {y} l 4 {row_h - 6} l -8 0 z' "
                "fill='#e8a80c'>"
                f"<title>{_esc(instant.name)} [{_esc(instant.cat)}]</title>"
                "</path>"
            )
    axis_y = row_h * len(lanes) + 12
    parts.append(
        f"<text x='{label_w}' y='{axis_y}' font-size='10' "
        "fill='#667'>0s</text>"
        f"<text x='{label_w + width - 40}' y='{axis_y}' font-size='10' "
        f"fill='#667'>{total:.2f}s</text>"
    )
    parts.append("</svg>")
    return "<div class='lanes'>" + "".join(parts) + "</div>"


def _sweep_page(model: ObservatoryModel) -> str:
    sections = []
    for view in model.sweeps:
        config = view.manifest.get("config", {})
        facts = [
            ("cells", f"{view.done}/{view.n_cells} done"
                      + (f", {view.quarantined} quarantined"
                         if view.quarantined else "")),
            ("state", "finished" if view.finished else "in flight"),
            ("retries", str(view.retries)),
            ("progress events", str(len(view.events))),
            ("merged trace", "yes" if view.has_merged_trace else "no"),
        ]
        if view.torn_journal_lines:
            facts.append((
                "journal damage",
                f"{view.torn_journal_lines} unparseable line(s) "
                "(see health panel)",
            ))
        throughput = view.last_throughput
        if throughput is not None:
            facts.append(("last throughput", f"{throughput:.2f} cells/s"))
        if isinstance(config, dict) and config.get("verb"):
            facts.append(("verb", str(config["verb"])))
        fact_rows = "".join(
            f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>"
            for k, v in facts
        )
        sections.append(
            f"<h2>{_esc(view.sweep)}</h2>"
            f"<table>{fact_rows}</table>"
            + _lane_svg(view)
        )
    body = "".join(sections) or (
        "<p>no sweeps recorded — run `repro sweep --jobs 2` to produce "
        "a checkpointed, span-traced sweep.</p>"
    )
    return render_page(
        "observatory — sweep timelines", body, active="sweeps",
        subtitle="lanes are processes (supervisor first); spans from the "
        "per-worker trace files, rebased to sweep start",
    )


# ---------------------------------------------------------------------------
# the profiles page
# ---------------------------------------------------------------------------

def _profile_page(model: ObservatoryModel) -> str:
    sections = []
    for record in model.of_kind("profile"):
        hot = []
        for key in sorted(record.timings):
            prefix = "hostprof.self_s."
            if key.startswith(prefix):
                hot.append((record.timings[key], key[len(prefix):]))
        hot.sort(key=lambda pair: (-pair[0], pair[1]))
        total = record.timings.get("hostprof.total_s", 0.0)
        top = hot[:20]
        max_self = top[0][0] if top else 1.0
        rows = []
        for self_s, name in top:
            share = 100 * self_s / total if total else 0.0
            bar = int(120 * self_s / max_self) if max_self else 0
            rows.append(
                f"<tr><td>{_esc(name)}</td><td>{self_s:.4f}</td>"
                f"<td>{share:.1f}%</td>"
                f"<td><span class='bar' style='width:{bar}px'></span>"
                "</td></tr>"
            )
        uarch = record.timings.get("hostprof.uarch_fraction")
        attributed = record.timings.get("hostprof.attributed_fraction")
        notes = []
        if total:
            notes.append(f"total {total:.3f}s")
        if attributed is not None:
            notes.append(f"{100 * attributed:.1f}% attributed")
        if uarch is not None:
            notes.append(f"{100 * uarch:.1f}% inside repro.uarch")
        sections.append(
            f"<h2>{_esc(record.experiment)} "
            f"<span class='note'>({_esc(record.run_id)})</span></h2>"
            + (f"<p class='note'>{_esc(' · '.join(notes))}</p>"
               if notes else "")
            + "<table><tr><th>function</th><th>self s</th><th>share</th>"
              "<th></th></tr>" + "".join(rows) + "</table>"
        )
    body = "".join(sections) or (
        "<p>no host profiles recorded — run `repro profile S-WordCount` "
        "to attribute wall-clock to the repro.uarch inner loops.</p>"
    )
    return render_page(
        "observatory — hot functions", body, active="profiles",
        subtitle="host wall-clock attribution from kind=profile records "
        "(all values quarantined timings)",
    )


# ---------------------------------------------------------------------------
# the bench page
# ---------------------------------------------------------------------------

def _bench_page(model: ObservatoryModel) -> str:
    bench_experiments = sorted({
        r.experiment for r in model.of_kind("bench")
    })
    sections = []
    for experiment in bench_experiments:
        records = [
            r for r in model.by_experiment(experiment) if r.kind == "bench"
        ]
        latest = records[-1]
        timings = latest.timings
        rows = []
        for label, key in (
            ("median", "bench.median_s"),
            ("MAD", "bench.mad_s"),
            ("95% CI low", "bench.ci_lo_s"),
            ("95% CI high", "bench.ci_hi_s"),
            ("mean", "bench.mean_s"),
            ("reps", "bench.reps"),
            ("overhead ratio", "bench.overhead_ratio"),
            ("seconds", "bench.seconds"),
        ):
            if key in timings:
                rows.append(
                    f"<tr><th>{_esc(label)}</th>"
                    f"<td>{_fmt(timings[key])}</td></tr>"
                )
        trend_key = (
            "bench.median_s" if "bench.median_s" in timings
            else "bench.overhead_ratio"
            if "bench.overhead_ratio" in timings
            else "bench.seconds"
        )
        trend = [r.timings.get(trend_key) for r in records]
        sections.append(
            f"<h2>{_esc(experiment)} "
            f"<span class='note'>({len(records)} runs)</span></h2>"
            f"<div class='m'><h3>{_esc(trend_key)}</h3>"
            + _series_svg(trend, drift_marks=False)
            + f"<p>latest run {_esc(latest.run_id)}</p></div>"
            f"<table>{''.join(rows)}</table>"
        )
    body = "".join(sections) or (
        "<p>no bench records — run `repro bench fig4 --reps 5` (or the "
        "pytest benchmarks) to produce kind=bench records.</p>"
    )
    return render_page(
        "observatory — bench trends", body, active="bench",
        subtitle="wall-clock benchmarks (robust stats, all quarantined); "
        "gated by `repro perfdiff` against the committed budgets",
    )


# ---------------------------------------------------------------------------
# the health page
# ---------------------------------------------------------------------------

def _health_page(model: ObservatoryModel) -> str:
    body = ""

    telemetry_rows = []
    for experiment in model.experiments():
        latest = model.latest(experiment)
        if latest is None:
            continue
        for key in sorted(latest.timings):
            if not key.startswith("exec."):
                continue
            value = latest.timings[key]
            dropped = "dropped" in key or "errors" in key
            cls = " class='fail'" if dropped and value else ""
            telemetry_rows.append(
                f"<tr><td>{_esc(experiment)}</td>"
                f"<td>{_esc(key)}</td><td{cls}>{_fmt(value)}</td></tr>"
            )
    if telemetry_rows:
        body += (
            "<h2>writer / drop counters (latest record per experiment)"
            "</h2>"
            "<table><tr><th>experiment</th><th>counter</th><th>value</th>"
            "</tr>" + "".join(telemetry_rows) + "</table>"
        )

    if model.findings:
        finding_rows = "".join(
            f"<tr><td class='{'fail' if f.get('severity') == 'error' else 'note'}'>"
            + _esc(f.get("severity", ""))
            + "</td><td>" + _esc(f.get("kind", ""))
            + "</td><td>" + _esc(f.get("path", ""))
            + "</td><td>" + _esc(f.get("detail", "")) + "</td></tr>"
            for f in model.findings
        )
        body += (
            f"<h2>fsck findings ({len(model.error_findings)} error(s), "
            f"{len(model.findings) - len(model.error_findings)} note(s))"
            "</h2>"
            "<table><tr><th>severity</th><th>kind</th><th>path</th>"
            "<th>detail</th></tr>" + finding_rows + "</table>"
        )

    if model.skipped:
        skipped_rows = "".join(
            f"<tr><td>{_esc(s.path)}</td><td>{_esc(s.reason)}</td></tr>"
            for s in sorted(
                model.skipped, key=lambda s: (s.path, s.reason)
            )
        )
        body += (
            "<h2>artifacts the aggregator skipped</h2>"
            "<table><tr><th>path</th><th>reason</th></tr>"
            + skipped_rows + "</table>"
        )

    if not body:
        body = (
            "<p>nothing to report: no executor telemetry recorded, no "
            "fsck findings, nothing skipped.</p>"
        )
    return render_page(
        "observatory — health", body, active="health",
        subtitle="evidence against silent loss: every dropped event, "
        "damaged artifact and skipped file is counted here",
    )


# ---------------------------------------------------------------------------
# site assembly
# ---------------------------------------------------------------------------

def render_site(model: ObservatoryModel, out_dir: str) -> List[str]:
    """Render every observatory page into ``out_dir``; returns paths."""
    renderers = {
        "index.html": _scorecard_page,
        "history.html": _history_page,
        "sweeps.html": _sweep_page,
        "profiles.html": _profile_page,
        "bench.html": _bench_page,
        "health.html": _health_page,
    }
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    for page, _label in PAGES:
        path = os.path.join(out_dir, page)
        with open(path, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(renderers[page](model))
        written.append(path)
    return written
