"""Cross-run reporting: fidelity scorecard, drift diff, metric history.

Three consumers of the run registry:

- :func:`scorecard` — score each anchored experiment's *latest* record
  against :data:`repro.obs.anchors.PAPER_ANCHORS` (``repro report``);
- :func:`diff_records` — per-metric drift between any two records, with
  relative/absolute thresholds and distinct clean / drifted /
  missing-metric verdicts (``repro diff``, CI's regression gate);
- :func:`history` — one metric's trajectory across every recorded run
  of an experiment, rendered as a terminal sparkline or exported as
  JSON/HTML (``repro history``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.anchors import (
    FAIL,
    PASS,
    WARN,
    AnchorCheck,
    anchored_experiments,
    evaluate_record,
    summarize,
)
from repro.obs.registry import RunRecord, RunRegistry
from repro.report.tables import render_table

#: Default drift thresholds for ``diff_records`` — a metric must move
#: by more than 0.5% relative *and* an absolute epsilon to count, so
#: float formatting noise never pages anyone.
DEFAULT_REL_THRESHOLD = 0.005
DEFAULT_ABS_THRESHOLD = 1e-9

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# fidelity scorecard
# ---------------------------------------------------------------------------

@dataclass
class Scorecard:
    """Anchor checks for the latest record of every anchored experiment."""

    checks: List[AnchorCheck] = field(default_factory=list)
    missing_experiments: List[str] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        return summarize(self.checks)

    @property
    def ok(self) -> bool:
        """True when no anchored metric is failing outright."""
        return self.counts[FAIL] == 0 and not self.missing_experiments

    def to_dict(self) -> dict:
        return {
            "counts": self.counts,
            "ok": self.ok,
            "missing_experiments": list(self.missing_experiments),
            "checks": [
                {
                    "experiment": check.anchor.experiment,
                    "metric": check.anchor.metric,
                    "source": check.anchor.source,
                    "paper": check.anchor.paper_value,
                    "band": check.anchor.band,
                    "value": check.value,
                    "status": check.status,
                    "run_id": check.run_id,
                }
                for check in self.checks
            ],
        }

    def render(self) -> str:
        rows = []
        for check in self.checks:
            anchor = check.anchor
            rows.append(
                [
                    anchor.experiment,
                    anchor.metric,
                    anchor.paper_value,
                    check.value if check.value is not None else "missing",
                    f"±{anchor.band:.3g}",
                    check.status.upper() if check.status != PASS else "pass",
                    anchor.source,
                ]
            )
        table = render_table(
            ["experiment", "metric", "paper", "ours", "band", "status",
             "source"],
            rows,
            title="Paper-fidelity scorecard (latest recorded runs)",
        )
        counts = self.counts
        lines = [
            table,
            f"\n{counts[PASS]} pass, {counts[WARN]} warn, "
            f"{counts[FAIL]} fail over {len(self.checks)} anchors",
        ]
        if self.missing_experiments:
            lines.append(
                "no recorded runs yet for: "
                + ", ".join(self.missing_experiments)
                + "  (run `repro fig/table/...` to record them)"
            )
        return "\n".join(lines)


def scorecard(
    registry: RunRegistry, experiments: Optional[List[str]] = None
) -> Scorecard:
    """Score the latest record of each anchored experiment."""
    chosen = experiments if experiments is not None else anchored_experiments()
    card = Scorecard()
    for experiment in chosen:
        record = registry.latest(experiment)
        if record is None:
            card.missing_experiments.append(experiment)
            continue
        card.checks.extend(evaluate_record(record))
    return card


# ---------------------------------------------------------------------------
# cross-run diff
# ---------------------------------------------------------------------------

#: Per-metric diff statuses.
SAME, DRIFTED, MISSING = "same", "drifted", "missing"


@dataclass(frozen=True)
class MetricDrift:
    """One metric compared across two records."""

    metric: str
    a: Optional[float]
    b: Optional[float]
    status: str

    @property
    def delta(self) -> Optional[float]:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def rel_delta(self) -> Optional[float]:
        delta = self.delta
        if delta is None:
            return None
        return delta / abs(self.a) if self.a else float("inf") if delta else 0.0


@dataclass
class DiffResult:
    """Every metric of two records, classified same/drifted/missing."""

    record_a: RunRecord
    record_b: RunRecord
    drifts: List[MetricDrift] = field(default_factory=list)
    rel_threshold: float = DEFAULT_REL_THRESHOLD
    abs_threshold: float = DEFAULT_ABS_THRESHOLD

    @property
    def drifted(self) -> List[MetricDrift]:
        return [d for d in self.drifts if d.status == DRIFTED]

    @property
    def missing(self) -> List[MetricDrift]:
        return [d for d in self.drifts if d.status == MISSING]

    @property
    def clean(self) -> bool:
        return not self.drifted and not self.missing

    @property
    def exit_code(self) -> int:
        """0 clean, 1 metric drift, 2 metric set mismatch."""
        if self.missing:
            return 2
        if self.drifted:
            return 1
        return 0

    def to_dict(self) -> dict:
        return {
            "a": self.record_a.run_id or self.record_a.experiment,
            "b": self.record_b.run_id or self.record_b.experiment,
            "rel_threshold": self.rel_threshold,
            "abs_threshold": self.abs_threshold,
            "clean": self.clean,
            "exit_code": self.exit_code,
            "drifted": [
                {"metric": d.metric, "a": d.a, "b": d.b,
                 "delta": d.delta, "rel_delta": d.rel_delta}
                for d in self.drifted
            ],
            "missing": [
                {"metric": d.metric, "a": d.a, "b": d.b}
                for d in self.missing
            ],
            "compared": len(self.drifts),
        }

    def render(self) -> str:
        header = (
            f"diff {self.record_a.run_id or '<a>'} -> "
            f"{self.record_b.run_id or '<b>'} "
            f"({len(self.drifts)} metrics, rel>{self.rel_threshold:g}, "
            f"abs>{self.abs_threshold:g})"
        )
        if self.clean:
            return f"{header}\nclean: no metric drifted"
        rows = []
        for drift in self.drifted:
            rows.append(
                [
                    drift.metric,
                    drift.a,
                    drift.b,
                    drift.delta,
                    f"{100 * drift.rel_delta:+.2f}%"
                    if drift.rel_delta not in (None, float("inf"))
                    else "new-nonzero",
                ]
            )
        parts = [header]
        if rows:
            parts.append(
                render_table(["metric", "a", "b", "delta", "rel"], rows,
                             title="drifted:", float_format="{:.6g}")
            )
        if self.missing:
            parts.append("missing (present in only one record):")
            for drift in self.missing:
                side = "a only" if drift.b is None else "b only"
                parts.append(f"  {drift.metric}  ({side})")
        return "\n".join(parts)


def diff_records(
    record_a: RunRecord,
    record_b: RunRecord,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    abs_threshold: float = DEFAULT_ABS_THRESHOLD,
) -> DiffResult:
    """Classify every metric of two records as same/drifted/missing.

    A metric counts as drifted only when it moves by more than *both*
    thresholds, so tiny float wobbles need ``rel_threshold=0`` to show.
    """
    result = DiffResult(
        record_a=record_a,
        record_b=record_b,
        rel_threshold=rel_threshold,
        abs_threshold=abs_threshold,
    )
    names = sorted(set(record_a.metrics) | set(record_b.metrics))
    for name in names:
        a = record_a.metrics.get(name)
        b = record_b.metrics.get(name)
        if a is None or b is None:
            result.drifts.append(MetricDrift(name, a, b, MISSING))
            continue
        delta = abs(b - a)
        relative = delta / abs(a) if a else (float("inf") if delta else 0.0)
        status = (
            DRIFTED
            if delta > abs_threshold and relative > rel_threshold
            else SAME
        )
        result.drifts.append(MetricDrift(name, a, b, status))
    return result


# ---------------------------------------------------------------------------
# metric history
# ---------------------------------------------------------------------------

def sparkline(values: List[float]) -> str:
    """A unicode block sparkline of one series."""
    finite = [v for v in values if v == v and abs(v) != float("inf")]
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if value != value or abs(value) == float("inf"):
            chars.append("?")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[3])
            continue
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


@dataclass
class History:
    """One experiment's recorded trajectory, metric by metric."""

    experiment: str
    run_ids: List[str] = field(default_factory=list)
    created_at: List[str] = field(default_factory=list)
    series: Dict[str, List[Optional[float]]] = field(default_factory=dict)
    #: Executor telemetry (``exec.*`` keys of the quarantined timings):
    #: shown alongside — but never diffed with — the metric series.
    telemetry: Dict[str, List[Optional[float]]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {
            "experiment": self.experiment,
            "runs": list(self.run_ids),
            "created_at": list(self.created_at),
            "series": {k: list(v) for k, v in self.series.items()},
        }
        if self.telemetry:
            data["telemetry"] = {
                k: list(v) for k, v in self.telemetry.items()
            }
        return data

    def render(self) -> str:
        if not self.run_ids:
            return f"no recorded runs for {self.experiment!r}"
        lines = [
            f"{self.experiment}: {len(self.run_ids)} recorded runs "
            f"({self.run_ids[0]} .. {self.run_ids[-1]})"
        ]
        width = max(len(name) for name in self.series) if self.series else 0
        for name in sorted(self.series):
            values = self.series[name]
            present = [v for v in values if v is not None]
            if not present:
                continue
            spark = sparkline([
                v if v is not None else float("nan") for v in values
            ])
            lines.append(
                f"  {name:<{width}s} {spark} "
                f"last={present[-1]:.6g} min={min(present):.6g} "
                f"max={max(present):.6g}"
            )
        if self.telemetry:
            lines.append("executor telemetry (wall-clock; never diffed):")
            t_width = max(len(name) for name in self.telemetry)
            for name in sorted(self.telemetry):
                values = self.telemetry[name]
                present = [v for v in values if v is not None]
                if not present:
                    continue
                spark = sparkline([
                    v if v is not None else float("nan") for v in values
                ])
                lines.append(
                    f"  {name:<{t_width}s} {spark} last={present[-1]:.6g}"
                )
        return "\n".join(lines)

    def to_html(self) -> str:
        """A standalone HTML page with one inline SVG line per metric.

        Delegates to the observatory's renderer — one HTML code path
        for the whole repo (:mod:`repro.obs.dashboard`).  Imported
        lazily because the dashboard imports this module for the diff
        thresholds and the :class:`History` type.
        """
        from repro.obs.dashboard import render_history_page

        return render_history_page(self)


def history(
    registry: RunRegistry,
    experiment: str,
    metrics: Optional[List[str]] = None,
) -> History:
    """Collect one experiment's metric trajectories, oldest run first."""
    records = registry.records(experiment)
    result = History(experiment=experiment)
    if not records:
        return result
    result.run_ids = [record.run_id for record in records]
    result.created_at = [record.created_at for record in records]
    names = (
        metrics
        if metrics is not None
        else sorted({name for record in records for name in record.metrics})
    )
    for name in names:
        result.series[name] = [record.metrics.get(name) for record in records]
    exec_keys = sorted({
        name
        for record in records
        for name in record.timings
        if name.startswith("exec.")
    })
    for name in exec_keys:
        result.telemetry[name] = [
            record.timings.get(name) for record in records
        ]
    return result
