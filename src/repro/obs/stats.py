"""Robust statistics for noise-aware benchmarking.

Wall-clock samples are hardware noise: a single slow rep (page cache
miss, CPU migration, thermal throttle) can double a mean, so the perf
gate never compares means or single runs.  Instead it summarises each
sample set with the median (robust location), the MAD (robust spread)
and a seeded bootstrap confidence interval over the median, and two
sample sets only count as *different* when their intervals separate.

Everything here is pure arithmetic over caller-supplied samples: no
clock reads (the module is deliberately *not* on the DET003 quarantine
list) and no unseeded randomness — the bootstrap uses
``random.Random(seed)``, so identical samples always produce identical
intervals, which is what makes ``repro perfdiff`` reproducible and the
``kind="bench"`` record schema diff-stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "BOOTSTRAP_RESAMPLES",
    "BOOTSTRAP_SEED",
    "RobustStats",
    "bootstrap_ci_median",
    "intervals_separated",
    "mad",
    "median",
    "robust_summary",
]

#: Bootstrap resample count: enough for stable 95% percentile bounds
#: over the small (5-30 rep) sample sets the bench harness produces.
BOOTSTRAP_RESAMPLES = 2000

#: Fixed bootstrap seed — the interval is a *statistic of the samples*,
#: not a random variable, so every caller resamples identically.
BOOTSTRAP_SEED = 20160405


def median(values: List[float]) -> float:
    """The sample median (mean of the middle pair for even n)."""
    if not values:
        raise ValueError("median of an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: List[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if not values:
        raise ValueError("mad of an empty sample")
    middle = median(values) if center is None else center
    return median([abs(v - middle) for v in values])


def bootstrap_ci_median(
    values: List[float],
    *,
    confidence: float = 0.95,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for the median.

    Deterministic for fixed ``values``/``seed``: identical reruns of a
    benchmark produce identical intervals, so the perf gate's
    "intervals separate" predicate cannot flap on resampling noise.
    """
    if not values:
        raise ValueError("bootstrap over an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence!r}")
    n = len(values)
    if n == 1:
        return float(values[0]), float(values[0])
    rng = random.Random(seed)
    medians = sorted(
        median([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    lo_index = int(tail * (resamples - 1))
    hi_index = int((1.0 - tail) * (resamples - 1))
    return medians[lo_index], medians[hi_index]


def intervals_separated(
    a: Tuple[float, float], b: Tuple[float, float]
) -> bool:
    """True when two ``(lo, hi)`` intervals do not overlap at all."""
    (a_lo, a_hi), (b_lo, b_hi) = a, b
    return a_lo > b_hi or b_lo > a_hi


@dataclass(frozen=True)
class RobustStats:
    """One sample set summarised for the bench record and perf gate."""

    n: int
    median: float
    mad: float
    ci_lo: float
    ci_hi: float
    mean: float
    min: float
    max: float

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.ci_lo, self.ci_hi)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "median": self.median,
            "mad": self.mad,
            "ci_lo": self.ci_lo,
            "ci_hi": self.ci_hi,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


def robust_summary(
    values: List[float],
    *,
    confidence: float = 0.95,
    resamples: int = BOOTSTRAP_RESAMPLES,
    seed: int = BOOTSTRAP_SEED,
) -> RobustStats:
    """Summarise one sample set into :class:`RobustStats`."""
    if not values:
        raise ValueError("summary of an empty sample")
    middle = median(values)
    lo, hi = bootstrap_ci_median(
        values, confidence=confidence, resamples=resamples, seed=seed
    )
    return RobustStats(
        n=len(values),
        median=middle,
        mad=mad(values, middle),
        ci_lo=lo,
        ci_hi=hi,
        mean=sum(values) / len(values),
        min=min(values),
        max=max(values),
    )
