"""``repro bench`` / ``repro perfdiff``: noise-aware wall-clock gating.

The registry's determinism contract splits every record into a
comparable half (``metrics``) and a quarantined half (``timings``).
This module is the harness that fills the quarantined half *carefully*:

- :func:`run_bench` times repetitions of one named target (a full
  experiment regeneration or a ``repro.uarch`` inner-loop kernel —
  exactly the functions ``repro profile`` ranks hot), after warmup
  reps, and summarises the samples with robust statistics
  (:mod:`repro.obs.stats`: median, MAD, bootstrap CI).  The result
  persists as a ``kind="bench"`` record whose ``metrics`` hold only the
  target's deterministic payload (verified identical across reps) and
  whose ``timings`` carry every wall-clock number under ``bench.*``.
- :func:`perfdiff` compares the latest bench records against the
  committed budget manifest (``benchmarks/baselines/perf_budgets.json``)
  and flags a regression only when the candidate's confidence interval
  separates *above* the budget's — never on raw deltas, so a single
  noisy rep cannot fail CI.

This is the only new module allowed to read the clock: it sits on the
DET003 quarantine list next to the profiler, and everything it measures
stays inside ``timings``.  The aggregation/rendering layers
(:mod:`repro.obs.observatory`, :mod:`repro.obs.dashboard`) stay
clock-free.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import BudgetManifestError, PerfError
from repro.obs.registry import RunRecord, build_provenance
from repro.obs.stats import RobustStats, robust_summary
from repro.report.tables import render_table

__all__ = [
    "BENCH_RECORD_SCHEMA",
    "BUDGET_SCHEMA_VERSION",
    "DEFAULT_BUDGETS_PATH",
    "BenchResult",
    "BenchTarget",
    "PerfDiff",
    "TargetVerdict",
    "bench_experiment",
    "bench_targets",
    "load_budgets",
    "obs_overhead_record",
    "perfdiff",
    "run_bench",
    "stats_from_timings",
    "update_budgets",
]

#: Version of the ``bench.*`` timings layout inside ``kind="bench"``
#: records (independent of the registry's record schema).
BENCH_RECORD_SCHEMA = 1

#: Version of the committed budget manifest layout.
BUDGET_SCHEMA_VERSION = 1

#: Where the committed budget manifest lives, relative to the repo root.
DEFAULT_BUDGETS_PATH = os.path.join(
    "benchmarks", "baselines", "perf_budgets.json"
)

#: The workload whose behaviour profile feeds the uarch micro targets.
#: S-WordCount is the paper's canonical example and what ``repro
#: profile`` exercises in CI, so budget hot-function lists line up.
MICRO_WORKLOAD = "S-WordCount"

#: Reference lengths for the micro kernels — long enough that the
#: inner loop dominates, short enough for 5 reps in a CI minute.
_MICRO_FETCH_LINES = 40_000
_MICRO_DATA_LINES = 60_000
_MICRO_BRANCHES = 40_000


@dataclass(frozen=True)
class BenchTarget:
    """One named thing ``repro bench`` can time.

    ``make(scale, seed)`` performs untimed setup (workload execution,
    trace pre-generation) and returns a zero-argument callable; each
    timed rep calls it and receives a flat ``name -> float`` payload
    that must be identical across reps (the determinism cross-check).
    """

    name: str
    description: str
    kind: str  # "experiment" | "micro"
    make: Callable[[float, int], Callable[[], Dict[str, float]]]


def _experiment_runner(module_name: str, experiment: str):
    """A target factory timing one full experiment regeneration.

    A *fresh* :class:`~repro.experiments.runner.ExperimentContext` is
    built inside the timed region on every rep — the context caches
    workload runs and characterizations, so reusing one would time a
    dictionary lookup instead of the experiment.
    """

    def make(scale: float, seed: int) -> Callable[[], Dict[str, float]]:
        import repro.experiments as experiments

        module = getattr(experiments, module_name)

        def run() -> Dict[str, float]:
            from repro.experiments import ExperimentContext

            context = ExperimentContext(scale=scale, seed=seed)
            result = module.run(context)
            return {
                k: float(v) for k, v in result.fidelity_metrics().items()
            }

        return run

    return make


def _micro_profile(scale: float, seed: int):
    """The shared setup of every uarch micro target (untimed)."""
    from repro.experiments import ExperimentContext

    context = ExperimentContext(scale=scale, seed=seed)
    return context.result(MICRO_WORKLOAD).profile


def _make_characterize(scale: float, seed: int):
    from repro.uarch import XEON_E5645, characterize

    profile = _micro_profile(scale, seed)

    def run() -> Dict[str, float]:
        counters = characterize(profile, XEON_E5645, seed=1234 + seed)
        return {k: float(v) for k, v in counters.metric_dict().items()}

    return run


def _make_trace_gen(scale: float, seed: int):
    from repro.uarch.trace import generate_data_trace, generate_fetch_trace

    profile = _micro_profile(scale, seed)

    def run() -> Dict[str, float]:
        fetch = generate_fetch_trace(
            profile.code, _MICRO_FETCH_LINES, seed=seed
        )
        data = generate_data_trace(
            profile.data, _MICRO_DATA_LINES, seed=seed + 1
        )
        return {
            "trace.fetch_lines": float(len(fetch)),
            "trace.data_lines": float(len(data)),
            "trace.fetch_span": float(int(fetch.max()) - int(fetch.min())),
            "trace.data_span": float(int(data.max()) - int(data.min())),
        }

    return run


def _make_cache_walk(scale: float, seed: int):
    from repro.uarch import XEON_E5645
    from repro.uarch.tlb import LINES_PER_PAGE
    from repro.uarch.trace import generate_data_trace, generate_fetch_trace

    profile = _micro_profile(scale, seed)
    fetch = generate_fetch_trace(
        profile.code, _MICRO_FETCH_LINES, seed=seed
    ).tolist()
    data = generate_data_trace(
        profile.data, _MICRO_DATA_LINES, seed=seed + 1
    ).tolist()

    def run() -> Dict[str, float]:
        hierarchy = XEON_E5645.make_hierarchy()
        itlb = XEON_E5645.make_itlb()
        dtlb = XEON_E5645.make_dtlb()
        for line in fetch:
            hierarchy.fetch(line)
            itlb.access(line // LINES_PER_PAGE)
        for line in data:
            hierarchy.load_store(line)
            dtlb.access(line // LINES_PER_PAGE)
        payload = {
            "tlb.itlb_misses": float(itlb.misses),
            "tlb.dtlb_misses": float(dtlb.misses),
        }
        for stats in hierarchy.stats():
            payload[f"cache.{stats.name}.misses"] = float(stats.misses)
        return payload

    return run


def _make_branch(scale: float, seed: int):
    from repro.uarch import XEON_E5645
    from repro.uarch.branch import BranchStreamGenerator, simulate_branches

    profile = _micro_profile(scale, seed)

    def run() -> Dict[str, float]:
        generator = BranchStreamGenerator(profile.branches, seed=seed + 2)
        events = generator.generate(_MICRO_BRANCHES)
        stats = simulate_branches(events, XEON_E5645.make_predictor())
        return {
            "branch.branches": float(stats.branches),
            "branch.mispredictions": float(stats.mispredictions),
            "branch.btb_miss_ratio": float(stats.btb_miss_ratio),
        }

    return run


#: ``repro fig``/``repro table`` verbs exposed as bench targets.
_EXPERIMENT_TARGETS = (
    ("fig1", "fig1_instruction_mix", "Fig 1: instruction-mix figure"),
    ("fig2", "fig2_integer_breakdown", "Fig 2: integer-breakdown figure"),
    ("fig3", "fig3_ipc", "Fig 3: IPC comparison figure"),
    ("fig4", "fig4_cache", "Fig 4: cache-behaviour figure"),
    ("fig5", "fig5_tlb", "Fig 5: TLB-behaviour figure"),
    ("locality", "fig6to9_locality", "Figs 6-9: locality study"),
    ("table2", "table2_reduction", "Table 2: the 77->17 reduction"),
    ("table4", "table4_branch", "Table 4: branch characterization"),
    ("stacks", "stack_impact", "§5.5 software-stack study"),
    ("system", "system_behaviors", "§3.2 system-behaviour classes"),
)

#: ``repro.uarch`` inner-loop kernels — the hot functions ``repro
#: profile`` attributes the wall-clock to, timed in isolation so the
#: vectorization work gets per-kernel before/after intervals.
_MICRO_TARGETS = (
    BenchTarget(
        "uarch.characterize",
        "full 45-metric characterization of one workload (S-WordCount "
        "on Xeon E5645)",
        "micro",
        _make_characterize,
    ),
    BenchTarget(
        "uarch.trace-gen",
        "synthetic fetch + data trace generation "
        "(trace.generate_fetch_trace / generate_data_trace)",
        "micro",
        _make_trace_gen,
    ),
    BenchTarget(
        "uarch.cache-walk",
        "cache-hierarchy and TLB walk over pre-generated traces "
        "(hierarchy.fetch / load_store inner loop)",
        "micro",
        _make_cache_walk,
    ),
    BenchTarget(
        "uarch.branch",
        "branch stream generation + predictor replay "
        "(BranchStreamGenerator.generate / simulate_branches)",
        "micro",
        _make_branch,
    ),
)


def bench_targets() -> Dict[str, BenchTarget]:
    """Every nameable bench target, keyed by CLI name."""
    targets: Dict[str, BenchTarget] = {}
    for name, module_name, description in _EXPERIMENT_TARGETS:
        targets[name] = BenchTarget(
            name, description, "experiment", _experiment_runner(
                module_name, name
            )
        )
    for target in _MICRO_TARGETS:
        targets[target.name] = target
    return targets


def bench_experiment(target_name: str) -> str:
    """The registry experiment name a bench target records under."""
    return f"bench.{target_name}"


@dataclass
class BenchResult:
    """One completed bench run: samples, robust stats, payload."""

    target: str
    kind: str
    reps: int
    warmup: int
    scale: float
    seed: int
    samples_s: List[float]
    stats: RobustStats
    metrics: Dict[str, float] = field(default_factory=dict)

    def timings(self) -> Dict[str, float]:
        """Every wall-clock number, quarantined under ``bench.*``."""
        timings = {
            "bench.schema": float(BENCH_RECORD_SCHEMA),
            "bench.reps": float(self.reps),
            "bench.warmup_reps": float(self.warmup),
            "bench.median_s": self.stats.median,
            "bench.mad_s": self.stats.mad,
            "bench.ci_lo_s": self.stats.ci_lo,
            "bench.ci_hi_s": self.stats.ci_hi,
            "bench.mean_s": self.stats.mean,
            "bench.min_s": self.stats.min,
            "bench.max_s": self.stats.max,
        }
        for index, sample in enumerate(self.samples_s):
            timings[f"bench.rep_s.{index}"] = sample
        return timings

    def to_record(self) -> RunRecord:
        experiment = bench_experiment(self.target)
        return RunRecord(
            experiment=experiment,
            kind="bench",
            metrics=dict(self.metrics),
            provenance=build_provenance(
                experiment=experiment,
                seed=self.seed,
                scale=self.scale,
                platforms=[],
                config={
                    "bench_schema": BENCH_RECORD_SCHEMA,
                    "target": self.target,
                    "target_kind": self.kind,
                    "reps": self.reps,
                    "warmup": self.warmup,
                },
            ),
            series={
                "bench": {
                    "schema_version": BENCH_RECORD_SCHEMA,
                    "target": self.target,
                    "target_kind": self.kind,
                    "reps": self.reps,
                    "warmup": self.warmup,
                }
            },
            timings=self.timings(),
        )

    def render(self) -> str:
        stats = self.stats
        lines = [
            f"bench {self.target} ({self.kind}): {self.reps} reps after "
            f"{self.warmup} warmup, scale {self.scale:g}, seed {self.seed}",
            f"  median {stats.median:.4f}s  mad {stats.mad:.4f}s  "
            f"95% CI [{stats.ci_lo:.4f}, {stats.ci_hi:.4f}]s",
            f"  mean {stats.mean:.4f}s  min {stats.min:.4f}s  "
            f"max {stats.max:.4f}s",
            "  reps: " + " ".join(f"{s:.4f}" for s in self.samples_s),
            f"  deterministic payload: {len(self.metrics)} metric(s), "
            "identical across reps",
        ]
        return "\n".join(lines)


def _payload_fingerprint(payload: Dict[str, float]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_bench(
    target,
    *,
    reps: int = 5,
    warmup: int = 1,
    scale: float = 0.5,
    seed: int = 0,
    timer: Callable[[], float] = time.perf_counter,
) -> BenchResult:
    """Time ``reps`` measured calls of one target after ``warmup`` calls.

    ``target`` is a name from :func:`bench_targets` or a
    :class:`BenchTarget`.  Raises :class:`repro.errors.PerfError` when
    the target's deterministic payload differs between reps — a bench
    that perturbs what it measures is not a bench.
    """
    if isinstance(target, str):
        catalogue = bench_targets()
        if target not in catalogue:
            raise PerfError(
                f"unknown bench target {target!r}",
                known=", ".join(sorted(catalogue)),
            )
        target = catalogue[target]
    if reps < 1:
        raise PerfError(f"reps must be >= 1, got {reps!r}")
    if warmup < 0:
        raise PerfError(f"warmup must be >= 0, got {warmup!r}")

    run = target.make(scale, seed)
    for _ in range(warmup):
        run()
    samples: List[float] = []
    fingerprints: List[str] = []
    payload: Dict[str, float] = {}
    for _ in range(reps):
        t0 = timer()
        payload = run() or {}
        t1 = timer()
        samples.append(t1 - t0)
        fingerprints.append(_payload_fingerprint(payload))
    if len(set(fingerprints)) > 1:
        raise PerfError(
            "bench target payload differed between reps — the target is "
            "nondeterministic and its timings cannot be trusted",
            target=target.name,
        )
    return BenchResult(
        target=target.name,
        kind=target.kind,
        reps=reps,
        warmup=warmup,
        scale=scale,
        seed=seed,
        samples_s=samples,
        stats=robust_summary(samples),
        metrics=payload,
    )


def obs_overhead_record(
    *,
    untraced_s: float,
    traced_s: float,
    scale: float,
    seed: int,
    extra_timings: Optional[Dict[str, float]] = None,
) -> RunRecord:
    """The tracing-overhead ratio as a trendable ``kind="bench"`` record.

    Written by ``benchmarks/bench_obs_overhead.py`` so the dashboard
    can plot observability overhead across PRs.  The ratio and both
    wall-clock legs are quarantined in ``timings``; ``metrics`` stays
    empty (nothing here is deterministic).
    """
    experiment = bench_experiment("obs-overhead")
    timings = {
        "bench.schema": float(BENCH_RECORD_SCHEMA),
        "bench.untraced_s": float(untraced_s),
        "bench.traced_s": float(traced_s),
        "bench.overhead_ratio": (
            float(traced_s) / float(untraced_s) if untraced_s > 0 else 0.0
        ),
    }
    if extra_timings:
        timings.update(extra_timings)
    return RunRecord(
        experiment=experiment,
        kind="bench",
        metrics={},
        provenance=build_provenance(
            experiment=experiment,
            seed=seed,
            scale=scale,
            platforms=[],
            config={
                "bench_schema": BENCH_RECORD_SCHEMA,
                "target": "obs-overhead",
            },
        ),
        series={
            "bench": {
                "schema_version": BENCH_RECORD_SCHEMA,
                "target": "obs-overhead",
                "target_kind": "overhead",
            }
        },
        timings=timings,
    )


# ---------------------------------------------------------------------------
# the perf gate
# ---------------------------------------------------------------------------

#: Per-target verdict statuses.
OK, FASTER, REGRESSION = "ok", "faster", "regression"
NO_RECORD, INCOMPARABLE = "no-record", "incomparable"


def load_budgets(path: str) -> dict:
    """Load and validate the committed perf-budget manifest."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise BudgetManifestError(
            f"cannot read budget manifest {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise BudgetManifestError(
            f"budget manifest {path!r} is not valid JSON: {exc}"
        ) from exc
    version = manifest.get("schema_version")
    if version != BUDGET_SCHEMA_VERSION:
        raise BudgetManifestError(
            f"unsupported budget-manifest schema {version!r} "
            f"(this build reads {BUDGET_SCHEMA_VERSION})",
            path=path,
        )
    budgets = manifest.get("budgets")
    if not isinstance(budgets, dict):
        raise BudgetManifestError(
            f"budget manifest {path!r} has no 'budgets' mapping"
        )
    for name, entry in budgets.items():
        for key in ("median_s", "ci_lo_s", "ci_hi_s"):
            if not isinstance(entry.get(key), (int, float)):
                raise BudgetManifestError(
                    f"budget {name!r} is missing numeric {key!r}",
                    path=path,
                )
    return manifest


def stats_from_timings(timings: Dict[str, float]) -> Optional[dict]:
    """Extract the ``bench.*`` robust stats from record timings."""
    required = ("bench.median_s", "bench.ci_lo_s", "bench.ci_hi_s")
    if any(key not in timings for key in required):
        return None
    return {
        "median_s": timings["bench.median_s"],
        "mad_s": timings.get("bench.mad_s", 0.0),
        "ci_lo_s": timings["bench.ci_lo_s"],
        "ci_hi_s": timings["bench.ci_hi_s"],
        "reps": int(timings.get("bench.reps", 0)),
    }


@dataclass
class TargetVerdict:
    """One budget compared against the latest candidate bench record."""

    target: str
    status: str
    detail: str
    budget: dict = field(default_factory=dict)
    candidate: dict = field(default_factory=dict)
    ratio: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "status": self.status,
            "detail": self.detail,
            "budget": dict(self.budget),
            "candidate": dict(self.candidate),
            "ratio": self.ratio,
        }


@dataclass
class PerfDiff:
    """The perf gate's verdict over every compared target."""

    budgets_path: str
    verdicts: List[TargetVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> List[TargetVerdict]:
        return [v for v in self.verdicts if v.status == REGRESSION]

    @property
    def exit_code(self) -> int:
        """0 when no target's CI separates above its budget, else 1."""
        return 1 if self.regressions else 0

    def to_dict(self) -> dict:
        return {
            "budgets": self.budgets_path,
            "exit_code": self.exit_code,
            "regressions": len(self.regressions),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        rows = []
        for verdict in self.verdicts:
            budget = verdict.budget
            candidate = verdict.candidate
            rows.append([
                verdict.target,
                budget.get("median_s"),
                candidate.get("median_s"),
                f"{verdict.ratio:.2f}x" if verdict.ratio is not None else "-",
                verdict.status,
            ])
        table = render_table(
            ["target", "budget median", "candidate", "ratio", "status"],
            rows,
            title=f"perfdiff vs {self.budgets_path}",
            float_format="{:.4f}",
        )
        summary = (
            f"\n{len(self.regressions)} regression(s) over "
            f"{len(self.verdicts)} budgeted target(s) "
            "(regression = candidate CI entirely above budget CI)"
        )
        notes = [
            f"  {v.target}: {v.detail}"
            for v in self.verdicts
            if v.status not in (OK, FASTER)
        ]
        return table + summary + ("\n" + "\n".join(notes) if notes else "")


def _compare(target: str, budget: dict, candidate: dict) -> TargetVerdict:
    budget_interval = (budget["ci_lo_s"], budget["ci_hi_s"])
    candidate_interval = (candidate["ci_lo_s"], candidate["ci_hi_s"])
    ratio = (
        candidate["median_s"] / budget["median_s"]
        if budget["median_s"] > 0 else None
    )
    if candidate_interval[0] > budget_interval[1]:
        return TargetVerdict(
            target, REGRESSION,
            f"candidate CI [{candidate_interval[0]:.4f}, "
            f"{candidate_interval[1]:.4f}]s is entirely above budget CI "
            f"[{budget_interval[0]:.4f}, {budget_interval[1]:.4f}]s",
            budget=budget, candidate=candidate, ratio=ratio,
        )
    if candidate_interval[1] < budget_interval[0]:
        return TargetVerdict(
            target, FASTER,
            "candidate CI entirely below budget CI — consider "
            "re-baselining with `repro perfdiff --update-budgets`",
            budget=budget, candidate=candidate, ratio=ratio,
        )
    return TargetVerdict(
        target, OK, "confidence intervals overlap",
        budget=budget, candidate=candidate, ratio=ratio,
    )


def perfdiff(
    registry,
    manifest: dict,
    *,
    budgets_path: str = DEFAULT_BUDGETS_PATH,
    targets: Optional[List[str]] = None,
) -> PerfDiff:
    """Compare the latest bench records against the budget manifest.

    A target with no bench record yet is reported (``no-record``) but
    never fails the gate — budgets are advisory until measured.  A
    record benched at a different scale than its budget is
    ``incomparable``: medians at different scales say nothing about a
    regression.
    """
    budgets = manifest["budgets"]
    chosen = targets if targets is not None else sorted(budgets)
    result = PerfDiff(budgets_path=budgets_path)
    for target in chosen:
        budget = budgets.get(target)
        if budget is None:
            result.verdicts.append(TargetVerdict(
                target, INCOMPARABLE,
                f"no budget entry for {target!r} in {budgets_path}",
            ))
            continue
        record = registry.latest(bench_experiment(target))
        if record is None:
            result.verdicts.append(TargetVerdict(
                target, NO_RECORD,
                f"no bench record for {bench_experiment(target)!r} — "
                f"run `repro bench {target}`",
                budget=dict(budget),
            ))
            continue
        candidate = stats_from_timings(record.timings)
        if candidate is None:
            result.verdicts.append(TargetVerdict(
                target, INCOMPARABLE,
                f"record {record.run_id} has no bench.* stats",
                budget=dict(budget),
            ))
            continue
        budget_scale = budget.get("scale")
        record_scale = record.provenance.get("scale")
        if budget_scale is not None and record_scale is not None \
                and float(budget_scale) != float(record_scale):
            result.verdicts.append(TargetVerdict(
                target, INCOMPARABLE,
                f"record benched at scale {record_scale!r} but budget "
                f"was set at scale {budget_scale!r}",
                budget=dict(budget), candidate=candidate,
            ))
            continue
        result.verdicts.append(_compare(target, budget, candidate))
    return result


def update_budgets(
    registry,
    path: str,
    *,
    targets: Optional[List[str]] = None,
) -> dict:
    """Rewrite the budget manifest from the latest bench records.

    Preserves per-target ``hot_functions`` and ``note`` annotations of
    an existing manifest; targets without a usable bench record keep
    their old entry untouched.
    """
    previous: Dict[str, dict] = {}
    if os.path.isfile(path):
        try:
            previous = dict(load_budgets(path)["budgets"])
        except BudgetManifestError:
            previous = {}
    names = targets if targets is not None else sorted(
        set(previous) | {
            name for name in bench_targets()
        }
    )
    budgets: Dict[str, dict] = {}
    for name in names:
        record = registry.latest(bench_experiment(name))
        stats = stats_from_timings(record.timings) if record else None
        if stats is None:
            if name in previous:
                budgets[name] = previous[name]
            continue
        entry = dict(stats)
        entry["scale"] = record.provenance.get("scale")
        old = previous.get(name, {})
        for keep in ("hot_functions", "note"):
            if keep in old:
                entry[keep] = old[keep]
        budgets[name] = entry
    manifest = {
        "schema_version": BUDGET_SCHEMA_VERSION,
        "confidence": 0.95,
        "budgets": budgets,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest
