"""Wall-clock phase profiling hooks for the uarch sweep pipeline.

A :class:`PhaseProfiler` times named phases (trace generation, warmup,
measurement, ...) into a :class:`~repro.obs.metrics.CounterRegistry`.
Instrumented code calls the module-level :func:`phase` context manager,
which is a cheap no-op unless a profiler has been installed with
:func:`set_profiler` — the default-off rule the whole obs layer follows.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.obs.metrics import CounterRegistry


class PhaseProfiler:
    """Accumulates wall-clock time and call counts per named phase."""

    def __init__(self, registry: Optional[CounterRegistry] = None):
        self.registry = registry if registry is not None else CounterRegistry()

    @contextmanager
    def phase(self, name: str):
        with self.registry.timer(name):
            yield

    def seconds(self, name: str) -> float:
        return self.registry.value(f"{name}.seconds")

    def calls(self, name: str) -> int:
        return int(self.registry.value(f"{name}.calls"))

    def phases(self) -> List[str]:
        """Phase names seen so far, sorted."""
        names = set()
        for key in self.registry.snapshot():
            if key.endswith(".seconds"):
                names.add(key[: -len(".seconds")])
        return sorted(names)

    def report_lines(self) -> List[str]:
        """One ``phase: seconds (calls)`` line per phase."""
        return [
            f"{name}: {self.seconds(name):.3f}s ({self.calls(name)} calls)"
            for name in self.phases()
        ]


_ACTIVE: Optional[PhaseProfiler] = None


def set_profiler(profiler: Optional[PhaseProfiler]) -> Optional[PhaseProfiler]:
    """Install (or clear, with ``None``) the active profiler; returns the old one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    return previous


def profiler() -> Optional[PhaseProfiler]:
    """The currently installed profiler, if any."""
    return _ACTIVE


@contextmanager
def phase(name: str):
    """Time this block under ``name`` if a profiler is installed."""
    active = _ACTIVE
    if active is None:
        yield
        return
    with active.phase(name):
        yield
