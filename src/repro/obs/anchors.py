"""Paper-fidelity anchors: the published numbers we must stay near.

Each :class:`Anchor` pins one registry metric (as emitted by an
experiment's ``fidelity_metrics()``) to the value the paper reports for
it, with a tolerance band.  Evaluation is three-way:

- **pass** — within the band (``max(abs_tol, rel_tol * |paper|)``);
- **warn** — outside the band but within ``warn_factor`` times it
  (drifting, worth a look, not yet a broken reproduction);
- **fail** — beyond the warn band, or the metric is missing from the
  record entirely.

The bands are wider than a unit test's: this simulator reproduces the
paper's *shape* (branch ratios near 19%, IPC near 1.3, an L1I MPKI gap
of an order of magnitude between MPI and the JVM stacks), not its exact
counter readouts, and the band encodes how far the reproduction may
wander before the story it tells stops being the paper's.

Bands are calibrated at the CLI's default ``--scale 0.5``; running the
experiments at much smaller scales shifts the sampled mixes and will
legitimately push some anchors from pass into warn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.registry import RunRecord

PASS, WARN, FAIL = "pass", "warn", "fail"


@dataclass(frozen=True)
class Anchor:
    """One paper number and how far a reproduction may stray from it."""

    experiment: str
    metric: str
    paper_value: float
    rel_tol: float = 0.25
    abs_tol: float = 0.0
    warn_factor: float = 2.0
    source: str = ""

    @property
    def band(self) -> float:
        return max(self.abs_tol, self.rel_tol * abs(self.paper_value))

    def status(self, value: Optional[float]) -> str:
        if value is None:
            return FAIL
        deviation = abs(value - self.paper_value)
        if deviation <= self.band:
            return PASS
        if deviation <= self.warn_factor * self.band:
            return WARN
        return FAIL


@dataclass(frozen=True)
class AnchorCheck:
    """One anchor evaluated against one run record."""

    anchor: Anchor
    value: Optional[float]
    status: str
    run_id: str = ""

    @property
    def deviation(self) -> Optional[float]:
        if self.value is None:
            return None
        return self.value - self.anchor.paper_value


#: The anchor table: Wang et al., figures 1-9 and tables 1-4.
PAPER_ANCHORS: List[Anchor] = [
    # -- Figure 1 / §5.1: instruction mix ---------------------------------
    Anchor("fig1", "bigdata.ratio_branch", 0.187, rel_tol=0.15,
           source="Fig. 1 / §5.1 branch ratio"),
    Anchor("fig1", "bigdata.ratio_integer", 0.38, rel_tol=0.15,
           source="Fig. 1 / §5.1 integer ratio"),
    # -- Figure 2 / §5.1: integer breakdown --------------------------------
    Anchor("fig2", "avg.int_addr", 0.42, rel_tol=0.25,
           source="Fig. 2 address-integer share"),
    Anchor("fig2", "avg.data_movement", 0.48, rel_tol=0.25,
           source="§5.1 data-movement share"),
    # -- Figure 3: IPC ------------------------------------------------------
    Anchor("fig3", "bigdata.ipc", 1.28, rel_tol=0.15,
           source="Fig. 3 big-data mean IPC"),
    Anchor("fig3", "group.category: service.ipc", 0.8, rel_tol=0.30,
           source="Fig. 3 service-subclass IPC"),
    # -- Figure 4: cache MPKI ----------------------------------------------
    Anchor("fig4", "bigdata.l1i_mpki", 15.0, rel_tol=0.35,
           source="Fig. 4 L1I MPKI mean"),
    Anchor("fig4", "bigdata.l2_mpki", 11.0, rel_tol=0.40,
           source="Fig. 4 L2 MPKI mean"),
    Anchor("fig4", "bigdata.l3_mpki", 1.2, rel_tol=0.50,
           source="Fig. 4 L3 MPKI mean"),
    # -- Figure 5: TLB MPKI -------------------------------------------------
    Anchor("fig5", "bigdata.itlb_mpki", 0.05, rel_tol=0.60, abs_tol=0.06,
           source="Fig. 5 ITLB MPKI mean"),
    Anchor("fig5", "bigdata.dtlb_mpki", 0.9, rel_tol=0.50,
           source="Fig. 5 DTLB MPKI mean"),
    # -- Figures 6-9: locality knees ---------------------------------------
    Anchor("fig-locality", "knee_kb.Hadoop-workloads", 1024.0, rel_tol=0.0,
           abs_tol=512.0, source="Fig. 6 Hadoop instruction footprint"),
    Anchor("fig-locality", "knee_kb.PARSEC-workloads", 128.0, rel_tol=0.0,
           abs_tol=96.0, source="Fig. 6 PARSEC instruction footprint"),
    # -- Table 2 / §3: the 77 -> 17 reduction ------------------------------
    Anchor("table2", "summary.n_clusters", 17.0, rel_tol=0.0,
           source="Table 2 cluster count"),
    Anchor("table2", "summary.members_total", 77.0, rel_tol=0.0,
           source="Table 2 catalog size"),
    Anchor("table2", "summary.representative_hits", 17.0, rel_tol=0.2,
           source="Table 2 representative placement"),
    # -- Table 4 / §5.1: branch prediction by platform ----------------------
    Anchor("table4", "summary.e5645_mispred", 0.028, rel_tol=0.30,
           abs_tol=0.010, source="Table 4 E5645 misprediction"),
    Anchor("table4", "summary.d510_mispred", 0.078, rel_tol=0.30,
           source="Table 4 D510 misprediction"),
    # -- §5.5: the software-stack study ------------------------------------
    Anchor("stacks", "summary.ipc_gap", 0.21, rel_tol=0.0, abs_tol=0.22,
           source="§5.5 MPI-vs-JVM IPC gap"),
    Anchor("stacks", "summary.l1i_ratio", 3.7, rel_tol=0.45,
           source="§5.5 L1I MPKI stack ratio"),
    # -- §3.2 / Table 2: system-behaviour classification --------------------
    Anchor("system", "summary.match_ratio", 1.0, rel_tol=0.0, abs_tol=0.20,
           source="§3.2 Table 2 behaviour column"),
    # -- §4.1 fault story: who survives a node crash ------------------------
    Anchor("faults", "stack.Hadoop.recovered", 1.0, rel_tol=0.0,
           source="§4.1 Hadoop task-level recovery"),
    Anchor("faults", "stack.Spark.recovered", 1.0, rel_tol=0.0,
           source="§4.1 Spark lineage recovery"),
    Anchor("faults", "stack.MPI.recovered", 0.0, rel_tol=0.0,
           source="§4.1 MPI whole-job abort"),
]


def anchors_for(experiment: str) -> List[Anchor]:
    """The anchor subset pinned to one experiment."""
    return [a for a in PAPER_ANCHORS if a.experiment == experiment]


def anchored_experiments() -> List[str]:
    """Experiments that have at least one anchor, in table order."""
    seen: List[str] = []
    for anchor in PAPER_ANCHORS:
        if anchor.experiment not in seen:
            seen.append(anchor.experiment)
    return seen


def evaluate_record(record: RunRecord) -> List[AnchorCheck]:
    """Score one run record against its experiment's anchors."""
    checks = []
    for anchor in anchors_for(record.experiment):
        value = record.metrics.get(anchor.metric)
        checks.append(
            AnchorCheck(
                anchor=anchor,
                value=value,
                status=anchor.status(value),
                run_id=record.run_id,
            )
        )
    return checks


def summarize(checks: List[AnchorCheck]) -> Dict[str, int]:
    """``{"pass": n, "warn": n, "fail": n}`` for a batch of checks."""
    counts = {PASS: 0, WARN: 0, FAIL: 0}
    for check in checks:
        counts[check.status] += 1
    return counts
