"""Span tracing on the simulated clock.

The paper's methodology is observation: counters, logs and sampled
system metrics turn opaque executions into explainable behaviour.  The
tracer is the simulator's equivalent of that measurement substrate — a
recorder of *spans* (intervals on the simulated clock: job → stage →
wave → task → attempt, plus per-node compute and I/O operations),
*instant events* (fault injections, failure detections, retries) and
*counter samples* (per-node utilization time-series taken by
:class:`repro.obs.metrics.ClusterTelemetry`).

Everything is default-off: components look up ``sim.tracer`` and skip
all recording when it is ``None``, so a traced run and an untraced run
execute the identical event schedule and the fault-free bit-identity
guarantee of the scheduler is untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError

#: Span categories in nesting order (outermost first).  Node-operation
#: categories ("cpu", "io", "disk", "net") hang off attempts.
SPAN_CATEGORIES = (
    "job", "stage", "wave", "task", "attempt", "cpu", "io", "disk", "net",
)


@dataclass
class Span:
    """One interval on the simulated clock.

    Attributes:
        span_id: Unique id within the tracer (monotone in begin order).
        name: Human-readable label ("map", "task3.attempt1", ...).
        category: One of :data:`SPAN_CATEGORIES`.
        track: Timeline the span belongs to — "scheduler" for job/stage/
            wave, a node name for attempts, ``"<node>.cpu"`` etc. for
            node operations.  Becomes the Chrome-trace thread.
        start: Simulated time the span opened.
        end: Simulated time it closed (None while still open).
        parent_id: Enclosing span's id (None for the job root).
        args: Free-form annotations (node, bytes, outcome, cause, ...).
    """

    span_id: int
    name: str
    category: str
    track: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass
class InstantEvent:
    """A zero-duration mark on the simulated clock (fault, retry, ...)."""

    name: str
    category: str
    track: str
    time: float
    args: Dict[str, object] = field(default_factory=dict)


@dataclass
class CounterSample:
    """One multi-value counter reading (a Chrome ``ph:"C"`` event)."""

    name: str
    track: str
    time: float
    values: Dict[str, float] = field(default_factory=dict)


class Tracer:
    """Records spans, instants and counter samples against a sim clock.

    The clock is bound lazily (:meth:`bind_clock`) because the tracer is
    usually constructed before the :class:`~repro.cluster.events.Simulation`
    it observes.  ``sample_interval`` is the cadence, in simulated
    seconds, at which the scheduler's telemetry sampler takes per-node
    utilization readings; ``None`` disables periodic sampling (wave
    boundaries are always sampled).
    """

    def __init__(self, sample_interval: Optional[float] = None):
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sample_interval = sample_interval
        self.spans: List[Span] = []
        self.instants: List[InstantEvent] = []
        self.samples: List[CounterSample] = []
        self._clock: Optional[Callable[[], float]] = None
        self._next_id = 0

    # ---- clock -----------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated-time source (idempotent)."""
        self._clock = clock

    @property
    def now(self) -> float:
        if self._clock is None:
            return 0.0
        return self._clock()

    # ---- spans -----------------------------------------------------------
    def begin(
        self,
        name: str,
        category: str,
        track: str = "scheduler",
        parent: Optional[Span] = None,
        **args: object,
    ) -> Span:
        """Open a span at the current simulated time."""
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            track=track,
            start=self.now,
            parent_id=parent.span_id if parent is not None else None,
            args=dict(args),
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span, **args: object) -> Span:
        """Close ``span`` at the current simulated time."""
        if span.end is not None:
            raise SimulationError(
                f"span {span.name!r} already ended", span_id=span.span_id
            )
        span.end = self.now
        if args:
            span.args.update(args)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str,
        track: str = "scheduler",
        parent: Optional[Span] = None,
        **args: object,
    ):
        """Context manager form of :meth:`begin`/:meth:`end`.

        Only usable around plain (non-yielding) code: a generator that
        yields to the event loop inside the ``with`` body would close
        the span at the wrong simulated time on interrupt.
        """
        span = self.begin(name, category, track=track, parent=parent, **args)
        try:
            yield span
        finally:
            self.end(span)

    # ---- instants and counters ------------------------------------------
    def instant(
        self, name: str, category: str, track: str = "scheduler", **args: object
    ) -> InstantEvent:
        event = InstantEvent(
            name=name, category=category, track=track, time=self.now,
            args=dict(args),
        )
        self.instants.append(event)
        return event

    def sample(
        self,
        name: str,
        track: str,
        time: Optional[float] = None,
        **values: float,
    ) -> CounterSample:
        sample = CounterSample(
            name=name,
            track=track,
            time=self.now if time is None else time,
            values=dict(values),
        )
        self.samples.append(sample)
        return sample

    # ---- queries ---------------------------------------------------------
    def spans_of(self, *categories: str) -> List[Span]:
        """Spans whose category is one of ``categories``."""
        wanted = set(categories)
        return [s for s in self.spans if s.category in wanted]

    def find(self, span_id: int) -> Span:
        """Lookup by id (ids are assigned densely in begin order)."""
        span = self.spans[span_id]
        if span.span_id != span_id:  # pragma: no cover - defensive
            raise KeyError(span_id)
        return span

    def open_spans(self) -> List[Span]:
        """Spans still missing an end time (should be empty after a run)."""
        return [s for s in self.spans if s.end is None]
