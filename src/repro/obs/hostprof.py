"""Host-side hot-path profiler behind ``repro profile``.

The simulator's own tracer (:mod:`repro.obs.tracer`) measures
*simulated* time; this module measures *host* time — which Python
frames the interpreter actually burns wall-clock in — so the ROADMAP's
vectorization work on the :mod:`repro.uarch` inner loops has before and
after evidence instead of guesses.

Built on stdlib ``cProfile``/``pstats`` (deterministic-safe: profiling
observes the call tree, it never feeds anything back into the run).
The profiled call's return value is handed back unchanged, and every
measured number is wall-clock, so the whole output is quarantined:
:meth:`HostProfile.timings` is designed to land in a registry record's
``timings`` field and nowhere else.  This module is on the DET003
quarantine list for exactly that reason.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ProfilerError
from repro.report.tables import render_table

#: Default self-time coverage target when selecting hot functions.
DEFAULT_COVERAGE = 0.95

#: Hard cap on selected entries regardless of coverage.
DEFAULT_CAP = 60

__all__ = [
    "DEFAULT_COVERAGE",
    "DEFAULT_CAP",
    "HotFunction",
    "HostProfile",
    "module_of",
    "profile_call",
]


def module_of(filename: str) -> str:
    """Best-effort dotted module name for a profiled code object.

    ``~`` is cProfile's marker for C-level builtins.  Files inside the
    ``repro`` package map to their real dotted path (the part that
    matters: attribution to ``repro.uarch.*``); anything else keeps its
    bare stem so stdlib frames stay recognisable without leaking
    machine-specific path prefixes into reports.
    """

    if filename.startswith("~") or not filename:
        return "<builtin>"
    normalized = filename.replace(os.sep, "/")
    marker = "/repro/"
    index = normalized.rfind(marker)
    if index >= 0:
        dotted = normalized[index + 1:]
        if dotted.endswith(".py"):
            dotted = dotted[:-3]
        if dotted.endswith("/__init__"):
            dotted = dotted[: -len("/__init__")]
        return dotted.replace("/", ".")
    stem = os.path.basename(normalized)
    return stem[:-3] if stem.endswith(".py") else stem


@dataclass(frozen=True)
class HotFunction:
    """One profiled function: where it lives and what it cost."""

    module: str
    function: str
    file: str
    line: int
    calls: int
    self_s: float
    cum_s: float


class HostProfile:
    """Ranked host-time attribution for one profiled call."""

    def __init__(self, entries: List[HotFunction]):
        if not entries:
            raise ProfilerError("profiler captured no frames")
        self.entries = sorted(entries, key=lambda e: (-e.self_s, e.module,
                                                      e.function))
        self.total_s = sum(entry.self_s for entry in self.entries)

    # ---- selection --------------------------------------------------------
    def entries_for(self, coverage: float = DEFAULT_COVERAGE,
                    cap: int = DEFAULT_CAP) -> List[HotFunction]:
        """The ranked prefix covering ``coverage`` of total self time.

        Coverage-based (not a fixed top-N) so the ≥80 % attribution
        guarantee holds whether the workload has 5 hot frames or 50.
        """
        selected: List[HotFunction] = []
        accumulated = 0.0
        target = coverage * self.total_s
        for entry in self.entries:
            if len(selected) >= cap:
                break
            selected.append(entry)
            accumulated += entry.self_s
            if accumulated >= target:
                break
        return selected

    def attributed_fraction(self, coverage: float = DEFAULT_COVERAGE,
                            cap: int = DEFAULT_CAP) -> float:
        if self.total_s <= 0.0:
            return 1.0
        selected = self.entries_for(coverage, cap)
        return sum(entry.self_s for entry in selected) / self.total_s

    def uarch_fraction(self) -> float:
        """Share of self time spent inside :mod:`repro.uarch`."""
        if self.total_s <= 0.0:
            return 0.0
        uarch = sum(
            entry.self_s for entry in self.entries
            if entry.module.startswith("repro.uarch")
        )
        return uarch / self.total_s

    # ---- quarantined export ----------------------------------------------
    def timings(self, prefix: str = "hostprof") -> Dict[str, float]:
        """Wall-clock attribution as registry ``timings`` entries.

        Everything here is host noise by definition, so the caller must
        store it in a record's ``timings`` (never ``metrics``).
        """
        out: Dict[str, float] = {
            f"{prefix}.total_s": self.total_s,
            f"{prefix}.attributed_fraction": self.attributed_fraction(),
            f"{prefix}.uarch_fraction": self.uarch_fraction(),
            f"{prefix}.frames": float(len(self.entries)),
        }
        for entry in self.entries_for():
            key = f"{prefix}.self_s.{entry.module}.{entry.function}"
            out[key] = out.get(key, 0.0) + entry.self_s
        return out

    # ---- human output -----------------------------------------------------
    def render_table(self, top: int = 20) -> str:
        rows = []
        for entry in self.entries[:top]:
            share = (
                entry.self_s / self.total_s if self.total_s > 0 else 0.0
            )
            rows.append([
                f"{entry.module}.{entry.function}",
                entry.calls,
                entry.self_s,
                entry.cum_s,
                100.0 * share,
            ])
        return render_table(
            ["function", "calls", "self (s)", "cum (s)", "self %"],
            rows,
            title="Hot functions (host wall-clock, quarantined)",
            float_format="{:.4f}",
        )

    def render_flame(self, width: int = 40, top_modules: int = 12) -> str:
        """A module-grouped flame-style rollup of self time."""
        by_module: Dict[str, float] = {}
        for entry in self.entries:
            by_module[entry.module] = (
                by_module.get(entry.module, 0.0) + entry.self_s
            )
        ranked = sorted(by_module.items(), key=lambda kv: (-kv[1], kv[0]))
        lines = ["Flame rollup (self time by module):"]
        for module, seconds in ranked[:top_modules]:
            share = seconds / self.total_s if self.total_s > 0 else 0.0
            bar = "#" * max(1, int(round(share * width)))
            lines.append(
                f"  {module:<34s} {seconds:9.4f} s {100 * share:5.1f}%  {bar}"
            )
        return "\n".join(lines)


def profile_call(fn, *args, **kwargs) -> Tuple[object, HostProfile]:
    """Run ``fn`` under cProfile; return its value and the attribution.

    The call's return value is bit-identical to an unprofiled call —
    cProfile only watches frame transitions — which the overhead bench
    asserts on a full fixed-seed experiment.
    """

    profiler = cProfile.Profile()
    try:
        profiler.enable()
        try:
            value = fn(*args, **kwargs)
        finally:
            profiler.disable()
    except ValueError as error:  # another profiler is already installed
        raise ProfilerError(f"cannot install profiler: {error}")
    stats = pstats.Stats(profiler)
    entries = [
        HotFunction(
            module=module_of(file),
            function=name,
            file=file,
            line=line,
            calls=int(nc),
            self_s=float(tt),
            cum_s=float(ct),
        )
        for (file, line, name), (cc, nc, tt, ct, callers)
        in stats.stats.items()
    ]
    return value, HostProfile(entries)
