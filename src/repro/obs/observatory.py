"""The observatory: a read-only aggregate view over one runs directory.

Everything the substrate emits — registry records, sweep checkpoints,
``progress.jsonl`` streams, per-worker span files, ``kind="profile"``
host profiles, ``kind="bench"`` wall-clock records, fsck findings —
lands under ``.repro-runs/``, each with its own reader.  This module
indexes all of it into one queryable :class:`ObservatoryModel` that the
static-site renderer (:mod:`repro.obs.dashboard`) and a future
``repro serve`` consume.

Two hard rules, both enforced by the golden determinism test:

- **Strictly read-only.**  The registry's normal :meth:`records` path
  quarantines corrupt files (a rename) and ``SweepCheckpoint.load``
  does the same to corrupt snapshots.  The observatory must render the
  same directory twice and find it byte-identical both times, so it
  uses :meth:`RunRegistry.scan` with ``quarantine=False`` and its own
  tolerant checkpoint readers, and only ever *reports* damage.
- **No clock, no filesystem-order dependence.**  Nothing here reads
  wall-clock (the module is deliberately absent from the DET003
  quarantine list); every listing is sorted and every artifact that
  fails to parse becomes a :class:`SkippedArtifact` in the health
  model instead of an exception or a silent hole.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exec.tracing import SPAN_FILE_SUFFIX, TimelineLane, spans_to_timeline
from repro.obs.registry import RunRecord, RunRegistry
from repro.obs.stream import read_progress

__all__ = [
    "ObservatoryModel",
    "SkippedArtifact",
    "SweepView",
    "build_model",
]


@dataclass(frozen=True)
class SkippedArtifact:
    """One artifact the aggregator could not use, and why.

    Surfaced on the health panel: a skipped artifact is never silent —
    "we indexed everything" must be falsifiable.
    """

    path: str
    reason: str


@dataclass
class SweepView:
    """Everything known about one sweep directory, read tolerantly."""

    sweep: str
    path: str
    manifest: Dict[str, object] = field(default_factory=dict)
    n_cells: int = 0
    done: int = 0
    quarantined: int = 0
    #: Journal lines that failed to parse (torn tails, corruption).
    torn_journal_lines: int = 0
    events: List[Dict] = field(default_factory=list)
    lanes: List[TimelineLane] = field(default_factory=list)
    has_merged_trace: bool = False

    @property
    def finished(self) -> bool:
        return any(e.get("event") == "sweep-finished" for e in self.events)

    @property
    def last_throughput(self) -> Optional[float]:
        for event in reversed(self.events):
            if event.get("event") == "cell-finished" \
                    and event.get("cells_per_s") is not None:
                return float(event["cells_per_s"])
        return None

    @property
    def retries(self) -> int:
        return sum(
            1 for e in self.events if e.get("event") == "cell-retried"
        )


@dataclass
class ObservatoryModel:
    """The aggregate: records + sweeps + damage, ready to render."""

    root: str
    records: List[RunRecord] = field(default_factory=list)
    sweeps: List[SweepView] = field(default_factory=list)
    skipped: List[SkippedArtifact] = field(default_factory=list)
    #: fsck findings as plain dicts (kind/severity/path/detail), sorted.
    findings: List[Dict[str, object]] = field(default_factory=list)

    def experiments(self) -> List[str]:
        return sorted({record.experiment for record in self.records})

    def by_experiment(self, experiment: str) -> List[RunRecord]:
        return [r for r in self.records if r.experiment == experiment]

    def latest(self, experiment: str) -> Optional[RunRecord]:
        records = self.by_experiment(experiment)
        return records[-1] if records else None

    def of_kind(self, kind: str) -> List[RunRecord]:
        return [r for r in self.records if r.kind == kind]

    @property
    def error_findings(self) -> List[Dict[str, object]]:
        return [f for f in self.findings if f.get("severity") == "error"]


def _read_json(path: str):
    """Parse one JSON file; ``(payload, error)`` with exactly one set."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle), None
    except OSError as exc:  # repro: allow[ERR002] — read-only aggregation; damage becomes a health finding
        return None, f"unreadable: {exc}"
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        return None, f"corrupt JSON: {exc}"


def _read_journal(path: str):
    """Count cell statuses in a journal, tolerating damaged lines."""
    statuses: Dict[str, str] = {}
    torn = 0
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:  # repro: allow[ERR002] — a missing journal is an empty sweep, not a crash
        return statuses, torn
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(entry, dict) and "cell_id" in entry:
                statuses[str(entry["cell_id"])] = str(
                    entry.get("status", "")
                )
            else:
                torn += 1
    return statuses, torn


def _read_spans(trace_dir: str, skipped: List[SkippedArtifact]):
    """Read-only span collection mirroring ``read_span_records``.

    The exec-layer reader raises on unreadable files (a merge must not
    silently lose a lane); the observatory instead records the loss and
    renders what it can.
    """
    records: List[Dict] = []
    if not os.path.isdir(trace_dir):
        return records
    for fname in sorted(os.listdir(trace_dir)):
        if not fname.endswith(SPAN_FILE_SUFFIX):
            continue
        path = os.path.join(trace_dir, fname)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as exc:  # repro: allow[ERR002] — surfaced as a skipped artifact below
            skipped.append(SkippedArtifact(path, f"unreadable span file: {exc}"))
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed process
            if isinstance(record, dict) and record.get("kind") in (
                "span", "instant"
            ):
                records.append(record)
    return records


def _build_sweep_view(
    sweeps_root: str, name: str, skipped: List[SkippedArtifact]
) -> SweepView:
    sweep_dir = os.path.join(sweeps_root, name)
    view = SweepView(sweep=name, path=sweep_dir)

    manifest_path = os.path.join(sweep_dir, "manifest.json")
    if os.path.isfile(manifest_path):
        manifest, error = _read_json(manifest_path)
        if error is not None:
            skipped.append(SkippedArtifact(manifest_path, error))
        elif isinstance(manifest, dict):
            view.manifest = manifest
            view.n_cells = int(manifest.get("n_cells", 0) or 0)
    else:
        skipped.append(SkippedArtifact(
            os.path.join(sweep_dir, "manifest.json"), "missing manifest"
        ))

    # Snapshot first, journal entries on top — same precedence as the
    # checkpoint loader, but nothing is quarantined on damage here.
    statuses: Dict[str, str] = {}
    snapshot_path = os.path.join(sweep_dir, "snapshot.json")
    if os.path.isfile(snapshot_path):
        snapshot, error = _read_json(snapshot_path)
        if error is not None:
            skipped.append(SkippedArtifact(snapshot_path, error))
        elif isinstance(snapshot, dict):
            for cell_id, data in snapshot.get("cells", {}).items():
                if isinstance(data, dict):
                    statuses[str(cell_id)] = str(data.get("status", ""))
    journal_statuses, torn = _read_journal(
        os.path.join(sweep_dir, "journal.jsonl")
    )
    statuses.update(journal_statuses)
    view.torn_journal_lines = torn
    view.done = sum(1 for s in statuses.values() if s == "ok")
    view.quarantined = sum(
        1 for s in statuses.values() if s == "quarantined"
    )

    view.events = read_progress(os.path.join(sweep_dir, "progress.jsonl"))
    view.lanes = spans_to_timeline(
        _read_spans(os.path.join(sweep_dir, "trace"), skipped)
    )
    view.has_merged_trace = os.path.isfile(
        os.path.join(sweep_dir, "trace.json")
    )
    return view


def build_model(runs_dir: str, *, fsck: bool = True) -> ObservatoryModel:
    """Aggregate one runs directory into an :class:`ObservatoryModel`.

    A missing directory yields an empty model (rendering an empty
    observatory is a legitimate request); a damaged one yields a model
    whose health panel says exactly what was skipped.
    """
    model = ObservatoryModel(root=runs_dir)

    registry = RunRegistry(runs_dir)
    records, problems = registry.scan(quarantine=False)
    model.records = records
    for path, reason in problems:
        model.skipped.append(SkippedArtifact(path, reason))

    sweeps_root = os.path.join(runs_dir, "sweeps")
    if os.path.isdir(sweeps_root):
        for name in sorted(os.listdir(sweeps_root)):
            if not os.path.isdir(os.path.join(sweeps_root, name)):
                continue
            model.sweeps.append(
                _build_sweep_view(sweeps_root, name, model.skipped)
            )

    if fsck and os.path.isdir(runs_dir):
        from repro.obs.fsck import fsck_scan

        result = fsck_scan(runs_dir)
        model.findings = sorted(
            (f.to_dict() for f in result.findings),
            key=lambda f: (str(f["path"]), str(f["kind"])),
        )
    return model
