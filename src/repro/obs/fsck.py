"""``repro fsck``: integrity scan and repair for the runs directory.

``.repro-runs/`` is the substrate's storage tier — registry records,
sweep checkpoints (manifest + journal + snapshot), progress streams,
span files, merged traces, advisory locks.  Crashes (real or injected
by :class:`repro.fsio.FaultyIO`) leave characteristic damage; this
module knows every legal artifact shape, classifies the damage into
typed findings, and (with ``--repair``) restores each one to a state a
resumed sweep can trust.

Findings come in two severities:

- ``error`` — the artifact is damaged or untrustworthy and a reader
  could be misled: torn or corrupt journal entries, corrupt records /
  manifests / snapshots, snapshot entries that diverge from the
  journal, provenance-hash mismatches, leaked ``*.tmp`` litter, stale
  locks of dead processes, orphaned sweep directories.
- ``note`` — expected residue that no reader trips over: quarantined
  ``.corrupt`` files kept as evidence, snapshot-only cells (journal
  tail lost; the merge step re-validates them), a lock held by a live
  process, torn tails in best-effort observability files.

Every repair is conservative: suspect data is dropped or quarantined,
never guessed at.  A dropped cell simply reruns on ``--resume`` — the
determinism contract makes rerunning always safe — so repair can never
invent state, only shrink it back to what is provably intact.

Exit-code conventions mirror ``repro diff``: 0 clean (notes are
clean), 1 errors found (or remaining after ``--repair``), 3 runs
directory missing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.cells import CellResult, provenance_hash
from repro.fsio import quarantine_corrupt, write_json_atomic

ERROR = "error"
NOTE = "note"

#: Finding kinds that are errors (everything else is a note).
_ERROR_KINDS = frozenset({
    "leaked-tmp",
    "corrupt-record",
    "corrupt-manifest",
    "corrupt-snapshot",
    "torn-journal",
    "corrupt-journal-entry",
    "cell-hash-mismatch",
    "snapshot-divergence",
    "stale-lock",
    "orphaned-sweep",
})

__all__ = [
    "ERROR",
    "NOTE",
    "Finding",
    "FsckResult",
    "fsck_scan",
    "fsck_repair",
]


@dataclass
class Finding:
    """One classified integrity problem (or benign observation)."""

    kind: str
    severity: str
    path: str
    detail: str
    #: What ``--repair`` will do (empty when nothing needs doing).
    repair: str = ""
    #: Set by the repair pass: what actually happened.
    repaired: bool = False
    #: Kind-specific repair context (e.g. the sweep's scale for
    #: provenance-hash rewrites).
    context: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "path": self.path,
            "detail": self.detail,
            "repair": self.repair,
            "repaired": self.repaired,
        }

    def render(self) -> str:
        mark = "E" if self.severity == ERROR else "n"
        done = " [repaired]" if self.repaired else ""
        return f"[{mark}] {self.kind}: {self.path} — {self.detail}{done}"


@dataclass
class FsckResult:
    """The scan verdict over one runs directory."""

    root: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def notes(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == NOTE]

    @property
    def clean(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "clean": self.clean,
            "errors": len(self.errors),
            "notes": len(self.notes),
            "repaired": sum(1 for f in self.findings if f.repaired),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"fsck {self.root}: "
            f"{len(self.errors)} error(s), {len(self.notes)} note(s)"
        ]
        lines.extend(f.render() for f in self.findings)
        if self.clean:
            lines.append("clean" if not self.notes else "clean (notes only)")
        return "\n".join(lines)


def _finding(kind: str, path: str, detail: str, *, repair: str = "",
             **context) -> Finding:
    severity = ERROR if kind in _ERROR_KINDS else NOTE
    return Finding(kind=kind, severity=severity, path=path, detail=detail,
                   repair=repair, context=dict(context))


# ---------------------------------------------------------------------------
# Scanning
# ---------------------------------------------------------------------------

def _scan_jsonl(path: str) -> Tuple[List[Tuple[int, dict]], List[int], bool]:
    """Parse a JSONL file: (good (lineno, obj) pairs, bad linenos, torn).

    ``torn`` is True when only the *final* non-empty line fails to
    parse — the classic crash-mid-append shape, repairable by
    truncation.  Bad lines elsewhere are mid-file corruption.
    """
    good: List[Tuple[int, dict]] = []
    bad: List[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    last_content = -1
    for lineno, line in enumerate(lines):
        if line.strip():
            last_content = lineno
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            bad.append(lineno)
            continue
        if isinstance(obj, dict):
            good.append((lineno, obj))
        else:
            bad.append(lineno)
    torn = len(bad) == 1 and bad[0] == last_content
    return good, bad, torn


def _parse_cell_id(cell_id: str) -> Optional[Tuple[str, str, int]]:
    """``workload@platform+sN`` → (workload, platform, seed), or None."""
    head, sep, seed_part = cell_id.rpartition("+s")
    if not sep:
        return None
    workload, sep, platform = head.rpartition("@")
    if not sep:
        return None
    try:
        return workload, platform, int(seed_part)
    except ValueError:
        return None


def _expected_hash(entry: dict, scale: object) -> Optional[str]:
    """Recompute the provenance hash for one journaled ok cell.

    Returns None when the entry cannot be re-derived (unparseable cell
    id, or no sweep scale to reconstruct the spec) — absence of
    evidence is not treated as corruption.
    """
    parsed = _parse_cell_id(str(entry.get("cell_id", "")))
    if parsed is None or scale is None:
        return None
    workload, platform, seed = parsed
    spec = {
        "cell_id": entry["cell_id"],
        "workload": workload,
        "platform": platform,
        "scale": scale,
        "seed": seed,
    }
    metrics = {k: float(v) for k, v in entry.get("metrics", {}).items()}
    return provenance_hash(spec, metrics)


def _valid_cell_entry(obj: dict) -> bool:
    try:
        CellResult.from_dict(obj)
    except (KeyError, ValueError, TypeError):
        return False
    return True


def _is_tmp_name(name: str) -> bool:
    return ".tmp." in name or name.endswith(".tmp")


def _pid_alive(pid: int) -> bool:
    if pid == os.getpid():
        # Our own pid on a lock means a previous in-process owner died
        # without releasing (the simulated-crash path): stale.
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # repro: allow[ERR002] — signal-0 probe, not a write
        return True
    except OSError:  # repro: allow[ERR002] — signal-0 probe, not a write
        return False
    return True


def _scan_registry_root(root: str, findings: List[Finding]) -> None:
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if os.path.isdir(path):
            continue
        if _is_tmp_name(name):
            findings.append(_finding(
                "leaked-tmp", path,
                "tmp file leaked by a crashed atomic write",
                repair="remove",
            ))
            continue
        if ".corrupt" in name:
            findings.append(_finding(
                "quarantined-artifact", path,
                "previously quarantined file kept as evidence",
            ))
            continue
        if not name.endswith(".json"):
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            findings.append(_finding(
                "corrupt-record", path,
                f"unparseable run record ({type(error).__name__})",
                repair="quarantine to .corrupt",
            ))


def _scan_sweep_dir(sweep_dir: str, findings: List[Finding]) -> None:
    names = sorted(os.listdir(sweep_dir))
    manifest_path = os.path.join(sweep_dir, "manifest.json")
    journal_path = os.path.join(sweep_dir, "journal.jsonl")
    snapshot_path = os.path.join(sweep_dir, "snapshot.json")
    lock_path = os.path.join(sweep_dir, "sweep.lock")

    for name in names:
        path = os.path.join(sweep_dir, name)
        if os.path.isfile(path) and _is_tmp_name(name):
            findings.append(_finding(
                "leaked-tmp", path,
                "tmp file leaked by a crashed atomic write",
                repair="remove",
            ))
        elif ".corrupt" in name:
            findings.append(_finding(
                "quarantined-artifact", path,
                "previously quarantined file kept as evidence",
            ))

    # ---- manifest ---------------------------------------------------------
    scale: Optional[object] = None
    has_manifest = os.path.isfile(manifest_path)
    has_journal = os.path.isfile(journal_path)
    has_snapshot = os.path.isfile(snapshot_path)
    if has_manifest:
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            scale = manifest.get("config", {}).get("scale")
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            findings.append(_finding(
                "corrupt-manifest", manifest_path,
                f"unparseable sweep manifest ({type(error).__name__})",
                repair="quarantine to .corrupt (resume rewrites it)",
            ))
    elif has_journal or has_snapshot:
        findings.append(_finding(
            "missing-manifest", manifest_path,
            "journal/snapshot present without a manifest "
            "(resume re-creates it from the sweep request)",
        ))
    else:
        findings.append(_finding(
            "orphaned-sweep", sweep_dir,
            "sweep directory with no manifest, journal or snapshot",
            repair="rename to .orphan",
        ))

    # ---- journal ----------------------------------------------------------
    journal_state: Dict[str, List[dict]] = {}
    if has_journal:
        good, bad, torn = _scan_jsonl(journal_path)
        structurally_bad = [
            lineno for lineno, obj in good if not _valid_cell_entry(obj)
        ]
        good = [(ln, obj) for ln, obj in good if ln not in
                set(structurally_bad)]
        for lineno, obj in good:
            journal_state.setdefault(str(obj.get("cell_id")), []).append(obj)
        if torn and not structurally_bad:
            findings.append(_finding(
                "torn-journal", journal_path,
                f"final journal line {bad[0] + 1} is torn "
                f"(crash mid-append)",
                repair="truncate after the last intact line",
            ))
        elif bad or structurally_bad:
            all_bad = sorted(set(bad) | set(structurally_bad))
            findings.append(_finding(
                "corrupt-journal-entry", journal_path,
                f"{len(all_bad)} corrupt journal line(s): "
                f"{', '.join(str(n + 1) for n in all_bad[:5])}"
                f"{'…' if len(all_bad) > 5 else ''}",
                repair="rewrite journal keeping only intact entries",
                scale=scale,
            ))
        # Provenance re-validation of ok entries (merge does this too;
        # fsck surfaces it before a resume wastes time trusting them).
        mismatched = []
        for lineno, obj in good:
            if obj.get("status") != "ok":
                continue
            expected = _expected_hash(obj, scale)
            if expected is not None and obj.get(
                    "provenance_hash") != expected:
                mismatched.append((lineno, obj))
        if mismatched:
            cells = sorted({str(obj["cell_id"]) for _, obj in mismatched})
            findings.append(_finding(
                "cell-hash-mismatch", journal_path,
                f"{len(mismatched)} journal entr(y/ies) fail provenance "
                f"re-validation: {', '.join(cells[:4])}"
                f"{'…' if len(cells) > 4 else ''}",
                repair="drop the entries (the cells rerun on --resume)",
                scale=scale,
            ))

    # ---- snapshot ---------------------------------------------------------
    if has_snapshot:
        snapshot_cells: Optional[Dict[str, dict]] = None
        try:
            with open(snapshot_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
            snapshot_cells = dict(snapshot.get("cells", {}))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            findings.append(_finding(
                "corrupt-snapshot", snapshot_path,
                f"unparseable snapshot ({type(error).__name__}); "
                f"the journal alone reconstructs the state",
                repair="quarantine to .corrupt",
            ))
        if snapshot_cells is not None:
            divergent, snapshot_only = [], []
            for cell_id in sorted(snapshot_cells):
                entry = snapshot_cells[cell_id]
                if not isinstance(entry, dict) or not _valid_cell_entry(
                        entry):
                    divergent.append(cell_id)
                    continue
                versions = journal_state.get(cell_id)
                if versions is None:
                    snapshot_only.append(cell_id)
                elif entry not in versions:
                    divergent.append(cell_id)
            if divergent:
                findings.append(_finding(
                    "snapshot-divergence", snapshot_path,
                    f"{len(divergent)} snapshot cell(s) match no journaled "
                    f"version: {', '.join(divergent[:4])}"
                    f"{'…' if len(divergent) > 4 else ''}",
                    repair="rebuild snapshot from the journal "
                           "(journal is authoritative)",
                    scale=scale,
                ))
            if snapshot_only:
                findings.append(_finding(
                    "snapshot-only-cells", snapshot_path,
                    f"{len(snapshot_only)} cell(s) exist only in the "
                    f"snapshot (journal tail lost before the fsio "
                    f"protocol); merge re-validates their hashes",
                ))

    # ---- lock -------------------------------------------------------------
    if os.path.isfile(lock_path):
        pid: Optional[int] = None
        try:
            with open(lock_path, "r", encoding="utf-8") as handle:
                pid = int(json.load(handle)["pid"])
        except (OSError, ValueError, KeyError, TypeError):  # repro: allow[ERR002] — read-path probe, unreadable == torn lock
            pid = None
        if pid is not None and _pid_alive(pid):
            findings.append(_finding(
                "live-lock", lock_path,
                f"sweep lock held by live pid {pid} (a resume is running)",
            ))
        else:
            detail = (
                f"stale sweep lock (holder pid {pid} is not alive)"
                if pid is not None
                else "stale sweep lock (torn or unreadable body)"
            )
            findings.append(_finding(
                "stale-lock", lock_path, detail, repair="remove",
            ))

    # ---- observability files (best-effort tier) ---------------------------
    progress_path = os.path.join(sweep_dir, "progress.jsonl")
    if os.path.isfile(progress_path):
        _, bad, torn = _scan_jsonl(progress_path)
        if bad:
            findings.append(_finding(
                "torn-progress", progress_path,
                f"{len(bad)} unparseable progress line(s) "
                f"(readers skip them)",
                repair="rewrite keeping only intact lines",
            ))
    trace_dir = os.path.join(sweep_dir, "trace")
    if os.path.isdir(trace_dir):
        for name in sorted(os.listdir(trace_dir)):
            path = os.path.join(trace_dir, name)
            if _is_tmp_name(name):
                findings.append(_finding(
                    "leaked-tmp", path,
                    "tmp file leaked by a crashed atomic write",
                    repair="remove",
                ))
                continue
            if not name.endswith(".jsonl"):
                continue
            _, bad, torn = _scan_jsonl(path)
            if bad:
                findings.append(_finding(
                    "torn-span", path,
                    f"{len(bad)} unparseable span line(s) "
                    f"(the merge skips them)",
                    repair="rewrite keeping only intact lines",
                ))
    trace_json = os.path.join(sweep_dir, "trace.json")
    if os.path.isfile(trace_json):
        try:
            with open(trace_json, "r", encoding="utf-8") as handle:
                json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):  # repro: allow[ERR002] — the failure *becomes* a finding
            findings.append(_finding(
                "corrupt-merged-trace", trace_json,
                "unparseable merged trace (derived data; re-mergeable "
                "from the span files)",
                repair="quarantine to .corrupt",
            ))


def fsck_scan(runs_dir: str) -> FsckResult:
    """Scan one runs directory; raises FileNotFoundError if missing."""
    if not os.path.isdir(runs_dir):
        raise FileNotFoundError(runs_dir)
    result = FsckResult(root=runs_dir)
    _scan_registry_root(runs_dir, result.findings)
    sweeps_root = os.path.join(runs_dir, "sweeps")
    if os.path.isdir(sweeps_root):
        for name in sorted(os.listdir(sweeps_root)):
            sweep_dir = os.path.join(sweeps_root, name)
            if not os.path.isdir(sweep_dir):
                continue
            if name.endswith(".orphan") or ".orphan." in name:
                result.findings.append(_finding(
                    "quarantined-artifact", sweep_dir,
                    "previously orphaned sweep directory kept as evidence",
                ))
                continue
            _scan_sweep_dir(sweep_dir, result.findings)
    return result


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------

def _rewrite_jsonl(path: str, keep) -> int:
    """Atomically rewrite a JSONL file keeping lines ``keep`` accepts.

    ``keep(obj)`` judges each parsed line; unparseable lines are always
    dropped.  Returns the number of dropped lines.
    """
    good, bad, _ = _scan_jsonl(path)
    kept_lines = []
    dropped = len(bad)
    for _, obj in good:
        if keep(obj):
            kept_lines.append(
                json.dumps(obj, sort_keys=True, separators=(",", ":"))
            )
        else:
            dropped += 1
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in kept_lines:
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except Exception:
        try:
            os.remove(tmp)
        except OSError:  # repro: allow[ERR002] — original error propagates
            pass
        raise
    return dropped


def _repair_journal(journal_path: str, scale: object) -> None:
    """Keep only intact, provenance-valid journal entries."""

    def keep(obj: dict) -> bool:
        if not _valid_cell_entry(obj):
            return False
        if obj.get("status") == "ok":
            expected = _expected_hash(obj, scale)
            if expected is not None and obj.get(
                    "provenance_hash") != expected:
                return False
        return True

    _rewrite_jsonl(journal_path, keep)


def _repair_snapshot(snapshot_path: str, journal_path: str,
                     scale: object) -> None:
    """Rebuild the snapshot from the (authoritative) journal.

    Journaled versions win; snapshot-only cells that re-validate are
    kept (they are the journal-tail-lost survivors).
    """
    journal_state: Dict[str, dict] = {}
    if os.path.isfile(journal_path):
        good, _, _ = _scan_jsonl(journal_path)
        for _, obj in good:
            if _valid_cell_entry(obj):
                journal_state[str(obj["cell_id"])] = obj
    old_cells: Dict[str, dict] = {}
    version = 1
    sweep = os.path.basename(os.path.dirname(snapshot_path))
    try:
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        old_cells = dict(snapshot.get("cells", {}))
        version = snapshot.get("version", 1)
        sweep = snapshot.get("sweep", sweep)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError):  # repro: allow[ERR002]
        pass  # unreadable old snapshot: rebuilt purely from the journal
    cells = dict(journal_state)
    for cell_id, entry in old_cells.items():
        if cell_id in cells or not isinstance(entry, dict):
            continue
        if not _valid_cell_entry(entry):
            continue
        if entry.get("status") == "ok":
            expected = _expected_hash(entry, scale)
            if expected is not None and entry.get(
                    "provenance_hash") != expected:
                continue
        cells[cell_id] = entry  # snapshot-only survivor
    write_json_atomic(snapshot_path, {
        "version": version,
        "sweep": sweep,
        "cells": {k: cells[k] for k in sorted(cells)},
    })


def _quarantine_dir(path: str) -> str:
    target, n = f"{path}.orphan", 1
    while os.path.exists(target):
        target = f"{path}.orphan.{n}"
        n += 1
    os.replace(path, target)
    return target


def fsck_repair(result: FsckResult) -> None:
    """Apply each finding's repair in place; marks findings repaired.

    Repairs re-derive their inputs from disk (not from scan state), so
    multiple findings over the same file compose and a repeated repair
    is a no-op.  A caller wanting proof should rescan afterwards.
    """
    for finding in result.findings:
        if not finding.repair:
            continue
        kind, path = finding.kind, finding.path
        if kind == "leaked-tmp":
            try:
                os.remove(path)
            except FileNotFoundError:
                pass  # another finding's repair already swept it
        elif kind in ("corrupt-record", "corrupt-manifest",
                      "corrupt-snapshot", "corrupt-merged-trace"):
            if os.path.isfile(path):
                quarantine_corrupt(path)
        elif kind in ("torn-journal", "corrupt-journal-entry",
                      "cell-hash-mismatch"):
            if os.path.isfile(path):
                _repair_journal(path, finding.context.get("scale"))
        elif kind == "snapshot-divergence":
            if os.path.isfile(path):
                _repair_snapshot(
                    path,
                    os.path.join(os.path.dirname(path), "journal.jsonl"),
                    finding.context.get("scale"),
                )
        elif kind == "stale-lock":
            try:
                os.remove(path)
            except FileNotFoundError:
                pass
        elif kind in ("torn-progress", "torn-span"):
            if os.path.isfile(path):
                _rewrite_jsonl(path, lambda obj: True)
        elif kind == "orphaned-sweep":
            if os.path.isdir(path):
                _quarantine_dir(path)
        else:
            continue
        finding.repaired = True
