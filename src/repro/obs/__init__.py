"""Observability for the simulated cluster: spans, telemetry, profiling.

The measurement substrate the source paper had on real hardware —
performance counters, framework logs, sampled system metrics — rebuilt
for the simulator.  Everything is default-off: with no tracer attached
the instrumented code paths record nothing and schedules stay
bit-identical.
"""

from repro.obs.export import (
    render_trace_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    ClusterTelemetry,
    Counter,
    CounterRegistry,
    NodeSample,
    TimelineTotals,
    UtilizationTimeline,
)
from repro.obs.profiler import PhaseProfiler, phase, profiler, set_profiler
from repro.obs.tracer import (
    SPAN_CATEGORIES,
    CounterSample,
    InstantEvent,
    Span,
    Tracer,
)

__all__ = [
    "SPAN_CATEGORIES",
    "ClusterTelemetry",
    "Counter",
    "CounterRegistry",
    "CounterSample",
    "InstantEvent",
    "NodeSample",
    "PhaseProfiler",
    "Span",
    "TimelineTotals",
    "Tracer",
    "UtilizationTimeline",
    "phase",
    "profiler",
    "render_trace_summary",
    "set_profiler",
    "to_chrome_trace",
    "write_chrome_trace",
]
