"""Observability for the simulated cluster: spans, telemetry, profiling.

The measurement substrate the source paper had on real hardware —
performance counters, framework logs, sampled system metrics — rebuilt
for the simulator.  Everything is default-off: with no tracer attached
the instrumented code paths record nothing and schedules stay
bit-identical.
"""

from repro.obs.anchors import (
    PAPER_ANCHORS,
    Anchor,
    AnchorCheck,
    anchored_experiments,
    anchors_for,
    evaluate_record,
)
from repro.obs.export import (
    render_trace_summary,
    sweep_records_to_chrome,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.dashboard import render_history_page, render_site
from repro.obs.hostprof import (
    HostProfile,
    HotFunction,
    module_of,
    profile_call,
)
from repro.obs.observatory import (
    ObservatoryModel,
    SkippedArtifact,
    SweepView,
    build_model,
)
from repro.obs.perf import (
    BenchResult,
    BenchTarget,
    PerfDiff,
    bench_targets,
    load_budgets,
    perfdiff,
    run_bench,
)
from repro.obs.stats import (
    RobustStats,
    bootstrap_ci_median,
    intervals_separated,
    mad,
    median,
    robust_summary,
)
from repro.obs.metrics import (
    ClusterTelemetry,
    Counter,
    CounterRegistry,
    NodeSample,
    TimelineTotals,
    UtilizationTimeline,
)
from repro.obs.profiler import PhaseProfiler, phase, profiler, set_profiler
from repro.obs.registry import (
    SCHEMA_VERSION,
    RunRecord,
    RunRegistry,
    build_provenance,
    flatten_rows,
    runs_dir_default,
)
from repro.obs.report import (
    DiffResult,
    History,
    Scorecard,
    diff_records,
    history,
    scorecard,
    sparkline,
)
from repro.obs.stream import (
    PROGRESS_SCHEMA_VERSION,
    ProgressStream,
    TerminalRenderer,
    read_progress,
    render_openmetrics,
)
from repro.obs.tracer import (
    SPAN_CATEGORIES,
    CounterSample,
    InstantEvent,
    Span,
    Tracer,
)

__all__ = [
    "PAPER_ANCHORS",
    "PROGRESS_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "SPAN_CATEGORIES",
    "Anchor",
    "AnchorCheck",
    "BenchResult",
    "BenchTarget",
    "ClusterTelemetry",
    "Counter",
    "CounterRegistry",
    "CounterSample",
    "DiffResult",
    "History",
    "HostProfile",
    "HotFunction",
    "InstantEvent",
    "NodeSample",
    "ObservatoryModel",
    "PerfDiff",
    "PhaseProfiler",
    "ProgressStream",
    "RobustStats",
    "RunRecord",
    "RunRegistry",
    "Scorecard",
    "SkippedArtifact",
    "Span",
    "SweepView",
    "TerminalRenderer",
    "TimelineTotals",
    "Tracer",
    "UtilizationTimeline",
    "anchored_experiments",
    "anchors_for",
    "bench_targets",
    "bootstrap_ci_median",
    "build_model",
    "build_provenance",
    "diff_records",
    "evaluate_record",
    "flatten_rows",
    "history",
    "intervals_separated",
    "load_budgets",
    "mad",
    "median",
    "module_of",
    "perfdiff",
    "phase",
    "profile_call",
    "profiler",
    "read_progress",
    "render_history_page",
    "render_openmetrics",
    "render_site",
    "render_trace_summary",
    "robust_summary",
    "run_bench",
    "runs_dir_default",
    "scorecard",
    "set_profiler",
    "sparkline",
    "sweep_records_to_chrome",
    "to_chrome_trace",
    "write_chrome_trace",
]
