"""Live sweep progress: JSONL event stream, renderer, OpenMetrics view.

The supervised executor (:class:`repro.exec.supervisor.SweepExecutor`)
emits one dict per progress event through its ``observer`` hook.  This
module gives those events three consumers:

- :class:`ProgressStream` — stamps each event with a schema version,
  sweep id and epoch timestamp, appends it to a ``progress.jsonl``
  file (flushed per line, torn-tail tolerant on read), and forwards it
  to an optional renderer.  The JSONL file *is* the wire format: a
  future ``repro serve`` streams exactly these lines to clients, and
  ``tail -f`` works on it today.
- :class:`TerminalRenderer` — a single carriage-return status line on
  stderr (done/total, retries, quarantines, throughput, ETA) for
  humans watching ``repro sweep --jobs N``.
- :func:`render_openmetrics` — an OpenMetrics-style text exposition of
  registry and executor counters (``repro metrics``), so external
  tooling can scrape a run directory without knowing our schemas.

Determinism: everything here is observation.  Events carry wall-clock
timestamps (this module is on the DET003 quarantine list) but nothing
flows back into cell execution or record ``metrics`` — the stream can
be turned on and off without changing a single computed byte.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.fsio import BestEffortWriter

#: Bumped on incompatible progress-event layout changes.
PROGRESS_SCHEMA_VERSION = 1

__all__ = [
    "PROGRESS_SCHEMA_VERSION",
    "ProgressStream",
    "TerminalRenderer",
    "read_progress",
    "render_openmetrics",
]


class TerminalRenderer:
    """One live status line, redrawn in place with carriage returns."""

    def __init__(self, out=None):
        self.out = out if out is not None else sys.stderr
        self._dirty = False
        self._width = 0
        self._retried = 0
        self._quarantined = 0
        self._total = 0

    def update(self, event: Dict) -> None:
        kind = event.get("event")
        if kind == "sweep-started":
            self._total = int(event.get("total", 0))
        elif kind == "cell-retried":
            self._retried += 1
        elif kind == "cell-quarantined":
            self._quarantined += 1
        elif kind not in ("cell-started", "cell-finished", "sweep-finished"):
            return
        done = int(event.get("done", 0))
        total = int(event.get("total", self._total)) or self._total
        parts = [f"sweep {done}/{total} cells"]
        if self._retried:
            parts.append(f"{self._retried} retried")
        if self._quarantined:
            parts.append(f"{self._quarantined} quarantined")
        rate = event.get("cells_per_s")
        if rate:
            parts.append(f"{rate:.2f} cells/s")
        eta = event.get("eta_s")
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if kind == "sweep-finished":
            parts.append("done")
        line = " | ".join(parts)
        self._width = max(self._width, len(line))
        try:
            self.out.write("\r" + line.ljust(self._width))
            self.out.flush()
            self._dirty = True
        except (OSError, ValueError):  # repro: allow[ERR002]
            pass  # terminal cosmetics; the durable stream has counters

    def close(self) -> None:
        if self._dirty:
            try:
                self.out.write("\n")
                self.out.flush()
            except (OSError, ValueError):  # repro: allow[ERR002]
                pass  # terminal cosmetics; nothing durable is lost
            self._dirty = False


class ProgressStream:
    """Append-only JSONL progress event stream for one sweep.

    Usable directly as the executor's ``observer`` (it is a callable).
    Derived fields (``cells_per_s``, ``eta_s``) are computed here, on
    the consumer side of the executor, so the supervisor stays free of
    presentation arithmetic.  All I/O is best-effort via
    :class:`repro.fsio.BestEffortWriter`: a dead disk degrades to *no
    stream*, never to a failed sweep — but every dropped event is
    counted (``stream_writer_errors`` / ``stream_dropped_events`` in
    :meth:`telemetry`) and the first failure warns once on stderr.
    """

    def __init__(self, path: Optional[str] = None, *,
                 sweep: Optional[str] = None, renderer=None, io=None):
        self.path = path
        self.sweep = sweep
        self.renderer = renderer
        self._writer = (
            BestEffortWriter(path, io=io, label="progress stream")
            if path is not None else None
        )
        self._started = time.time()
        self._resumed = 0

    def __call__(self, event: Dict) -> None:
        self.emit(event)

    def emit(self, event: Dict) -> None:
        event = dict(event)
        event["v"] = PROGRESS_SCHEMA_VERSION
        if self.sweep is not None:
            event["sweep"] = self.sweep
        now = time.time()
        event["t"] = now
        kind = event.get("event")
        if kind == "sweep-started":
            self._started = now
            self._resumed = int(event.get("from_checkpoint", 0))
        elif kind == "cell-finished":
            done = int(event.get("done", 0))
            total = int(event.get("total", 0))
            fresh = max(0, done - self._resumed)
            elapsed = max(1e-9, now - self._started)
            rate = fresh / elapsed
            event["cells_per_s"] = rate
            event["eta_s"] = (
                max(0, total - done) / rate if rate > 0 else None
            )
        self._write(event)
        if self.renderer is not None:
            try:
                self.renderer.update(event)
            except Exception:  # repro: allow[ERR002] — cosmetics only
                pass

    def _write(self, event: Dict) -> None:
        if self._writer is not None:
            self._writer.append(event)

    def telemetry(self) -> Dict[str, float]:
        """Stream write/drop counters, for the record's ``exec.*`` block."""
        if self._writer is None:
            return {}
        return self._writer.telemetry("stream")

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
        if self.renderer is not None:
            try:
                self.renderer.close()
            except Exception:  # repro: allow[ERR002] — cosmetics only
                pass


def read_progress(path: str) -> List[Dict]:
    """Load a progress JSONL file, skipping torn or foreign lines."""
    events: List[Dict] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:  # repro: allow[ERR002] — read path; no stream == no events
        return events
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "event" in event:
                events.append(event)
    return events


# ---- OpenMetrics exposition -----------------------------------------------

def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _sanitize(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def render_openmetrics(runs_dir: Optional[str] = None) -> str:
    """Executor and registry counters as OpenMetrics-style text.

    Scrapes are read-only over the run directory: registry record
    counts per (experiment, kind), the latest ``exec.*`` telemetry of
    every experiment that has any, and per-sweep checkpoint progress
    (total/done/quarantined cells plus the last streamed throughput
    and ETA).

    OpenMetrics framing: every metric family gets ``# HELP`` and
    ``# TYPE`` lines (emitted even when the family has no samples, so
    scrapers learn the full schema from any scrape), a constant
    ``repro_build_info`` gauge carries the record/progress schema
    versions and git SHA, and the exposition terminates with ``# EOF``.
    """

    from repro.errors import CheckpointError
    from repro.exec.checkpoint import SweepCheckpoint
    from repro.obs.registry import (
        SCHEMA_VERSION,
        RunRegistry,
        git_sha,
        runs_dir_default,
    )

    root = runs_dir if runs_dir is not None else runs_dir_default()
    registry = RunRegistry(root)
    records = registry.records()

    lines: List[str] = []
    lines.append(
        "# HELP repro_build_info Constant gauge carrying the record/"
        "progress schema versions and build identity."
    )
    lines.append("# TYPE repro_build_info gauge")
    lines.append(
        "repro_build_info{"
        f'record_schema="{SCHEMA_VERSION}",'
        f'progress_schema="{PROGRESS_SCHEMA_VERSION}",'
        f'git_sha="{_escape_label(git_sha())}"'
        "} 1"
    )
    lines.append(
        "# HELP repro_registry_records Run records in the registry."
    )
    lines.append("# TYPE repro_registry_records gauge")
    counts: Dict[Tuple[str, str], int] = {}
    for record in records:
        key = (record.experiment, record.kind)
        counts[key] = counts.get(key, 0) + 1
    for experiment, kind in sorted(counts):
        lines.append(
            f'repro_registry_records{{experiment="{_escape_label(experiment)}"'
            f',kind="{_escape_label(kind)}"}} {counts[(experiment, kind)]}'
        )

    lines.append(
        "# HELP repro_exec_telemetry Latest sweep-executor telemetry "
        "per experiment (quarantined wall-clock values included)."
    )
    lines.append("# TYPE repro_exec_telemetry gauge")
    latest: Dict[str, object] = {}
    for record in records:  # oldest first; last assignment wins
        if any(key.startswith("exec.") for key in record.timings):
            latest[record.experiment] = record
    for experiment in sorted(latest):
        record = latest[experiment]
        for key in sorted(record.timings):
            if not key.startswith("exec."):
                continue
            lines.append(
                f'repro_exec_telemetry{{experiment='
                f'"{_escape_label(experiment)}",'
                f'key="{_sanitize(key[len("exec."):])}"}} '
                f"{record.timings[key]}"
            )

    sweeps_root = os.path.join(root, "sweeps")
    lines.append(
        "# HELP repro_sweep_cells Checkpointed cell states per sweep."
    )
    lines.append("# TYPE repro_sweep_cells gauge")
    sweep_names: List[str] = []
    if os.path.isdir(sweeps_root):
        sweep_names = sorted(os.listdir(sweeps_root))
    throughput: List[str] = []
    etas: List[str] = []
    for sweep in sweep_names:
        checkpoint = SweepCheckpoint(root, sweep)
        try:
            manifest = checkpoint.manifest()
        except CheckpointError:
            continue
        results = checkpoint.load()
        done = sum(1 for r in results.values() if r.status == "ok")
        quarantined = sum(
            1 for r in results.values() if r.status == "quarantined"
        )
        label = _escape_label(sweep)
        lines.append(
            f'repro_sweep_cells{{sweep="{label}",state="total"}} '
            f'{int(manifest.get("n_cells", 0))}'
        )
        lines.append(
            f'repro_sweep_cells{{sweep="{label}",state="done"}} {done}'
        )
        lines.append(
            f'repro_sweep_cells{{sweep="{label}",state="quarantined"}} '
            f"{quarantined}"
        )
        events = read_progress(os.path.join(checkpoint.dir, "progress.jsonl"))
        finished = [e for e in events if e.get("event") == "cell-finished"]
        if finished:
            last = finished[-1]
            if last.get("cells_per_s") is not None:
                throughput.append(
                    f'repro_sweep_cells_per_second{{sweep="{label}"}} '
                    f'{last["cells_per_s"]}'
                )
            if last.get("eta_s") is not None:
                etas.append(
                    f'repro_sweep_eta_seconds{{sweep="{label}"}} '
                    f'{last["eta_s"]}'
                )
    # HELP/TYPE are part of the schema, not the data: emit them even
    # when a family has no samples this scrape.
    lines.append(
        "# HELP repro_sweep_cells_per_second Last streamed throughput."
    )
    lines.append("# TYPE repro_sweep_cells_per_second gauge")
    lines.extend(throughput)
    lines.append("# HELP repro_sweep_eta_seconds Last streamed ETA.")
    lines.append("# TYPE repro_sweep_eta_seconds gauge")
    lines.extend(etas)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
