"""Counters, gauges and the per-node utilization timeline.

Two cooperating pieces:

- :class:`CounterRegistry` — a process-local registry of named counters
  and wall-clock timers, used for experiment timings
  (:class:`repro.experiments.runner.ExperimentContext`) and the uarch
  sweep profiling hooks (:mod:`repro.obs.profiler`).
- :class:`ClusterTelemetry` — samples every node's cumulative CPU /
  disk / network accounting on the *simulated* clock, building the
  :class:`UtilizationTimeline` that :meth:`repro.cluster.cluster.Cluster.metrics`
  aggregates its scalar totals from.  The final timeline sample reads
  exactly the accounting fields the scalar path used to read, so totals
  stay bit-identical whether or not telemetry is attached.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional


class Counter:
    """A named monotonically accumulating value."""

    __slots__ = ("name", "value", "events")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.events = 0

    def add(self, delta: float = 1.0) -> None:
        self.value += delta
        self.events += 1


class CounterRegistry:
    """Named counters plus wall-clock timers built on them.

    ``timer(name)`` accumulates into two counters: ``<name>.seconds``
    (wall time) and ``<name>.calls``.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def add(self, name: str, delta: float = 1.0) -> None:
        self.counter(name).add(delta)

    @contextmanager
    def timer(self, name: str):
        started = _time.perf_counter()
        try:
            yield
        finally:
            self.add(f"{name}.seconds", _time.perf_counter() - started)
            self.add(f"{name}.calls", 1.0)

    def value(self, name: str) -> float:
        return self.counter(name).value

    def snapshot(self) -> Dict[str, float]:
        """Current values, sorted by name."""
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
        }

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)


@dataclass(frozen=True)
class NodeSample:
    """Cumulative per-node accounting at one simulated instant.

    All fields are running totals since cluster construction (the same
    monotone counters the scalar metrics path reads), so any window's
    activity is the difference of two samples.
    """

    time: float
    node: str
    cpu_seconds: float
    io_block_seconds: float
    disk_busy_seconds: float
    disk_weighted_seconds: float
    disk_bytes: int
    net_bytes: int


@dataclass(frozen=True)
class TimelineTotals:
    """Cluster-wide cumulative totals read off the timeline's end."""

    cpu_seconds: float
    disk_busy_seconds: float
    disk_weighted_seconds: float
    disk_bytes: int
    net_bytes: int


class UtilizationTimeline:
    """Per-node cumulative samples ordered by simulated time."""

    def __init__(self):
        self.samples: List[NodeSample] = []

    def append(self, sample: NodeSample) -> None:
        self.samples.append(sample)

    def node_series(self, node: str) -> List[NodeSample]:
        return [s for s in self.samples if s.node == node]

    def utilization_series(
        self, node: str, cores: int = 1
    ) -> List[tuple]:
        """Windowed ``(time, cpu_util, disk_util)`` rates for one node.

        Each point covers the window ending at its timestamp; the rates
        are the deltas of the cumulative counters over the window.
        """
        series = []
        previous: Optional[NodeSample] = None
        for sample in self.node_series(node):
            if previous is not None:
                window = sample.time - previous.time
                if window > 0:
                    cpu = (
                        (sample.cpu_seconds - previous.cpu_seconds)
                        / window / max(1, cores)
                    )
                    disk = (
                        sample.disk_busy_seconds - previous.disk_busy_seconds
                    ) / window
                    series.append((sample.time, cpu, disk))
            previous = sample
        return series

    def final_totals(self, node_order: List[str]) -> TimelineTotals:
        """Cluster totals from each node's last sample.

        Sums run in ``node_order`` so the floating-point result is
        bit-identical to summing the live node counters directly.
        """
        last: Dict[str, NodeSample] = {}
        for sample in self.samples:
            last[sample.node] = sample
        missing = [n for n in node_order if n not in last]
        if missing:
            raise ValueError(f"timeline has no samples for nodes {missing}")
        finals = [last[name] for name in node_order]
        return TimelineTotals(
            cpu_seconds=sum(s.cpu_seconds for s in finals),
            disk_busy_seconds=sum(s.disk_busy_seconds for s in finals),
            disk_weighted_seconds=sum(s.disk_weighted_seconds for s in finals),
            disk_bytes=sum(s.disk_bytes for s in finals),
            net_bytes=sum(s.net_bytes for s in finals),
        )

    def __len__(self) -> int:
        return len(self.samples)


class ClusterTelemetry:
    """Samples a cluster's nodes into a timeline and the tracer.

    Created by :meth:`repro.cluster.cluster.Cluster.attach_telemetry`;
    the scheduler drives :meth:`sample` periodically (and at wave
    boundaries), and :meth:`finalize` takes the closing sample that
    :meth:`~repro.cluster.cluster.Cluster.metrics` aggregates.
    """

    def __init__(self, cluster, tracer):
        self.cluster = cluster
        self.tracer = tracer
        self.timeline = UtilizationTimeline()
        self._previous: Dict[str, NodeSample] = {}

    def sample(self) -> None:
        """Record one cumulative sample per node, plus windowed gauges."""
        sim = self.cluster.sim
        now = sim.now
        for node in self.cluster.nodes:
            current = NodeSample(
                time=now,
                node=node.name,
                cpu_seconds=node.cpu_time,
                io_block_seconds=node.io_block_time,
                disk_busy_seconds=node.disk.peek_busy_time(),
                disk_weighted_seconds=node.disk.peek_weighted_io_time(),
                disk_bytes=node.disk.total_bytes,
                net_bytes=node.nic.total_bytes,
            )
            self.timeline.append(current)
            previous = self._previous.get(node.name)
            if previous is not None and self.tracer is not None:
                window = now - previous.time
                if window > 0:
                    self.tracer.sample(
                        f"{node.name} utilization",
                        track=node.name,
                        time=now,
                        cpu=(current.cpu_seconds - previous.cpu_seconds)
                        / window / node.spec.cores,
                        disk=(
                            current.disk_busy_seconds
                            - previous.disk_busy_seconds
                        ) / window,
                        disk_mbps=(current.disk_bytes - previous.disk_bytes)
                        / window / 1e6,
                        net_mbps=(current.net_bytes - previous.net_bytes)
                        / window / 1e6,
                    )
            self._previous[node.name] = current

    def finalize(self) -> TimelineTotals:
        """Take a closing sample (if time advanced) and return totals."""
        now = self.cluster.sim.now
        if not self.timeline.samples or self.timeline.samples[-1].time != now:
            self.sample()
        return self.timeline.final_totals(
            [node.name for node in self.cluster.nodes]
        )
