"""BDGS-style synthetic data generation (Table 1 of the paper).

BigDataBench scales seven seed datasets with its Big Data Generator
Suite (BDGS); this package reproduces the generators' distributional
behaviour — Zipfian text, power-law graphs, relational tables and a
TPC-DS-like star schema — at configurable scale and with deterministic
seeding.
"""

from repro.datagen.text import TextGenerator, WikipediaCorpus, AmazonReviews
from repro.datagen.graph import GraphGenerator, GoogleWebGraph, FacebookSocialGraph
from repro.datagen.table import (
    EcommerceTransactions,
    ProfSearchResumes,
    TableGenerator,
)
from repro.datagen.tpcds import TpcDsWebTables
from repro.datagen.seeds import DATASETS, DatasetSpec, dataset

__all__ = [
    "TextGenerator",
    "WikipediaCorpus",
    "AmazonReviews",
    "GraphGenerator",
    "GoogleWebGraph",
    "FacebookSocialGraph",
    "TableGenerator",
    "EcommerceTransactions",
    "ProfSearchResumes",
    "TpcDsWebTables",
    "DATASETS",
    "DatasetSpec",
    "dataset",
]
