"""The dataset catalog of Table 1.

Maps each of the paper's seven seed datasets to its generator, seed
statistics and the record size quoted in Table 2, so workloads and
benches can request data by name at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.datagen.graph import FacebookSocialGraph, GoogleWebGraph
from repro.datagen.table import EcommerceTransactions, ProfSearchResumes
from repro.datagen.text import AmazonReviews, WikipediaCorpus
from repro.datagen.tpcds import TpcDsWebTables


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1.

    Attributes:
        name: Catalog key.
        description: The paper's description of the seed.
        generator_tool: Which BDGS generator scales it.
        record_bytes: Typical K-V record size (from Table 2).
        factory: Builds the generator (seed keyword supported).
    """

    name: str
    description: str
    generator_tool: str
    record_bytes: int
    factory: Callable


DATASETS: Dict[str, DatasetSpec] = {
    "wikipedia": DatasetSpec(
        name="wikipedia",
        description="Wikipedia Entries: 4,300,000 English articles",
        generator_tool="Text Generator of BDGS",
        record_bytes=64 * 1024,
        factory=WikipediaCorpus,
    ),
    "amazon": DatasetSpec(
        name="amazon",
        description="Amazon Movie Reviews: 7,911,684 reviews",
        generator_tool="Text Generator of BDGS",
        record_bytes=52 * 1024,
        factory=AmazonReviews,
    ),
    "google_graph": DatasetSpec(
        name="google_graph",
        description="Google Web Graph: 875,713 nodes, 5,105,039 edges",
        generator_tool="Graph Generator of BDGS",
        record_bytes=6 * 1024,
        factory=GoogleWebGraph,
    ),
    "facebook_graph": DatasetSpec(
        name="facebook_graph",
        description="Facebook Social Network: 4,039 nodes, 88,234 edges",
        generator_tool="Graph Generator of BDGS",
        record_bytes=94,
        factory=FacebookSocialGraph,
    ),
    "ecommerce": DatasetSpec(
        name="ecommerce",
        description=(
            "E-commerce Transaction Data: Table 1 (4 columns, 38,658 rows), "
            "Table 2 (6 columns, 242,735 rows)"
        ),
        generator_tool="Table Generator of BDGS",
        record_bytes=52,
        factory=EcommerceTransactions,
    ),
    "profsearch": DatasetSpec(
        name="profsearch",
        description="ProfSearch Person Resumes: 278,956 resumes",
        generator_tool="Table Generator of BDGS",
        record_bytes=1128,
        factory=ProfSearchResumes,
    ),
    "tpcds_web": DatasetSpec(
        name="tpcds_web",
        description="TPC-DS WebTable Data: 26 tables",
        generator_tool="TPC DSGen",
        record_bytes=14 * 1024,
        factory=TpcDsWebTables,
    ),
}


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by catalog key."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        ) from None
