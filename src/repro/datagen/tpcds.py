"""TPC-DS-like web-sales star schema (Table 1, dataset 7).

The paper uses the DSGen-produced 26-table TPC-DS web data for the
Hive/Shark decision-support queries (Q3, Q8, Q10).  This module
generates the minimal star-schema subset those queries touch — a
``web_sales`` fact table with ``date_dim``, ``item``, ``customer`` and
``customer_demographics`` dimensions — with realistic key skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class TpcDsTables:
    """Generated dimension and fact rows, column-keyed."""

    date_dim: List[dict] = field(default_factory=list)
    item: List[dict] = field(default_factory=list)
    customer: List[dict] = field(default_factory=list)
    customer_demographics: List[dict] = field(default_factory=list)
    web_sales: List[dict] = field(default_factory=list)

    @property
    def table_names(self) -> List[str]:
        return [
            "date_dim",
            "item",
            "customer",
            "customer_demographics",
            "web_sales",
        ]


class TpcDsWebTables:
    """Deterministic TPC-DS-like generator.

    ``scale`` multiplies the fact-table row count; dimensions scale
    sub-linearly as in DSGen.
    """

    N_YEARS = 5
    N_CATEGORIES = 10

    def __init__(self, scale: float = 1.0, seed: int = 23):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self._rng = np.random.default_rng(seed)

    def generate(self, base_sales: int = 20_000) -> TpcDsTables:
        """Build all tables; ``base_sales`` fact rows at scale 1."""
        rng = self._rng
        tables = TpcDsTables()

        n_dates = 365 * self.N_YEARS
        for d in range(n_dates):
            tables.date_dim.append(
                {
                    "d_date_sk": d,
                    "d_year": 2010 + d // 365,
                    "d_moy": 1 + (d % 365) // 31,
                    "d_dom": 1 + (d % 365) % 28,
                }
            )

        n_items = max(100, int(1000 * np.sqrt(self.scale)))
        brands = [f"brand-{b}" for b in range(50)]
        for i in range(n_items):
            tables.item.append(
                {
                    "i_item_sk": i,
                    "i_brand": brands[int(rng.integers(0, len(brands)))],
                    "i_brand_id": int(rng.integers(0, len(brands))),
                    "i_category_id": int(rng.integers(0, self.N_CATEGORIES)),
                    "i_manufact_id": int(rng.integers(0, 100)),
                    "i_current_price": round(float(rng.gamma(2.0, 25.0)), 2),
                }
            )

        n_customers = max(200, int(2000 * np.sqrt(self.scale)))
        for c in range(n_customers):
            tables.customer.append(
                {
                    "c_customer_sk": c,
                    "c_current_cdemo_sk": c % max(1, n_customers // 4),
                    "c_birth_year": 1950 + int(rng.integers(0, 50)),
                }
            )
        for cd in range(max(1, n_customers // 4)):
            tables.customer_demographics.append(
                {
                    "cd_demo_sk": cd,
                    "cd_gender": "F" if rng.random() < 0.5 else "M",
                    "cd_education_status": ["college", "primary", "secondary", "unknown"][
                        int(rng.integers(0, 4))
                    ],
                    "cd_purchase_estimate": int(rng.integers(1, 10)) * 500,
                }
            )

        n_sales = max(100, int(base_sales * self.scale))
        # Item popularity is Zipf-skewed, as in real sales data.
        ranks = np.arange(1, n_items + 1, dtype=float)
        item_probs = np.power(ranks, -1.05)
        item_probs /= item_probs.sum()
        item_choice = rng.choice(n_items, size=n_sales, p=item_probs)
        date_choice = rng.integers(0, n_dates, size=n_sales)
        customer_choice = rng.integers(0, n_customers, size=n_sales)
        quantities = rng.integers(1, 10, size=n_sales)
        prices = rng.gamma(2.0, 25.0, size=n_sales)
        for s in range(n_sales):
            price = round(float(prices[s]), 2)
            qty = int(quantities[s])
            tables.web_sales.append(
                {
                    "ws_order_number": s,
                    "ws_item_sk": int(item_choice[s]),
                    "ws_sold_date_sk": int(date_choice[s]),
                    "ws_bill_customer_sk": int(customer_choice[s]),
                    "ws_quantity": qty,
                    "ws_sales_price": price,
                    "ws_ext_sales_price": round(price * qty, 2),
                    "ws_net_paid": round(price * qty * 0.92, 2),
                }
            )
        return tables

    @staticmethod
    def sizes(tables: TpcDsTables) -> Dict[str, int]:
        """Row counts per table (for reporting and tests)."""
        return {name: len(getattr(tables, name)) for name in tables.table_names}
