"""Power-law graph generation (the BDGS Graph Generator).

Two seed graphs are modelled (Table 1): the Google web graph (875,713
nodes, 5,105,039 edges — a sparse directed graph with in-degree power
law) and the Facebook social network (4,039 nodes, 88,234 edges — a
denser undirected graph with strong clustering).  Preferential
attachment reproduces the degree skew PageRank and K-means over graph
features are sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True)
class GraphConfig:
    """Shape of a generated graph."""

    n_nodes: int
    mean_out_degree: float
    directed: bool = True
    attachment_bias: float = 0.8  # 0 = uniform targets, 1 = pure rich-get-richer

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("n_nodes must be >= 2")
        if self.mean_out_degree <= 0:
            raise ValueError("mean_out_degree must be positive")
        if not 0.0 <= self.attachment_bias <= 1.0:
            raise ValueError("attachment_bias must be in [0, 1]")


class GraphGenerator:
    """Preferential-attachment graph builder.

    Nodes arrive in order; each new node emits a Poisson number of edges
    whose targets are drawn, with probability ``attachment_bias``, from
    the existing edge endpoints (degree-proportional — the classic
    rich-get-richer dynamic) and uniformly otherwise.
    """

    def __init__(self, config: GraphConfig, seed: int = 7):
        self.config = config
        self._rng = np.random.default_rng(seed)

    def edges(self) -> List[Tuple[int, int]]:
        """Generate the full edge list."""
        config = self.config
        rng = self._rng
        edge_list: List[Tuple[int, int]] = []
        # Endpoint pool for degree-proportional sampling.
        endpoint_pool: List[int] = [0]
        for node in range(1, config.n_nodes):
            n_edges = max(1, int(rng.poisson(config.mean_out_degree)))
            for _ in range(n_edges):
                if rng.random() < config.attachment_bias and endpoint_pool:
                    target = endpoint_pool[int(rng.integers(len(endpoint_pool)))]
                else:
                    target = int(rng.integers(node))
                if target == node:
                    continue
                edge_list.append((node, target))
                endpoint_pool.append(target)
                endpoint_pool.append(node)
                if not config.directed:
                    edge_list.append((target, node))
        return edge_list

    def adjacency(self) -> Dict[int, List[int]]:
        """Adjacency-list form (out-edges per node; every node present)."""
        adjacency: Dict[int, List[int]] = {
            node: [] for node in range(self.config.n_nodes)
        }
        for source, target in self.edges():
            adjacency[source].append(target)
        return adjacency


class GoogleWebGraph(GraphGenerator):
    """Scaled stand-in for the Google web graph seed.

    The real seed has ~875 K nodes with mean out-degree ~5.8; ``scale``
    shrinks the node count while preserving degree statistics.
    """

    SEED_NODES = 875_713
    SEED_EDGES = 5_105_039

    def __init__(self, scale: float = 0.01, seed: int = 11):
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        n_nodes = max(64, int(self.SEED_NODES * scale))
        mean_degree = self.SEED_EDGES / self.SEED_NODES
        super().__init__(
            GraphConfig(
                n_nodes=n_nodes,
                mean_out_degree=mean_degree,
                directed=True,
                attachment_bias=0.85,
            ),
            seed=seed,
        )


class FacebookSocialGraph(GraphGenerator):
    """Scaled stand-in for the Facebook social-network seed.

    The real seed has 4,039 nodes and 88,234 undirected edges (mean
    degree ~43.7) with strong community structure; a higher attachment
    bias yields the corresponding heavy clustering of popular nodes.
    """

    SEED_NODES = 4_039
    SEED_EDGES = 88_234

    def __init__(self, scale: float = 1.0, seed: int = 13):
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        n_nodes = max(64, int(self.SEED_NODES * scale))
        mean_degree = self.SEED_EDGES / self.SEED_NODES
        super().__init__(
            GraphConfig(
                n_nodes=n_nodes,
                mean_out_degree=mean_degree,
                directed=False,
                attachment_bias=0.9,
            ),
            seed=seed,
        )

    def feature_vectors(self, dimensions: int = 8) -> np.ndarray:
        """Per-node feature vectors for the K-means workload.

        The paper's S-Kmeans clusters Facebook records (94-byte rows);
        features here derive from graph-structural statistics plus noise,
        giving K-means real cluster structure to find.
        """
        adjacency = self.adjacency()
        n = self.config.n_nodes
        degrees = np.array([len(adjacency[i]) for i in range(n)], dtype=float)
        rng = np.random.default_rng(self.config.n_nodes)
        # Nodes in the same degree regime form genuine clusters.
        base = np.log1p(degrees)[:, None]
        features = base + rng.normal(0.0, 0.4, size=(n, dimensions))
        return features
