"""Relational table generation (the BDGS Table Generator).

Models the e-commerce transaction tables (Table 1, dataset 5: an ORDER
table of 4 columns and an ITEM table of 6 columns) and the ProfSearch
resumé table (dataset 6), which drive the relational-operator and HBase
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np


@dataclass(frozen=True)
class Row:
    """A generic keyed record: the K-V text rows the paper describes."""

    key: int
    fields: tuple

    def size_bytes(self) -> int:
        """Approximate serialised size of the row."""
        return 8 + sum(
            len(f) if isinstance(f, str) else 8 for f in self.fields
        )


class TableGenerator:
    """Base class: deterministic rows keyed 0..n-1."""

    def __init__(self, seed: int = 17):
        self._rng = np.random.default_rng(seed)

    def rows(self, n: int) -> Iterator[Row]:
        raise NotImplementedError


class EcommerceTransactions(TableGenerator):
    """The two e-commerce tables.

    ORDER table (4 columns): order_id, buyer_id, create_date, total.
    ITEM table (6 columns): item_id, order_id, goods_id, goods_number,
    goods_price, goods_amount.  The seed has 38,658 orders and 242,735
    items (~6.3 items per order); record text is ~52 bytes as in Table 2.
    """

    SEED_ORDERS = 38_658
    SEED_ITEMS = 242_735

    def __init__(self, seed: int = 17):
        super().__init__(seed)

    def orders(self, n: int) -> Iterator[Row]:
        """``n`` ORDER rows."""
        buyers = max(10, n // 8)
        buyer_ids = self._rng.integers(0, buyers, size=n)
        days = self._rng.integers(0, 365, size=n)
        totals = np.round(self._rng.gamma(2.0, 40.0, size=n), 2)
        for i in range(n):
            yield Row(
                key=i,
                fields=(
                    int(buyer_ids[i]),
                    f"2015-{1 + int(days[i]) // 31:02d}-{1 + int(days[i]) % 28:02d}",
                    float(totals[i]),
                ),
            )

    def items(self, n_orders: int) -> Iterator[Row]:
        """ITEM rows for ``n_orders`` orders (~6.3 items per order)."""
        item_id = 0
        per_order = self._rng.poisson(
            self.SEED_ITEMS / self.SEED_ORDERS, size=n_orders
        )
        for order_id in range(n_orders):
            for _ in range(max(1, int(per_order[order_id]))):
                goods_id = int(self._rng.integers(0, 10_000))
                number = int(self._rng.integers(1, 5))
                price = round(float(self._rng.gamma(2.0, 15.0)), 2)
                yield Row(
                    key=item_id,
                    fields=(order_id, goods_id, number, price, round(number * price, 2)),
                )
                item_id += 1

    def rows(self, n: int) -> Iterator[Row]:
        return self.orders(n)


class ProfSearchResumes(TableGenerator):
    """The ProfSearch personal-resumé table (278,956 resumés in the seed).

    Rows are ~1128-byte K-V records (Table 2, H-Read): name, institution,
    field, degree, publication count and a free-text summary blob sized
    to match the seed record length.
    """

    SEED_RESUMES = 278_956
    RECORD_BYTES = 1128

    FIELDS = ("systems", "architecture", "databases", "ml", "networks", "theory")
    DEGREES = ("bs", "ms", "phd")

    def rows(self, n: int) -> Iterator[Row]:
        fields = self._rng.integers(0, len(self.FIELDS), size=n)
        degrees = self._rng.integers(0, len(self.DEGREES), size=n)
        pubs = self._rng.poisson(8.0, size=n)
        for i in range(n):
            summary_len = self.RECORD_BYTES - 64
            summary = "x" * summary_len  # ballast to match record size
            yield Row(
                key=i,
                fields=(
                    f"person-{i}",
                    f"inst-{int(self._rng.integers(0, 500))}",
                    self.FIELDS[int(fields[i])],
                    self.DEGREES[int(degrees[i])],
                    int(pubs[i]),
                    summary,
                ),
            )


def rows_to_columns(rows: List[Row]) -> Dict[int, list]:
    """Pivot a row list into columns (used by the column-oriented
    Impala-model scans)."""
    if not rows:
        return {}
    n_fields = len(rows[0].fields)
    columns: Dict[int, list] = {i: [] for i in range(n_fields)}
    for row in rows:
        if len(row.fields) != n_fields:
            raise ValueError("ragged rows cannot be columnised")
        for i, value in enumerate(row.fields):
            columns[i].append(value)
    return columns
