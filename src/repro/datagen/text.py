"""Zipfian text generation (the BDGS Text Generator).

Natural-language corpora have Zipf-distributed word frequencies; the
BDGS text generator preserves exactly that property when scaling the
Wikipedia and Amazon Movie Review seeds.  We synthesise a vocabulary of
pronounceable word tokens and draw documents whose word frequencies
follow Zipf's law, which is what the text workloads (WordCount, Grep,
Sort, Naive Bayes) are sensitive to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

_SYLLABLES = (
    "ba be bi bo bu da de di do du ka ke ki ko ku la le li lo lu "
    "ma me mi mo mu na ne ni no nu ra re ri ro ru sa se si so su "
    "ta te ti to tu va ve vi vo vu za ze zi zo zu"
).split()


def _make_vocabulary(size: int, rng: np.random.Generator) -> List[str]:
    """Deterministic pronounceable vocabulary of ``size`` distinct words."""
    words = []
    seen = set()
    while len(words) < size:
        n_syllables = int(rng.integers(1, 5))
        word = "".join(rng.choice(_SYLLABLES) for _ in range(n_syllables))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


@dataclass(frozen=True)
class TextConfig:
    """Shape of a generated corpus."""

    vocabulary_size: int = 5000
    zipf_exponent: float = 1.1
    mean_words_per_doc: int = 120

    def __post_init__(self) -> None:
        if self.vocabulary_size < 1:
            raise ValueError("vocabulary_size must be >= 1")
        if self.zipf_exponent <= 1.0:
            raise ValueError("zipf_exponent must be > 1 for a proper Zipf law")
        if self.mean_words_per_doc < 1:
            raise ValueError("mean_words_per_doc must be >= 1")


class TextGenerator:
    """Generates documents with Zipf-distributed word frequencies."""

    def __init__(self, config: TextConfig = TextConfig(), seed: int = 42):
        self.config = config
        self._rng = np.random.default_rng(seed)
        self.vocabulary = _make_vocabulary(config.vocabulary_size, self._rng)
        ranks = np.arange(1, config.vocabulary_size + 1, dtype=float)
        weights = np.power(ranks, -config.zipf_exponent)
        self._probs = weights / weights.sum()

    def words(self, n: int) -> List[str]:
        """``n`` words drawn from the Zipf distribution."""
        if n < 0:
            raise ValueError("n must be non-negative")
        indices = self._rng.choice(
            self.config.vocabulary_size, size=n, p=self._probs
        )
        return [self.vocabulary[i] for i in indices]

    def document(self) -> str:
        """One document of roughly ``mean_words_per_doc`` words."""
        length = max(1, int(self._rng.poisson(self.config.mean_words_per_doc)))
        return " ".join(self.words(length))

    def documents(self, n: int) -> Iterator[str]:
        """Lazily generate ``n`` documents."""
        for _ in range(n):
            yield self.document()


class WikipediaCorpus(TextGenerator):
    """Scaled stand-in for the 4,300,000-article Wikipedia seed.

    The paper's Wikipedia-derived records are ~64 KB key-value text
    entries; documents here are longer than the Amazon reviews and use a
    larger vocabulary.
    """

    def __init__(self, seed: int = 42):
        super().__init__(
            TextConfig(vocabulary_size=8000, zipf_exponent=1.1, mean_words_per_doc=400),
            seed=seed,
        )


class AmazonReviews(TextGenerator):
    """Scaled stand-in for the 7,911,684-review Amazon Movie Reviews seed.

    Yields ``(review_text, score)`` pairs; scores follow the well-known
    J-shaped online-review distribution, which is what Naive Bayes
    classification exercises.
    """

    SCORE_PROBS = (0.07, 0.05, 0.08, 0.20, 0.60)  # 1..5 stars

    def __init__(self, seed: int = 43):
        super().__init__(
            TextConfig(vocabulary_size=4000, zipf_exponent=1.15, mean_words_per_doc=80),
            seed=seed,
        )

    def reviews(self, n: int) -> Iterator[tuple]:
        """Lazily generate ``n`` (text, score) review records."""
        scores = self._rng.choice(
            [1, 2, 3, 4, 5], size=n, p=self.SCORE_PROBS
        )
        for i in range(n):
            score = int(scores[i])
            # Make the text weakly predictive of the score so a real
            # classifier has signal to learn, as in the genuine data.
            text = self.document()
            sentiment = "wonderful great" if score >= 4 else "terrible poor"
            yield (f"{text} {sentiment}", score)
