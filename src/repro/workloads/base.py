"""Workload taxonomy: the classification dimensions of §3.2.

Workloads are described along three axes:

- **application category** (§3.2.3): data analysis, service, or
  interactive analysis;
- **data behaviour** (§3.2.2): how output and intermediate volumes
  compare to the input, bucketed by the paper's ratio rules;
- **system behaviour** (§3.2.1): CPU-intensive, I/O-intensive or hybrid,
  decided from measured CPU utilisation, I/O-wait and weighted disk I/O
  time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional


class ApplicationCategory(enum.Enum):
    """§3.2.3 application categories."""

    DATA_ANALYSIS = "data analysis"
    SERVICE = "service"
    INTERACTIVE_ANALYSIS = "interactive analysis"


class DataRatio(enum.Enum):
    """§3.2.2 volume-ratio buckets relative to the input."""

    MUCH_LESS = "<<"       # ratio < 0.01
    LESS = "<"             # 0.01 <= ratio < 0.9
    EQUAL = "="            # 0.9 <= ratio < 1.1
    GREATER = ">"          # ratio >= 1.1
    NONE = "none"          # no data of this kind

    @classmethod
    def from_ratio(cls, ratio: float) -> "DataRatio":
        """Bucket a volume ratio per the paper's thresholds."""
        if ratio < 0:
            raise ValueError("ratio must be non-negative")
        if ratio < 0.01:
            return cls.MUCH_LESS
        if ratio < 0.9:
            return cls.LESS
        if ratio < 1.1:
            return cls.EQUAL
        return cls.GREATER


@dataclass(frozen=True)
class DataBehavior:
    """Output-vs-input and intermediate-vs-input buckets."""

    output: DataRatio
    intermediate: DataRatio

    def describe(self) -> str:
        """Render like the paper's Table 2 column."""
        output = f"Output{self.output.value}Input"
        if self.intermediate is DataRatio.NONE:
            return f"{output} and no intermediate"
        return f"{output} and Intermediate{self.intermediate.value}Input"

    @classmethod
    def from_meter(cls, meter) -> "DataBehavior":
        """Derive the buckets from measured data-flow volumes."""
        if meter.bytes_in <= 0:
            raise ValueError("meter recorded no input bytes")
        output = DataRatio.from_ratio(meter.bytes_out / meter.bytes_in)
        if meter.bytes_shuffled == 0:
            intermediate = DataRatio.NONE
        else:
            intermediate = DataRatio.from_ratio(
                meter.bytes_shuffled / meter.bytes_in
            )
        return cls(output=output, intermediate=intermediate)


class SystemBehavior(enum.Enum):
    """§3.2.1 system-behaviour classes."""

    CPU_INTENSIVE = "CPU-Intensive"
    IO_INTENSIVE = "IO-Intensive"
    HYBRID = "Hybrid"


def classify_system_behavior(
    cpu_utilization: float,
    io_wait_ratio: float,
    weighted_io_time_ratio: float,
) -> SystemBehavior:
    """The paper's §3.2.1 rules, verbatim:

    1. CPU utilisation > 85% → CPU-intensive.
    2. Weighted disk I/O time ratio > 10, or I/O wait > 20% with CPU
       utilisation < 60% → I/O-intensive.
    3. Otherwise → hybrid.
    """
    if not 0.0 <= cpu_utilization <= 1.0:
        raise ValueError("cpu_utilization must be in [0, 1]")
    if cpu_utilization > 0.85:
        return SystemBehavior.CPU_INTENSIVE
    if weighted_io_time_ratio > 10 or (
        io_wait_ratio > 0.20 and cpu_utilization < 0.60
    ):
        return SystemBehavior.IO_INTENSIVE
    return SystemBehavior.HYBRID


@dataclass(frozen=True)
class WorkloadDefinition:
    """One catalog entry: identity, taxonomy, and a runner.

    Attributes:
        workload_id: The paper's abbreviation (e.g. ``"S-WordCount"``).
        description: What the workload computes.
        stack: Hosting software stack name.
        dataset: Catalog key of the input dataset (Table 1).
        category: §3.2.3 application category.
        expected_system_behavior: Table 2's system-behaviour column (the
            measured classification is validated against it in tests).
        runner: ``runner(scale, cluster=None, seed=0) -> WorkloadResult``.
        representative: Whether this is one of the 17 of Table 2.
        represents: Cluster size from Table 2 (how many of the 77 this
            workload stands for), when representative.
    """

    workload_id: str
    description: str
    stack: str
    dataset: str
    category: ApplicationCategory
    expected_system_behavior: SystemBehavior
    runner: Callable
    representative: bool = False
    represents: Optional[int] = None
