"""The TPC-DS decision-support workloads (Table 2 rows 4, 8, 12).

H-TPC-DS-query3 (Hive), S-TPC-DS-query10 and S-TPC-DS-query8 (Shark).
The queries follow the TPC-DS originals' shape on the web_sales star
schema: Q3 is a date/item join with grouped aggregation, Q10 filters
customers by demographics, Q8 aggregates sales by store/brand subsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.datagen.tpcds import TpcDsWebTables
from repro.stacks.base import KernelTraits, WorkloadResult
from repro.stacks.sql import HiveEngine, Query, SharkEngine

TPCDS_KERNEL = KernelTraits(
    code_kb=16.0,
    ilp=2.4,
    loop_fraction=0.36,
    pattern_fraction=0.10,
    data_dependent_fraction=0.54,
    taken_prob=0.05,
    loop_trip=18,
    state_zipf=0.85,
)


def tpcds_tables(scale: float = 1.0, seed: int = 0) -> Dict[str, List[dict]]:
    """The web-sales star schema at ``scale``."""
    generated = TpcDsWebTables(scale=scale, seed=23 + seed).generate()
    return {name: getattr(generated, name) for name in generated.table_names}


def hive_tpcds_q3(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-TPC-DS-query3: brand revenue by year for one manufacturer."""
    tables = tpcds_tables(scale, seed)
    query = (
        Query("web_sales")
        .join("date_dim", "ws_sold_date_sk", "d_date_sk")
        .join("item", "ws_item_sk", "i_item_sk")
        .filter(lambda row: row["i_manufact_id"] < 20 and row["d_moy"] == 11)
        .group_by(
            ("d_year", "i_brand_id"),
            {"sum_agg": ("sum", "ws_ext_sales_price")},
        )
        .order_by("sum_agg", descending=True)
        .limit(100)
    )
    return HiveEngine().execute(
        "H-TPC-DS-query3", query, tables, kernel=TPCDS_KERNEL,
        state_fraction=0.04, cluster=cluster,
    )


def shark_tpcds_q10(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-TPC-DS-query10: customer demographics of active buyers."""
    tables = tpcds_tables(scale, seed)
    query = (
        Query("web_sales")
        .join("customer", "ws_bill_customer_sk", "c_customer_sk")
        .join("customer_demographics", "c_current_cdemo_sk", "cd_demo_sk")
        .filter(lambda row: row["cd_education_status"] == "college")
        .group_by(
            ("cd_gender", "cd_purchase_estimate"),
            {"cnt": ("count", "ws_order_number")},
        )
        .order_by("cnt", descending=True)
    )
    return SharkEngine().execute(
        "S-TPC-DS-query10", query, tables, kernel=TPCDS_KERNEL,
        state_fraction=0.04, cluster=cluster,
    )


def shark_tpcds_q8(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-TPC-DS-query8: net paid by brand for recent high-value sales."""
    tables = tpcds_tables(scale, seed)
    query = (
        Query("web_sales")
        .filter(lambda row: row["ws_sales_price"] > 50.0)
        .join("item", "ws_item_sk", "i_item_sk")
        .join("date_dim", "ws_sold_date_sk", "d_date_sk")
        .filter(lambda row: row["d_year"] >= 2012)
        .group_by(("i_brand",), {"net": ("sum", "ws_net_paid")})
        .order_by("net", descending=True)
        .limit(50)
    )
    return SharkEngine().execute(
        "S-TPC-DS-query8", query, tables,
        kernel=KernelTraits(
            code_kb=16.0, ilp=3.0, loop_fraction=0.42,
            pattern_fraction=0.10, data_dependent_fraction=0.48,
            taken_prob=0.04, loop_trip=24, state_zipf=0.85,
        ),
        state_fraction=0.03, cluster=cluster,
    )
