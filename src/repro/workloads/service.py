"""The service workload: H-Read (Table 2 row 1).

Random gets against an HBase region loaded with the ProfSearch resumé
table.  Service request streams are stochastic, which is why this is
the paper's worst front-end workload (L1I MPKI 51, IPC 0.8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.datagen.table import ProfSearchResumes
from repro.stacks.base import WorkloadResult
from repro.stacks.hbase import HBase

#: Stored rows at scale 1 (the seed table has 278,956 resumés).
BASE_ROWS = 4000

#: Requests issued at scale 1.
BASE_REQUESTS = 3000


def hbase_read(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-Read: HBase random reads over ProfSearch resumés."""
    n_rows = max(500, int(BASE_ROWS * scale))
    n_requests = max(400, int(BASE_REQUESTS * scale))

    generator = ProfSearchResumes(seed=29 + seed)
    store = HBase()
    store.load([(row.key, row.fields) for row in generator.rows(n_rows)])

    # Zipf-ish request popularity: some resumés are much hotter than
    # others, but the tail keeps requests stochastic.
    rng = np.random.default_rng(97 + seed)
    ranks = np.arange(1, n_rows + 1, dtype=float)
    weights = np.power(ranks, -0.6)
    weights /= weights.sum()
    keys = rng.choice(n_rows, size=n_requests, p=weights)

    return store.run_read_workload("H-Read", keys.tolist(), cluster=cluster)
