"""Additional BigDataBench operations beyond the 17 representatives.

BigDataBench 3.0's 77 workloads cover basic operations (BFS, inverted
index, connected components, scans, writes) and query primitives beyond
those chosen as representatives.  These implementations populate the
full registry so the WCRT reduction (77 → 17) has the real population
to cluster.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.datagen.graph import FacebookSocialGraph
from repro.datagen.table import ProfSearchResumes
from repro.stacks.base import KernelTraits, Meter, WorkloadResult
from repro.stacks.hadoop import Hadoop, MapReduceJob
from repro.stacks.hbase import HBase
from repro.stacks.mpi import MpiRuntime
from repro.stacks.spark import Spark
from repro.stacks.sql import HiveEngine, ImpalaEngine, Query, SharkEngine
from repro.workloads.kernels import wiki_documents
from repro.workloads.ml import PAGERANK_KERNEL, _pagerank_graph, _pagerank_iteration
from repro.workloads.relational import SQL_KERNEL, ecommerce_tables

BFS_KERNEL = KernelTraits(
    code_kb=10.0,
    ilp=1.8,
    loop_fraction=0.40,
    pattern_fraction=0.08,
    data_dependent_fraction=0.52,
    taken_prob=0.10,
    loop_trip=8,
    state_zipf=0.25,
)

INDEX_KERNEL = KernelTraits(
    code_kb=14.0,
    ilp=2.2,
    loop_fraction=0.35,
    pattern_fraction=0.10,
    data_dependent_fraction=0.55,
    taken_prob=0.05,
    loop_trip=40,
    state_zipf=0.85,
)


def _bfs(adjacency: Dict[int, List[int]], source: int, meter: Meter) -> Dict[int, int]:
    """Breadth-first distances with per-edge metering."""
    distances = {source: 0}
    frontier = deque([source])
    edges = 0
    while frontier:
        node = frontier.popleft()
        for neighbor in adjacency.get(node, ()):
            edges += 1
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                frontier.append(neighbor)
    meter.ops(
        hash=float(2 * edges),
        compare=float(edges),
        array_access=float(edges),
        int_op=float(len(distances)),
    )
    return distances


def _graph_state_bytes(adjacency: Dict[int, List[int]]) -> int:
    edges = sum(len(v) for v in adjacency.values())
    return max(1024 * 1024, 16 * len(adjacency) + 12 * edges)


def _bfs_source(adjacency: Dict[int, List[int]]) -> int:
    """A well-connected source: preferential-attachment node 0 only has
    in-edges, so BFS roots at the highest-out-degree node instead."""
    return max(adjacency, key=lambda node: len(adjacency[node]))


def spark_bfs(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-BFS over the Google web graph."""
    adjacency = _pagerank_graph(scale, seed)
    spark = Spark()
    rdd = spark.parallelize(sorted(adjacency.items()))
    rdd.count()
    distances = _bfs(adjacency, _bfs_source(adjacency), spark._meter)
    return spark.finish(
        name="S-BFS",
        output={"reached": len(distances)},
        kernel=BFS_KERNEL,
        state_bytes=_graph_state_bytes(adjacency),
        state_fraction=0.09,
        stream_fraction=0.004,
        output_bytes=8 * len(distances),
        cluster=cluster,
    )


def hadoop_bfs(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-BFS: level-synchronous BFS as iterative MapReduce."""
    adjacency = _pagerank_graph(scale, seed)

    def mapper(record, emit, meter):
        node, targets = record
        meter.ops(array_access=len(targets) + 1, hash=len(targets))
        for target in targets:
            emit(target, node)

    def reducer(key, values, emit, meter):
        meter.ops(compare=len(values), int_op=len(values))
        emit(key, min(values))

    job = MapReduceJob(
        name="H-BFS",
        mapper=mapper,
        reducer=reducer,
        kernel=BFS_KERNEL,
        state_bytes=_graph_state_bytes(adjacency),
        state_fraction=0.08,
        stream_fraction=0.006,
    )
    hadoop = Hadoop()
    result = hadoop.run(job, sorted(adjacency.items()), cluster=cluster)
    probe = Meter()
    distances = _bfs(adjacency, _bfs_source(adjacency), probe)
    result.meter.merge(probe)
    result.output = {"reached": len(distances)}
    return result


def mpi_bfs(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """M-BFS: frontier exchange per superstep."""
    adjacency = _pagerank_graph(scale, seed)
    nodes = sorted(adjacency)
    n_ranks = 6
    shards = [set(nodes[r::n_ranks]) for r in range(n_ranks)]

    source = _bfs_source(adjacency)

    def program(rank, comm, data, meter):
        my_nodes = shards[rank]
        visited = {source} if source in my_nodes else set()
        frontier = set(visited)
        for _level in range(12):
            next_frontier = set()
            edges = 0
            for node in sorted(frontier):
                for neighbor in adjacency.get(node, ()):
                    edges += 1
                    next_frontier.add(neighbor)
            meter.ops(hash=float(2 * edges + len(next_frontier)), compare=float(edges))
            merged = yield comm.allreduce(
                sorted(next_frontier), lambda a, b: sorted(set(a) | set(b))
            )
            frontier = {
                node
                for node in merged
                if node in my_nodes and node not in visited
            }
            visited |= frontier
            if not any(merged):
                break
        return len(visited)

    runtime = MpiRuntime(n_ranks=n_ranks)
    partitions = [[(n, adjacency[n]) for n in sorted(shard)] for shard in shards]
    return runtime.run(
        name="M-BFS",
        program=program,
        partitions=partitions,
        kernel=BFS_KERNEL,
        state_bytes=_graph_state_bytes(adjacency),
        state_fraction=0.08,
        stream_fraction=0.004,
        cluster=cluster,
    )


def spark_connected_components(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-CC: label propagation over the Facebook graph."""
    graph = FacebookSocialGraph(scale=min(1.0, 0.4 * scale + 0.05), seed=13 + seed)
    adjacency = graph.adjacency()
    spark = Spark()
    rdd = spark.parallelize(sorted(adjacency.items()))
    rdd.count()
    labels = {node: node for node in adjacency}
    meter = spark._meter
    for _ in range(8):
        changed = 0
        edges = 0
        for node, targets in adjacency.items():
            for target in targets:
                edges += 1
                if labels[target] < labels[node]:
                    labels[node] = labels[target]
                    changed += 1
        meter.ops(
            hash=float(2 * edges), compare=float(edges), int_op=float(changed)
        )
        if changed == 0:
            break
    components = len(set(labels.values()))
    return spark.finish(
        name="S-CC",
        output={"components": components},
        kernel=BFS_KERNEL,
        state_bytes=_graph_state_bytes(adjacency),
        state_fraction=0.09,
        stream_fraction=0.004,
        output_bytes=8 * len(labels),
        cluster=cluster,
    )


def hadoop_pagerank(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-PageRank: one power iteration per MapReduce job."""
    adjacency = _pagerank_graph(scale, seed)
    n = len(adjacency)
    ranks = {node: 1.0 / n for node in adjacency}

    def mapper(record, emit, meter):
        node, targets = record
        if targets:
            share = ranks[node] / len(targets)
            meter.ops(fp_op=len(targets), array_access=len(targets))
            for target in targets:
                emit(target, share)
        emit(node, 0.0)

    def reducer(key, values, emit, meter):
        meter.ops(fp_op=len(values) + 1)
        emit(key, 0.15 / n + 0.85 * sum(values))

    job = MapReduceJob(
        name="H-PageRank",
        mapper=mapper,
        reducer=reducer,
        kernel=PAGERANK_KERNEL,
        state_bytes=_graph_state_bytes(adjacency),
        state_fraction=0.07,
        stream_fraction=0.006,
    )
    hadoop = Hadoop()
    result = hadoop.run(job, sorted(adjacency.items()), cluster=cluster)
    # Refine functionally to convergence for the output.
    probe = Meter()
    for _ in range(4):
        ranks = _pagerank_iteration(adjacency, ranks, probe)
    result.meter.merge(probe)
    result.output = sorted(ranks.items(), key=lambda kv: -kv[1])[:20]
    return result


def hadoop_index(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-Index: inverted index over Wikipedia documents."""

    def mapper(record, emit, meter):
        doc_id, text = record
        words = text.split()
        meter.ops(
            str_byte=len(text), hash=len(words), array_access=len(words),
            compare=len(words),
        )
        for position, word in enumerate(words):
            if position % 8 == 0:  # sampled postings
                emit(word, (doc_id, position))

    def reducer(key, values, emit, meter):
        meter.ops(array_access=len(values), compare=len(values))
        emit(key, sorted(values))

    docs = list(enumerate(wiki_documents(scale, seed)))
    job = MapReduceJob(
        name="H-Index",
        mapper=mapper,
        reducer=reducer,
        kernel=INDEX_KERNEL,
        state_bytes=lambda meter: int(140 * max(512, meter.records_shuffled)),
        state_fraction=0.035,
        stream_fraction=0.010,
    )
    return Hadoop().run(job, docs, cluster=cluster)


def spark_index(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-Index: the Spark inverted index."""
    spark = Spark()
    docs = list(enumerate(wiki_documents(scale, seed)))
    rdd = spark.parallelize(docs)

    def to_postings(record):
        doc_id, text = record
        return [
            (word, (doc_id, position))
            for position, word in enumerate(text.split())
            if position % 8 == 0
        ]

    def meter_doc(record, meter):
        _doc_id, text = record
        words = text.count(" ") + 1
        meter.ops(str_byte=len(text), hash=words, array_access=words)

    postings = rdd.flat_map(to_postings, meter_doc).group_by_key()
    output = postings.collect()
    return spark.finish(
        name="S-Index",
        output=output,
        kernel=INDEX_KERNEL,
        state_bytes=int(140 * max(512, spark._meter.records_shuffled)),
        state_fraction=0.04,
        cluster=cluster,
    )


# --------------------------------------------------------------------------
# Cloud OLTP: HBase write and scan (the paper's Cloud OLTP category)
# --------------------------------------------------------------------------

def hbase_write(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-Write: random puts into an HBase region."""
    n_rows = max(500, int(3000 * scale))
    generator = ProfSearchResumes(seed=31 + seed)
    store = HBase()
    meter = Meter()
    for row in generator.rows(n_rows):
        meter.record_in(row.size_bytes())
        store.put(row.key, row.fields, meter)
        meter.record_out(row.size_bytes())
    store.flush()
    from repro.stacks.base import build_profile

    kernel = KernelTraits(
        code_kb=14.0, ilp=1.7, loop_fraction=0.25,
        pattern_fraction=0.10, data_dependent_fraction=0.65,
        taken_prob=0.07, loop_trip=12, state_zipf=0.4,
    )
    data = store.data_footprint(
        meter, kernel,
        state_bytes=max(16 * 1024 * 1024, n_rows * 1128),
        state_fraction=0.08, stream_fraction=0.01,
    )
    profile = build_profile(
        name="H-Write", meter=meter, stack=store.traits,
        kernel=kernel, data=data, threads=6, offcore_write_share=0.6,
    )
    return WorkloadResult(
        name="H-Write", output=store.n_sstables, profile=profile, meter=meter,
    )


def hbase_scan(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-Scan: sequential range scans over an HBase region."""
    n_rows = max(500, int(3000 * scale))
    generator = ProfSearchResumes(seed=33 + seed)
    store = HBase()
    store.load([(row.key, row.fields) for row in generator.rows(n_rows)])
    meter = Meter()
    scanned = 0
    rng = np.random.default_rng(59 + seed)
    for _ in range(max(20, int(60 * scale))):
        start = int(rng.integers(0, max(1, n_rows - 100)))
        meter.record_in(64)
        for key in range(start, min(n_rows, start + 100)):
            value = store.get(key, meter)
            if value is not None:
                scanned += 1
                meter.record_out(1128)
    from repro.stacks.base import build_profile

    kernel = KernelTraits(
        code_kb=12.0, ilp=2.1, loop_fraction=0.45,
        pattern_fraction=0.10, data_dependent_fraction=0.45,
        taken_prob=0.05, loop_trip=100, state_zipf=0.3,
    )
    data = store.data_footprint(
        meter, kernel,
        state_bytes=max(16 * 1024 * 1024, n_rows * 1128),
        state_fraction=0.05, stream_fraction=0.02,
    )
    profile = build_profile(
        name="H-Scan", meter=meter, stack=store.traits,
        kernel=kernel, data=data, threads=6,
    )
    return WorkloadResult(
        name="H-Scan", output=scanned, profile=profile, meter=meter,
    )


# --------------------------------------------------------------------------
# Additional query primitives (aggregation, join) per SQL engine
# --------------------------------------------------------------------------

def _aggregation_query() -> Query:
    return Query("items").group_by(
        ("goods_id",), {"revenue": ("sum", "goods_amount"), "n": ("count", "item_id")}
    )


def _join_query() -> Query:
    return (
        Query("items")
        .join("orders", "order_id", "order_id")
        .filter(lambda row: row["total"] > 50.0)
        .project(("order_id", "buyer_id", "goods_amount"))
    )


def _run_sql(engine_cls, name, query, scale, cluster, seed, **kwargs):
    tables = ecommerce_tables(scale, seed)
    return engine_cls().execute(
        name, query, tables, kernel=SQL_KERNEL, cluster=cluster, **kwargs
    )


def hive_aggregation(scale=1.0, cluster=None, seed=0):
    """Hive GROUP BY aggregation over the e-commerce items."""
    return _run_sql(HiveEngine, "H-Aggregation", _aggregation_query(), scale, cluster, seed)


def shark_aggregation(scale=1.0, cluster=None, seed=0):
    """Shark GROUP BY aggregation."""
    return _run_sql(SharkEngine, "S-Aggregation", _aggregation_query(), scale, cluster, seed)


def impala_aggregation(scale=1.0, cluster=None, seed=0):
    """Impala GROUP BY aggregation."""
    return _run_sql(ImpalaEngine, "I-Aggregation", _aggregation_query(), scale, cluster, seed)


def hive_join(scale=1.0, cluster=None, seed=0):
    """Hive equi-join of orders and items."""
    return _run_sql(HiveEngine, "H-JoinQuery", _join_query(), scale, cluster, seed)


def shark_join(scale=1.0, cluster=None, seed=0):
    """Shark equi-join."""
    return _run_sql(SharkEngine, "S-JoinQuery", _join_query(), scale, cluster, seed)


def impala_join(scale=1.0, cluster=None, seed=0):
    """Impala equi-join."""
    return _run_sql(ImpalaEngine, "I-JoinQuery", _join_query(), scale, cluster, seed)
