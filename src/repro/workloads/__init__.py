"""The BigDataBench workload implementations.

Genuinely-executing versions of the paper's representative workloads
(Table 2) on every software stack they appear with, plus the six MPI
re-implementations of §4.1 and the full 77-workload registry used for
the WCRT reduction.
"""

from repro.workloads.base import (
    ApplicationCategory,
    DataBehavior,
    SystemBehavior,
    WorkloadDefinition,
)
from repro.workloads.registry import (
    ALL_WORKLOADS,
    MPI_WORKLOADS,
    REPRESENTATIVE_WORKLOADS,
    workload,
)

__all__ = [
    "ApplicationCategory",
    "DataBehavior",
    "SystemBehavior",
    "WorkloadDefinition",
    "ALL_WORKLOADS",
    "MPI_WORKLOADS",
    "REPRESENTATIVE_WORKLOADS",
    "workload",
]
