"""The machine-learning / graph workloads: K-means, PageRank, Naive Bayes.

These are the floating-point-leaning big data workloads of §5.1 ("the
floating-point dominated workloads such as Bayes, Kmeans and PageRank
need to process massive amount of operations before they perform the
floating-point operations") — their profiles still end up integer- and
data-movement-dominated, which is the paper's point.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.datagen.graph import FacebookSocialGraph, GoogleWebGraph
from repro.datagen.text import AmazonReviews
from repro.stacks.base import KernelTraits, Meter, WorkloadResult
from repro.stacks.hadoop import Hadoop, MapReduceJob
from repro.stacks.mpi import MpiRuntime
from repro.stacks.spark import Spark

KMEANS_KERNEL = KernelTraits(
    code_kb=14.0,
    ilp=2.8,
    loop_fraction=0.55,
    pattern_fraction=0.10,
    data_dependent_fraction=0.35,
    taken_prob=0.06,  # "dis < minDis" is rarely true (Algorithm 1)
    loop_trip=16,
    state_zipf=0.4,
)

PAGERANK_KERNEL = KernelTraits(
    code_kb=12.0,
    ilp=2.0,
    loop_fraction=0.45,
    pattern_fraction=0.08,
    data_dependent_fraction=0.47,
    taken_prob=0.06,
    loop_trip=8,  # mean out-degree of the web graph
    state_zipf=0.55,  # rank vector accesses are weakly skewed by degree
)

BAYES_KERNEL = KernelTraits(
    code_kb=14.0,
    ilp=2.4,
    loop_fraction=0.40,
    pattern_fraction=0.10,
    data_dependent_fraction=0.50,
    taken_prob=0.05,
    loop_trip=32,
    state_zipf=0.85,  # Zipfian word-count table
)


# --------------------------------------------------------------------------
# K-means (Facebook social-network features, Table 2 row 11)
# --------------------------------------------------------------------------

def _kmeans_data(scale: float, seed: int) -> np.ndarray:
    graph = FacebookSocialGraph(scale=min(1.0, 0.5 * scale + 0.05), seed=13 + seed)
    return graph.feature_vectors(dimensions=8)

def _assign_points(
    points: np.ndarray, centers: np.ndarray, meter: Meter
) -> np.ndarray:
    """One assignment pass (Algorithm 1 of the paper), vectorised but
    metered at per-point, per-center granularity."""
    n, dims = points.shape
    k = centers.shape[0]
    # Per point: k distance computations of `dims` FP ops, k compares.
    meter.ops(
        fp_op=float(n * k * dims * 2),
        compare=float(n * k),
        array_access=float(n * k * dims),
        int_op=float(n * k),
    )
    distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    return distances.argmin(axis=1)


def _update_centers(
    points: np.ndarray, assignment: np.ndarray, k: int, meter: Meter
) -> np.ndarray:
    dims = points.shape[1]
    meter.ops(fp_op=float(points.shape[0] * dims), array_access=float(points.shape[0]))
    centers = np.zeros((k, dims))
    for cluster_id in range(k):
        members = points[assignment == cluster_id]
        if len(members):
            centers[cluster_id] = members.mean(axis=0)
    return centers


def spark_kmeans(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    k: int = 8,
    iterations: int = 8,
) -> WorkloadResult:
    """S-Kmeans: Table 2 row 11 (CPU-intensive data analysis)."""
    points = _kmeans_data(scale, seed)
    spark = Spark()
    rows = [tuple(row) for row in points.tolist()]
    rdd = spark.parallelize(rows).cache()
    rng = np.random.default_rng(seed + 5)
    centers = points[rng.choice(len(points), size=k, replace=False)]
    assignment = None
    for _ in range(iterations):
        assignment = _assign_points(points, centers, spark._meter)
        centers = _update_centers(points, assignment, k, spark._meter)
    # One cached-RDD pass accounts the per-element framework costs; the
    # iterations themselves work on the in-memory partitions.
    rdd.map(lambda p: p).count()
    output = [int(a) for a in assignment]
    return spark.finish(
        name="S-Kmeans",
        output=output,
        kernel=KMEANS_KERNEL,
        state_bytes=max(1024 * 1024, points.nbytes),
        state_fraction=0.04,
        stream_fraction=0.003,  # points cached in memory after pass 1
        output_bytes=points.nbytes,
        cluster=cluster,
    )


def mpi_kmeans(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    k: int = 8,
    iterations: int = 5,
) -> WorkloadResult:
    """M-Kmeans: the MPI version (§4.1)."""
    points = _kmeans_data(scale, seed)
    n_ranks = 6
    shards = np.array_split(points, n_ranks)

    def program(rank, comm, data, meter):
        local = shards[rank]
        rng = np.random.default_rng(seed + 5)
        centers = points[rng.choice(len(points), size=k, replace=False)]
        assignment = np.zeros(len(local), dtype=int)
        for _ in range(iterations):
            assignment = _assign_points(local, centers, meter)
            sums = np.zeros((k, local.shape[1]))
            counts = np.zeros(k)
            for cluster_id in range(k):
                members = local[assignment == cluster_id]
                counts[cluster_id] = len(members)
                if len(members):
                    sums[cluster_id] = members.sum(axis=0)
            meter.ops(fp_op=float(local.size))
            combined = yield comm.allreduce(
                (sums.tolist(), counts.tolist()),
                lambda a, b: (
                    (np.array(a[0]) + np.array(b[0])).tolist(),
                    (np.array(a[1]) + np.array(b[1])).tolist(),
                ),
            )
            total_sums = np.array(combined[0])
            total_counts = np.maximum(1, np.array(combined[1]))
            centers = total_sums / total_counts[:, None]
        return [int(a) for a in assignment]

    runtime = MpiRuntime(n_ranks=n_ranks)
    partitions = [[tuple(p) for p in shard.tolist()] for shard in shards]
    return runtime.run(
        name="M-Kmeans",
        program=program,
        partitions=partitions,
        kernel=KMEANS_KERNEL,
        state_bytes=max(512 * 1024, points.nbytes),
        state_fraction=0.05,
        stream_fraction=0.002,
        cluster=cluster,
    )


def hadoop_kmeans(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    k: int = 8,
) -> WorkloadResult:
    """Hadoop K-means (one iteration per job, as Mahout does)."""
    points = _kmeans_data(scale, seed)
    rng = np.random.default_rng(seed + 5)
    centers = points[rng.choice(len(points), size=k, replace=False)]

    def mapper(record, emit, meter):
        point = np.array(record)
        dims = point.shape[0]
        meter.ops(
            fp_op=float(k * dims * 2),
            compare=float(k),
            array_access=float(k * dims),
            int_op=float(k),
        )
        distances = ((centers - point) ** 2).sum(axis=1)
        emit(int(distances.argmin()), record)

    def reducer(key, values, emit, meter):
        arr = np.array(values)
        meter.ops(fp_op=float(arr.size), array_access=float(len(values)))
        emit(key, tuple(arr.mean(axis=0).tolist()))

    job = MapReduceJob(
        name="H-Kmeans",
        mapper=mapper,
        reducer=reducer,
        kernel=KMEANS_KERNEL,
        state_bytes=max(1024 * 1024, points.nbytes),
        state_fraction=0.05,
        stream_fraction=0.006,
        n_maps=10,
        n_reduces=4,
    )
    rows = [tuple(row) for row in points.tolist()]
    return Hadoop().run(job, rows, cluster=cluster)


# --------------------------------------------------------------------------
# PageRank (Google web graph, Table 2 row 13)
# --------------------------------------------------------------------------

def _pagerank_graph(scale: float, seed: int) -> Dict[int, List[int]]:
    graph = GoogleWebGraph(scale=0.004 * scale, seed=11 + seed)
    return graph.adjacency()


def _pagerank_iteration(
    adjacency: Dict[int, List[int]],
    ranks: Dict[int, float],
    meter: Meter,
    damping: float = 0.85,
) -> Dict[int, float]:
    """One power-method step with per-edge metering."""
    n = len(adjacency)
    contributions: Dict[int, float] = defaultdict(float)
    edge_count = 0
    for node, targets in adjacency.items():
        if not targets:
            continue
        share = ranks[node] / len(targets)
        edge_count += len(targets)
        for target in targets:
            contributions[target] += share
    meter.ops(
        fp_op=float(edge_count + n),
        array_access=float(2 * edge_count),
        hash=float(edge_count),
        compare=float(n),
    )
    base = (1.0 - damping) / n
    return {
        node: base + damping * contributions.get(node, 0.0)
        for node in adjacency
    }


def spark_pagerank(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    iterations: int = 5,
) -> WorkloadResult:
    """S-PageRank: Table 2 row 13 (Output>Input, CPU-intensive)."""
    adjacency = _pagerank_graph(scale, seed)
    spark = Spark()
    edges = [(u, vs) for u, vs in adjacency.items()]
    rdd = spark.parallelize(edges).cache()
    n = len(adjacency)
    ranks = {node: 1.0 / n for node in adjacency}
    for _ in range(iterations):
        ranks = _pagerank_iteration(adjacency, ranks, spark._meter)
    # The links RDD is cached and hash-partitioned once; only the small
    # rank vector moves between iterations.
    spark._meter.record_shuffle(8 * n, records=n)
    output = sorted(ranks.items(), key=lambda kv: -kv[1])[:20]
    state_bytes = 16 * n + 12 * sum(len(v) for v in adjacency.values())
    return spark.finish(
        name="S-PageRank",
        output=output,
        kernel=PAGERANK_KERNEL,
        state_bytes=max(1024 * 1024, state_bytes),
        state_fraction=0.045,  # rank-vector random access dominates
        stream_fraction=0.004,
        # Output > Input (Table 2): every iteration materialises a
        # fresh rank vector with node metadata.
        output_bytes=20 * n * iterations,
        cluster=cluster,
    )


def mpi_pagerank(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    iterations: int = 5,
) -> WorkloadResult:
    """M-PageRank."""
    adjacency = _pagerank_graph(scale, seed)
    nodes = sorted(adjacency)
    n_ranks = 6
    shards = [nodes[r::n_ranks] for r in range(n_ranks)]
    n = len(nodes)

    def program(rank, comm, data, meter):
        my_nodes = shards[rank]
        ranks_vec = {node: 1.0 / n for node in nodes}
        for _ in range(iterations):
            local_contrib: Dict[int, float] = defaultdict(float)
            edge_count = 0
            for node in my_nodes:
                targets = adjacency[node]
                if not targets:
                    continue
                share = ranks_vec[node] / len(targets)
                edge_count += len(targets)
                for target in targets:
                    local_contrib[target] += share
            meter.ops(
                fp_op=float(edge_count),
                array_access=float(2 * edge_count),
                hash=float(edge_count),
            )
            merged = yield comm.allreduce(
                dict(local_contrib),
                lambda a, b: {
                    key: a.get(key, 0.0) + b.get(key, 0.0)
                    for key in sorted(set(a) | set(b))
                },
            )
            meter.ops(fp_op=float(n))
            ranks_vec = {
                node: (1.0 - 0.85) / n + 0.85 * merged.get(node, 0.0)
                for node in nodes
            }
        return sorted(ranks_vec.items(), key=lambda kv: -kv[1])[:5]

    runtime = MpiRuntime(n_ranks=n_ranks)
    partitions = [[(node, adjacency[node]) for node in shard] for shard in shards]
    state_bytes = 16 * n + 12 * sum(len(v) for v in adjacency.values())
    return runtime.run(
        name="M-PageRank",
        program=program,
        partitions=partitions,
        kernel=PAGERANK_KERNEL,
        state_bytes=max(1024 * 1024, state_bytes),
        state_fraction=0.05,
        stream_fraction=0.003,
        cluster=cluster,
    )


# --------------------------------------------------------------------------
# Naive Bayes (Amazon movie reviews, Table 2 row 16)
# --------------------------------------------------------------------------

def _bayes_data(scale: float, seed: int) -> List[Tuple[str, int]]:
    reviews = AmazonReviews(seed=43 + seed)
    n = max(60, int(200 * scale))
    return list(reviews.reviews(n))


def _bayes_train(
    records: List[Tuple[str, int]], meter: Meter
) -> Tuple[Dict[int, Counter], Counter]:
    """Count word occurrences per class (the training pass)."""
    word_counts: Dict[int, Counter] = defaultdict(Counter)
    class_counts: Counter = Counter()
    for text, label in records:
        words = text.split()
        meter.ops(
            str_byte=len(text),
            hash=len(words),
            int_op=len(words),
            array_access=len(words),
        )
        class_counts[label] += 1
        word_counts[label].update(words)
    return word_counts, class_counts


def _bayes_classify(
    text: str,
    word_counts: Dict[int, Counter],
    class_counts: Counter,
    meter: Meter,
) -> int:
    words = text.split()
    total = sum(class_counts.values())
    best_label, best_score = None, -math.inf
    vocabulary = max(1, sum(len(c) for c in word_counts.values()))
    for label, prior in class_counts.items():
        score = math.log(prior / total)
        denominator = sum(word_counts[label].values()) + vocabulary
        for word in words:
            count = word_counts[label].get(word, 0)
            score += math.log((count + 1) / denominator)
        meter.ops(fp_op=float(len(words) * 2), hash=float(len(words)), compare=1)
        if score > best_score:
            best_label, best_score = label, score
    return best_label


def hadoop_bayes(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-NaiveBayes: Table 2 row 16."""
    records = _bayes_data(scale, seed)
    split = int(0.8 * len(records))
    train, test = records[:split], records[split:]

    def mapper(record, emit, meter):
        text, label = record
        words = text.split()
        meter.ops(
            str_byte=len(text), hash=len(words), int_op=len(words),
            array_access=len(words),
        )
        for word in words:
            emit((label, word), 1)

    def reducer(key, values, emit, meter):
        meter.ops(int_op=len(values))
        emit(key, sum(values))

    job = MapReduceJob(
        name="H-NaiveBayes",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer,
        kernel=BAYES_KERNEL,
        state_bytes=lambda meter: int(
            120 * max(512, meter.records_shuffled / 3)
        ),
        state_fraction=0.035,
        stream_fraction=0.008,
    )
    hadoop = Hadoop()
    result = hadoop.run(job, train, cluster=cluster)

    # Score the held-out set with the learned model (kept functional so
    # tests can assert real accuracy).
    model_counts: Dict[int, Counter] = defaultdict(Counter)
    class_counts: Counter = Counter()
    for (label, word), count in result.output:
        model_counts[label][word] += count
    for _text, label in train:
        class_counts[label] += 1
    correct = 0
    probe = Meter()
    for text, label in test:
        if _bayes_classify(text, model_counts, class_counts, probe) == label:
            correct += 1
    accuracy = correct / max(1, len(test))
    result.output = {"model_size": len(result.output), "accuracy": accuracy}
    return result


def mpi_bayes(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """M-Bayes (§4.1)."""
    records = _bayes_data(scale, seed)
    n_ranks = 6

    def program(rank, comm, data, meter):
        word_counts, class_counts = _bayes_train(data, meter)
        merged = yield comm.allreduce(
            ({k: dict(v) for k, v in word_counts.items()}, dict(class_counts)),
            lambda a, b: (
                {
                    label: {
                        word: a[0].get(label, {}).get(word, 0)
                        + b[0].get(label, {}).get(word, 0)
                        for word in sorted(
                            set(a[0].get(label, {}))
                            | set(b[0].get(label, {}))
                        )
                    }
                    for label in sorted(set(a[0]) | set(b[0]))
                },
                {
                    label: a[1].get(label, 0) + b[1].get(label, 0)
                    for label in sorted(set(a[1]) | set(b[1]))
                },
            ),
        )
        model = {label: Counter(words) for label, words in merged[0].items()}
        classes = Counter(merged[1])
        hits = 0
        for text, label in data[: max(1, len(data) // 5)]:
            if _bayes_classify(text, model, classes, meter) == label:
                hits += 1
        return hits

    runtime = MpiRuntime(n_ranks=n_ranks)
    per_rank = math.ceil(len(records) / n_ranks)
    partitions = [
        records[r * per_rank:(r + 1) * per_rank] for r in range(n_ranks)
    ]
    return runtime.run(
        name="M-Bayes",
        program=program,
        partitions=partitions,
        kernel=BAYES_KERNEL,
        state_bytes=4 * 1024 * 1024,
        state_fraction=0.03,
        stream_fraction=0.004,
        cluster=cluster,
    )
