"""The basic-operation workloads: WordCount, Grep, Sort.

Each algorithm has Hadoop, Spark and MPI implementations (the latter
are the §4.1/§5.5 software-stack study versions).  All versions compute
the same functional result over the same generated data; only the stack
differs.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.faults import FaultPlan
from repro.datagen.text import WikipediaCorpus
from repro.stacks.base import KernelTraits, Meter, WorkloadResult
from repro.stacks.hadoop import Hadoop, MapReduceJob
from repro.stacks.mpi import MpiRuntime
from repro.stacks.scheduler import RecoveryPolicy
from repro.stacks.spark import Spark

#: Baseline input size: documents at ``scale`` = 1.  The paper uses
#: 128 GB inputs; we keep distributional fidelity at laptop scale.
BASE_DOCS = 240

WORDCOUNT_KERNEL = KernelTraits(
    code_kb=12.0,
    ilp=2.3,
    loop_fraction=0.35,
    pattern_fraction=0.10,
    data_dependent_fraction=0.55,
    taken_prob=0.05,
    loop_trip=40,
    state_zipf=0.9,  # word frequencies are Zipfian, so are table hits
)

GREP_KERNEL = KernelTraits(
    code_kb=10.0,
    ilp=2.5,
    loop_fraction=0.40,
    pattern_fraction=0.12,
    data_dependent_fraction=0.48,
    taken_prob=0.02,
    loop_trip=48,
    state_zipf=0.5,
)

SORT_KERNEL = KernelTraits(
    code_kb=12.0,
    ilp=1.9,
    loop_fraction=0.38,
    pattern_fraction=0.12,
    data_dependent_fraction=0.50,
    taken_prob=0.10,
    loop_trip=24,
    state_zipf=0.45,
)


def wiki_documents(scale: float, seed: int = 0) -> List[str]:
    """Generated Wikipedia-like documents for a run at ``scale``."""
    n_docs = max(10, int(BASE_DOCS * scale))
    corpus = WikipediaCorpus(seed=42 + seed)
    return list(corpus.documents(n_docs))


def _meter_words(doc: str, meter: Meter, words: int) -> None:
    """Kernel cost of tokenising and hashing one document."""
    meter.ops(
        str_byte=len(doc),
        compare=words,
        hash=words,
        array_access=words,
        int_op=words,
    )


def _wordcount_state_bytes(meter: Meter, bytes_per_entry: int = 96) -> int:
    """Hash-map size: distinct words scale with input (Heaps-ish).

    JVM stacks pay ~96 bytes per boxed entry; a native open-addressing
    table (the MPI version) packs entries in ~32 bytes.
    """
    return int(bytes_per_entry * max(256, meter.records_in * 180))


# --------------------------------------------------------------------------
# WordCount
# --------------------------------------------------------------------------

def hadoop_wordcount(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """H-WordCount: the Hadoop WordCount of Table 2 (row 15)."""

    def mapper(record, emit, meter):
        words = record.split()
        _meter_words(record, meter, len(words))
        for word in words:
            emit(word, 1)

    def reducer(key, values, emit, meter):
        meter.ops(int_op=len(values), array_access=len(values))
        emit(key, sum(values))

    job = MapReduceJob(
        name="H-WordCount",
        mapper=mapper,
        reducer=reducer,
        combiner=reducer,
        kernel=WORDCOUNT_KERNEL,
        state_bytes=_wordcount_state_bytes,
        state_fraction=0.030,
        stream_fraction=0.010,
    )
    return Hadoop().run(
        job, wiki_documents(scale, seed), cluster=cluster,
        faults=faults, recovery=recovery,
    )


def spark_wordcount(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """S-WordCount: Table 2 row 5."""
    spark = Spark()
    docs = spark.parallelize(wiki_documents(scale, seed))

    def split_doc(doc):
        return [(word, 1) for word in doc.split()]

    def meter_doc(doc, meter):
        _meter_words(doc, meter, doc.count(" ") + 1)

    counts = docs.flat_map(split_doc, meter_doc).reduce_by_key(
        lambda a, b: a + b
    )
    output = counts.collect()
    return spark.finish(
        name="S-WordCount",
        output=output,
        kernel=WORDCOUNT_KERNEL,
        state_bytes=_wordcount_state_bytes(spark._meter),
        state_fraction=0.035,
        stream_fraction=0.020,
        cluster=cluster,
        faults=faults,
        recovery=recovery,
    )


def mpi_wordcount(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """M-WordCount: the thin-stack version of §4.1."""

    def program(rank, comm, data, meter):
        local: Counter = Counter()
        for doc in data:
            words = doc.split()
            _meter_words(doc, meter, len(words))
            local.update(words)

        def merge(a, b):
            merged = Counter(a)
            merged.update(b)
            return merged

        total = yield comm.allreduce(dict(local), lambda a, b: merge(a, b))
        meter.ops(hash=len(total), int_op=len(total))
        return len(total)

    runtime = MpiRuntime(n_ranks=6)
    docs = wiki_documents(scale, seed)
    per_rank = math.ceil(len(docs) / runtime.n_ranks)
    partitions = [
        docs[r * per_rank:(r + 1) * per_rank] for r in range(runtime.n_ranks)
    ]
    meter_probe = Meter()
    meter_probe.record_in(sum(len(d) for d in docs), records=len(docs))
    return runtime.run(
        name="M-WordCount",
        program=program,
        partitions=partitions,
        kernel=WORDCOUNT_KERNEL,
        state_bytes=_wordcount_state_bytes(meter_probe, bytes_per_entry=32),
        state_fraction=0.022,
        stream_fraction=0.003,
        cluster=cluster,
        faults=faults,
        recovery=recovery,
    )


# --------------------------------------------------------------------------
# Grep
# --------------------------------------------------------------------------

#: A mid-frequency vocabulary token: matches a small fraction of lines,
#: giving the Output<<Input behaviour of Table 2.
GREP_PATTERN = "zo"


def _grep_match(doc: str, pattern: str) -> bool:
    return pattern in doc


def _meter_grep(doc: str, meter: Meter) -> None:
    meter.ops(str_byte=len(doc), compare=doc.count(" ") + 1)


def hadoop_grep(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """H-Grep: Table 2 row 7 (searching plain text for matching lines)."""

    def mapper(record, emit, meter):
        _meter_grep(record, meter)
        if _grep_match(record, GREP_PATTERN):
            emit(record[:80], 1)

    job = MapReduceJob(
        name="H-Grep",
        mapper=mapper,
        reducer=None,
        kernel=GREP_KERNEL,
        state_bytes=256 * 1024,
        state_fraction=0.015,
        stream_fraction=0.012,
    )
    return Hadoop().run(
        job, wiki_documents(scale, seed), cluster=cluster,
        faults=faults, recovery=recovery,
    )


def spark_grep(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """S-Grep: Table 2 row 14."""
    spark = Spark()
    docs = spark.parallelize(wiki_documents(scale, seed))
    matches = docs.filter(
        lambda doc: _grep_match(doc, GREP_PATTERN),
        lambda doc, meter: _meter_grep(doc, meter),
    )
    output = matches.collect()
    return spark.finish(
        name="S-Grep",
        output=[doc[:80] for doc in output],
        kernel=GREP_KERNEL,
        state_bytes=256 * 1024,
        state_fraction=0.018,
        cluster=cluster,
        faults=faults,
        recovery=recovery,
    )


def mpi_grep(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """M-Grep."""

    def program(rank, comm, data, meter):
        matches = []
        for doc in data:
            _meter_grep(doc, meter)
            if _grep_match(doc, GREP_PATTERN):
                matches.append(doc[:80])
        counts = yield comm.gather(len(matches))
        meter.ops(int_op=len(counts))
        return matches

    runtime = MpiRuntime(n_ranks=6)
    docs = wiki_documents(scale, seed)
    per_rank = math.ceil(len(docs) / runtime.n_ranks)
    partitions = [
        docs[r * per_rank:(r + 1) * per_rank] for r in range(runtime.n_ranks)
    ]
    return runtime.run(
        name="M-Grep",
        program=program,
        partitions=partitions,
        kernel=GREP_KERNEL,
        state_bytes=128 * 1024,
        state_fraction=0.015,
        cluster=cluster,
        faults=faults,
        recovery=recovery,
    )


# --------------------------------------------------------------------------
# Sort
# --------------------------------------------------------------------------

def _sort_records(scale: float, seed: int) -> List[str]:
    """Fixed-length keyed records to sort (one line per record)."""
    corpus = WikipediaCorpus(seed=77 + seed)
    n = max(200, int(4000 * scale))
    words = corpus.words(n)
    return [f"{word}-{i:08d}" for i, word in enumerate(words)]


def hadoop_sort(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """Hadoop Sort (one of the six MPI-comparison algorithms)."""

    def mapper(record, emit, meter):
        meter.ops(str_byte=len(record), array_access=1)
        emit(record, 1)

    def reducer(key, values, emit, meter):
        meter.ops(array_access=len(values))
        for _ in values:
            emit(key, 1)

    records = _sort_records(scale, seed)
    total_bytes = sum(len(r) for r in records)
    job = MapReduceJob(
        name="H-Sort",
        mapper=mapper,
        reducer=reducer,
        kernel=SORT_KERNEL,
        state_bytes=max(4 * 1024 * 1024, total_bytes),
        state_fraction=0.012,
        stream_fraction=0.030,
    )
    return Hadoop().run(
        job, records, cluster=cluster, faults=faults, recovery=recovery
    )


def spark_sort(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """S-Sort: Table 2 row 17."""
    spark = Spark()
    records = _sort_records(scale, seed)
    rdd = spark.parallelize(records)
    output = rdd.sort_by(lambda r: r).collect()
    total_bytes = sum(len(r) for r in records)
    return spark.finish(
        name="S-Sort",
        output=output,
        kernel=SORT_KERNEL,
        state_bytes=max(8 * 1024 * 1024, total_bytes),
        state_fraction=0.014,
        output_bytes=total_bytes,
        cluster=cluster,
        faults=faults,
        recovery=recovery,
    )


def mpi_sort(
    scale: float = 1.0,
    cluster: Optional[Cluster] = None,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> WorkloadResult:
    """M-Sort: a classic sample sort over the BSP collectives."""

    def program(rank, comm, data, meter):
        n = len(data)
        if n > 1:
            cost = n * math.log2(n)
            meter.ops(compare=cost, array_access=cost)
        local = sorted(data)
        # Regular sampling → gather → broadcast splitters.
        stride = max(1, n // comm.size)
        samples = local[::stride][: comm.size]
        all_samples = yield comm.gather(samples)
        flat = sorted(s for group in all_samples for s in group)
        meter.ops(compare=len(flat), array_access=len(flat))
        splitters = flat[comm.size - 1::comm.size][: comm.size - 1]
        buckets: List[List[str]] = [[] for _ in range(comm.size)]
        for record in local:
            destination = 0
            for splitter in splitters:
                meter.ops(compare=1)
                if record > splitter:
                    destination += 1
                else:
                    break
            buckets[destination].append(record)
        received = yield comm.alltoall(buckets)
        merged = sorted(r for bucket in received for r in bucket)
        m = len(merged)
        if m > 1:
            cost = m * math.log2(m)
            meter.ops(compare=cost, array_access=cost)
        return merged

    runtime = MpiRuntime(n_ranks=6)
    records = _sort_records(scale, seed)
    per_rank = math.ceil(len(records) / runtime.n_ranks)
    partitions = [
        records[r * per_rank:(r + 1) * per_rank]
        for r in range(runtime.n_ranks)
    ]
    total_bytes = sum(len(r) for r in records)
    return runtime.run(
        name="M-Sort",
        program=program,
        partitions=partitions,
        kernel=SORT_KERNEL,
        state_bytes=max(2 * 1024 * 1024, total_bytes),
        state_fraction=0.010,
        cluster=cluster,
        faults=faults,
        recovery=recovery,
    )
