"""The workload catalog.

Three views of BigDataBench 3.0 as the paper uses it:

- :data:`REPRESENTATIVE_WORKLOADS` — the 17 representatives of Table 2,
  with their application category, dataset, expected system behaviour
  and the number of workloads each represents;
- :data:`MPI_WORKLOADS` — the six MPI re-implementations added in §4.1
  for the software-stack study (not part of the 77);
- :data:`ALL_WORKLOADS` — the full 77-workload population that the WCRT
  reduction clusters down to 17.  It contains every distinct
  operation × engine implementation built in this package plus
  configuration variants (different scales, seeds, selectivities and
  request mixes), mirroring how BigDataBench's 77 arise from a smaller
  set of operations multiplied by implementations and configurations.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List

from repro.workloads import extra, kernels, ml, relational, service, tpcds_queries
from repro.workloads.base import (
    ApplicationCategory,
    SystemBehavior,
    WorkloadDefinition,
)

_DA = ApplicationCategory.DATA_ANALYSIS
_SV = ApplicationCategory.SERVICE
_IA = ApplicationCategory.INTERACTIVE_ANALYSIS
_CPU = SystemBehavior.CPU_INTENSIVE
_IO = SystemBehavior.IO_INTENSIVE
_HY = SystemBehavior.HYBRID


def _variant(base: Callable, name: str, **overrides) -> Callable:
    """A configuration variant of a base workload runner.

    The wrapped runner renames the result and its profile so every
    catalog entry is distinguishable in the metric space.
    """

    @functools.wraps(base)
    def runner(scale: float = 1.0, cluster=None, seed: int = 0):
        kwargs = dict(overrides)
        scale_factor = kwargs.pop("scale_factor", 1.0)
        seed_offset = kwargs.pop("seed_offset", 0)
        result = base(
            scale=scale * scale_factor,
            cluster=cluster,
            seed=seed + seed_offset,
            **kwargs,
        )
        result.name = name
        result.profile.name = name
        return result

    return runner


def _define(
    workload_id: str,
    description: str,
    stack: str,
    dataset: str,
    category: ApplicationCategory,
    behavior: SystemBehavior,
    runner: Callable,
    representative: bool = False,
    represents: int = None,
) -> WorkloadDefinition:
    return WorkloadDefinition(
        workload_id=workload_id,
        description=description,
        stack=stack,
        dataset=dataset,
        category=category,
        expected_system_behavior=behavior,
        runner=runner,
        representative=representative,
        represents=represents,
    )


#: The 17 representatives, in Table 2 order.
REPRESENTATIVE_WORKLOADS: List[WorkloadDefinition] = [
    _define("H-Read", "HBase random reads of ProfSearch resumes",
            "HBase", "profsearch", _SV, _IO, service.hbase_read,
            representative=True, represents=10),
    _define("H-Difference", "Hive set difference of order snapshots",
            "Hive", "ecommerce", _IA, _IO, relational.hive_difference,
            representative=True, represents=9),
    _define("I-SelectQuery", "Impala filter over transaction items",
            "Impala", "ecommerce", _IA, _IO, relational.impala_select_query,
            representative=True, represents=9),
    _define("H-TPC-DS-query3", "Hive TPC-DS Q3 (brand revenue by year)",
            "Hive", "tpcds_web", _IA, _HY, tpcds_queries.hive_tpcds_q3,
            representative=True, represents=9),
    _define("S-WordCount", "Spark word counting over Wikipedia",
            "Spark", "wikipedia", _DA, _IO, kernels.spark_wordcount,
            representative=True, represents=8),
    _define("I-OrderBy", "Impala sort of transaction items",
            "Impala", "ecommerce", _IA, _HY, relational.impala_orderby,
            representative=True, represents=7),
    _define("H-Grep", "Hadoop regular-expression search over Wikipedia",
            "Hadoop", "wikipedia", _DA, _CPU, kernels.hadoop_grep,
            representative=True, represents=7),
    _define("S-TPC-DS-query10", "Shark TPC-DS Q10 (customer demographics)",
            "Shark", "tpcds_web", _IA, _HY, tpcds_queries.shark_tpcds_q10,
            representative=True, represents=4),
    _define("S-Project", "Shark projection of transaction items",
            "Shark", "ecommerce", _IA, _IO, relational.shark_project,
            representative=True, represents=4),
    _define("S-OrderBy", "Shark sort of transaction items",
            "Shark", "ecommerce", _IA, _IO, relational.shark_orderby,
            representative=True, represents=3),
    _define("S-Kmeans", "Spark k-means over Facebook features",
            "Spark", "facebook_graph", _DA, _CPU, ml.spark_kmeans,
            representative=True, represents=1),
    _define("S-TPC-DS-query8", "Shark TPC-DS Q8 (net paid by brand)",
            "Shark", "tpcds_web", _IA, _HY, tpcds_queries.shark_tpcds_q8,
            representative=True, represents=1),
    _define("S-PageRank", "Spark PageRank over the Google web graph",
            "Spark", "google_graph", _DA, _CPU, ml.spark_pagerank,
            representative=True, represents=1),
    _define("S-Grep", "Spark text search over Wikipedia",
            "Spark", "wikipedia", _DA, _IO, kernels.spark_grep,
            representative=True, represents=1),
    _define("H-WordCount", "Hadoop word counting over Wikipedia",
            "Hadoop", "wikipedia", _DA, _CPU, kernels.hadoop_wordcount,
            representative=True, represents=1),
    _define("H-NaiveBayes", "Hadoop naive Bayes over Amazon reviews",
            "Hadoop", "amazon", _DA, _CPU, ml.hadoop_bayes,
            representative=True, represents=1),
    _define("S-Sort", "Spark sort of keyed records",
            "Spark", "wikipedia", _DA, _HY, kernels.spark_sort,
            representative=True, represents=1),
]

#: The six MPI re-implementations of §4.1 (software-stack study).
MPI_WORKLOADS: List[WorkloadDefinition] = [
    _define("M-Bayes", "MPI naive Bayes", "MPI", "amazon", _DA, _CPU, ml.mpi_bayes),
    _define("M-Kmeans", "MPI k-means", "MPI", "facebook_graph", _DA, _CPU, ml.mpi_kmeans),
    _define("M-PageRank", "MPI PageRank", "MPI", "google_graph", _DA, _CPU, ml.mpi_pagerank),
    _define("M-Grep", "MPI text search", "MPI", "wikipedia", _DA, _CPU, kernels.mpi_grep),
    _define("M-WordCount", "MPI word counting", "MPI", "wikipedia", _DA, _CPU, kernels.mpi_wordcount),
    _define("M-Sort", "MPI sample sort", "MPI", "wikipedia", _DA, _HY, kernels.mpi_sort),
]

# ---------------------------------------------------------------------------
# The remaining distinct implementations (operations × engines).
# ---------------------------------------------------------------------------

from repro.stacks.sql import HiveEngine, ImpalaEngine, Query, SharkEngine


def _basic_sql(engine_cls, name, build_query, state_fraction=0.03):
    def runner(scale: float = 1.0, cluster=None, seed: int = 0):
        tables = relational.ecommerce_tables(scale, seed)
        return engine_cls().execute(
            name, build_query(), tables,
            kernel=relational.SQL_KERNEL,
            state_fraction=state_fraction, cluster=cluster,
        )

    return runner


def _select_query():
    return Query("items").filter(lambda row: row["goods_amount"] > 60.0)


def _project_query():
    return Query("items").project(("order_id", "goods_id", "goods_amount"))


def _orderby_query():
    return Query("items").order_by("goods_amount")


def _difference_query():
    return Query("orders").difference("old_orders", "order_id")


_OTHER_DISTINCT: List[WorkloadDefinition] = [
    # Cloud OLTP / service-side operations.
    _define("H-Write", "HBase random writes", "HBase", "profsearch", _SV, _IO, extra.hbase_write),
    _define("H-Scan", "HBase range scans", "HBase", "profsearch", _SV, _IO, extra.hbase_scan),
    # Hadoop data analysis.
    _define("H-Sort", "Hadoop sort", "Hadoop", "wikipedia", _DA, _HY, kernels.hadoop_sort),
    _define("H-Kmeans", "Hadoop k-means", "Hadoop", "facebook_graph", _DA, _CPU, ml.hadoop_kmeans),
    _define("H-PageRank", "Hadoop PageRank", "Hadoop", "google_graph", _DA, _CPU, extra.hadoop_pagerank),
    _define("H-BFS", "Hadoop breadth-first search", "Hadoop", "google_graph", _DA, _CPU, extra.hadoop_bfs),
    _define("H-Index", "Hadoop inverted index", "Hadoop", "wikipedia", _DA, _CPU, extra.hadoop_index),
    # Spark data analysis.
    _define("S-BFS", "Spark breadth-first search", "Spark", "google_graph", _DA, _CPU, extra.spark_bfs),
    _define("S-CC", "Spark connected components", "Spark", "facebook_graph", _DA, _CPU, extra.spark_connected_components),
    _define("S-Index", "Spark inverted index", "Spark", "wikipedia", _DA, _IO, extra.spark_index),
    # Aggregation and join primitives per engine.
    _define("H-Aggregation", "Hive aggregation", "Hive", "ecommerce", _IA, _HY, extra.hive_aggregation),
    _define("S-Aggregation", "Shark aggregation", "Shark", "ecommerce", _IA, _HY, extra.shark_aggregation),
    _define("I-Aggregation", "Impala aggregation", "Impala", "ecommerce", _IA, _HY, extra.impala_aggregation),
    _define("H-JoinQuery", "Hive join", "Hive", "ecommerce", _IA, _HY, extra.hive_join),
    _define("S-JoinQuery", "Shark join", "Shark", "ecommerce", _IA, _HY, extra.shark_join),
    _define("I-JoinQuery", "Impala join", "Impala", "ecommerce", _IA, _HY, extra.impala_join),
    # Remaining basic operators per engine.
    _define("H-SelectQuery", "Hive filter", "Hive", "ecommerce", _IA, _IO,
            _basic_sql(HiveEngine, "H-SelectQuery", _select_query)),
    _define("H-Project", "Hive projection", "Hive", "ecommerce", _IA, _IO,
            _basic_sql(HiveEngine, "H-Project", _project_query)),
    _define("H-OrderBy", "Hive sort", "Hive", "ecommerce", _IA, _IO,
            _basic_sql(HiveEngine, "H-OrderBy", _orderby_query)),
    _define("I-Project", "Impala projection", "Impala", "ecommerce", _IA, _IO,
            _basic_sql(ImpalaEngine, "I-Project", _project_query)),
    _define("I-Difference", "Impala set difference", "Impala", "ecommerce", _IA, _IO,
            _basic_sql(ImpalaEngine, "I-Difference", _difference_query)),
    _define("S-SelectQuery", "Shark filter", "Shark", "ecommerce", _IA, _IO,
            _basic_sql(SharkEngine, "S-SelectQuery", _select_query)),
    _define("S-Difference", "Shark set difference", "Shark", "ecommerce", _IA, _IO,
            _basic_sql(SharkEngine, "S-Difference", _difference_query)),
    # TPC-DS queries on the sibling engines.
    _define("H-TPC-DS-query8", "Hive TPC-DS Q8", "Hive", "tpcds_web", _IA, _HY,
            _variant(tpcds_queries.shark_tpcds_q8, "H-TPC-DS-query8")),
    _define("H-TPC-DS-query10", "Hive TPC-DS Q10", "Hive", "tpcds_web", _IA, _HY,
            _variant(tpcds_queries.shark_tpcds_q10, "H-TPC-DS-query10", seed_offset=3)),
    _define("S-TPC-DS-query3", "Shark TPC-DS Q3", "Shark", "tpcds_web", _IA, _HY,
            _variant(tpcds_queries.hive_tpcds_q3, "S-TPC-DS-query3", seed_offset=3)),
]

# Replace the two cross-engine TPC-DS shims with true engine lowering:
# Q8/Q10 on Hive and Q3 on Shark execute the same plans through the
# matching engine.


def _hive_q8(scale=1.0, cluster=None, seed=0):
    tables = tpcds_queries.tpcds_tables(scale, seed)
    query = (
        Query("web_sales")
        .filter(lambda row: row["ws_sales_price"] > 50.0)
        .join("item", "ws_item_sk", "i_item_sk")
        .group_by(("i_brand",), {"net": ("sum", "ws_net_paid")})
        .order_by("net", descending=True)
        .limit(50)
    )
    return HiveEngine().execute(
        "H-TPC-DS-query8", query, tables,
        kernel=tpcds_queries.TPCDS_KERNEL, cluster=cluster,
    )


def _hive_q10(scale=1.0, cluster=None, seed=0):
    tables = tpcds_queries.tpcds_tables(scale, seed)
    query = (
        Query("web_sales")
        .join("customer", "ws_bill_customer_sk", "c_customer_sk")
        .join("customer_demographics", "c_current_cdemo_sk", "cd_demo_sk")
        .filter(lambda row: row["cd_education_status"] == "college")
        .group_by(("cd_gender",), {"cnt": ("count", "ws_order_number")})
    )
    return HiveEngine().execute(
        "H-TPC-DS-query10", query, tables,
        kernel=tpcds_queries.TPCDS_KERNEL, cluster=cluster,
    )


def _shark_q3(scale=1.0, cluster=None, seed=0):
    tables = tpcds_queries.tpcds_tables(scale, seed)
    query = (
        Query("web_sales")
        .join("date_dim", "ws_sold_date_sk", "d_date_sk")
        .join("item", "ws_item_sk", "i_item_sk")
        .filter(lambda row: row["i_manufact_id"] < 20 and row["d_moy"] == 11)
        .group_by(("d_year", "i_brand_id"), {"sum_agg": ("sum", "ws_ext_sales_price")})
        .order_by("sum_agg", descending=True)
        .limit(100)
    )
    return SharkEngine().execute(
        "S-TPC-DS-query3", query, tables,
        kernel=tpcds_queries.TPCDS_KERNEL, cluster=cluster,
    )


_OTHER_DISTINCT[-3] = _define(
    "H-TPC-DS-query8", "Hive TPC-DS Q8", "Hive", "tpcds_web", _IA, _HY, _hive_q8
)
_OTHER_DISTINCT[-2] = _define(
    "H-TPC-DS-query10", "Hive TPC-DS Q10", "Hive", "tpcds_web", _IA, _HY, _hive_q10
)
_OTHER_DISTINCT[-1] = _define(
    "S-TPC-DS-query3", "Shark TPC-DS Q3", "Shark", "tpcds_web", _IA, _HY, _shark_q3
)

# ---------------------------------------------------------------------------
# Configuration variants: different request mixes, selectivities, scales
# and data seeds, as in BigDataBench's configuration matrix.
# ---------------------------------------------------------------------------

_VARIANTS: List[WorkloadDefinition] = [
    # Service cluster (towards H-Read's "represents 10").
    _define("H-Read-hot", "HBase reads, hotter key mix", "HBase", "profsearch",
            _SV, _IO, _variant(service.hbase_read, "H-Read-hot", seed_offset=1)),
    _define("H-Read-uniform", "HBase reads, flatter key mix", "HBase", "profsearch",
            _SV, _IO, _variant(service.hbase_read, "H-Read-uniform", seed_offset=2)),
    _define("H-Read-large", "HBase reads, larger table", "HBase", "profsearch",
            _SV, _IO, _variant(service.hbase_read, "H-Read-large", scale_factor=1.5)),
    _define("H-Read-small", "HBase reads, smaller table", "HBase", "profsearch",
            _SV, _IO, _variant(service.hbase_read, "H-Read-small", scale_factor=0.6)),
    _define("H-Write-burst", "HBase writes, bursty", "HBase", "profsearch",
            _SV, _IO, _variant(extra.hbase_write, "H-Write-burst", seed_offset=1)),
    _define("H-Write-large", "HBase writes, larger rows", "HBase", "profsearch",
            _SV, _IO, _variant(extra.hbase_write, "H-Write-large", scale_factor=1.4)),
    _define("H-Scan-long", "HBase scans, longer ranges", "HBase", "profsearch",
            _SV, _IO, _variant(extra.hbase_scan, "H-Scan-long", scale_factor=1.3)),
    # Difference cluster (9).
    _define("H-Difference-large", "Hive difference, larger snapshot", "Hive",
            "ecommerce", _IA, _IO,
            _variant(relational.hive_difference, "H-Difference-large", scale_factor=1.5)),
    _define("H-Difference-small", "Hive difference, smaller snapshot", "Hive",
            "ecommerce", _IA, _IO,
            _variant(relational.hive_difference, "H-Difference-small", scale_factor=0.6)),
    _define("S-Difference-large", "Shark difference, larger snapshot", "Shark",
            "ecommerce", _IA, _IO,
            _variant(_basic_sql(SharkEngine, "S-Difference-large", _difference_query),
                     "S-Difference-large", scale_factor=1.4)),
    _define("I-Difference-large", "Impala difference, larger snapshot", "Impala",
            "ecommerce", _IA, _IO,
            _variant(_basic_sql(ImpalaEngine, "I-Difference-large", _difference_query),
                     "I-Difference-large", scale_factor=1.4)),
    _define("H-Difference-v2", "Hive difference, other seed", "Hive",
            "ecommerce", _IA, _IO,
            _variant(relational.hive_difference, "H-Difference-v2", seed_offset=5)),
    # Select cluster (9).
    _define("I-SelectQuery-narrow", "Impala filter, high selectivity", "Impala",
            "ecommerce", _IA, _IO,
            _variant(relational.impala_select_query, "I-SelectQuery-narrow", seed_offset=1)),
    _define("I-SelectQuery-wide", "Impala filter, low selectivity", "Impala",
            "ecommerce", _IA, _IO,
            _variant(relational.impala_select_query, "I-SelectQuery-wide", scale_factor=1.4)),
    _define("H-SelectQuery-large", "Hive filter at scale", "Hive", "ecommerce",
            _IA, _IO,
            _variant(_basic_sql(HiveEngine, "H-SelectQuery-large", _select_query),
                     "H-SelectQuery-large", scale_factor=1.5)),
    _define("S-SelectQuery-large", "Shark filter at scale", "Shark", "ecommerce",
            _IA, _IO,
            _variant(_basic_sql(SharkEngine, "S-SelectQuery-large", _select_query),
                     "S-SelectQuery-large", scale_factor=1.5)),
    _define("I-SelectQuery-v2", "Impala filter, other seed", "Impala", "ecommerce",
            _IA, _IO,
            _variant(relational.impala_select_query, "I-SelectQuery-v2", seed_offset=7)),
    _define("I-Project-large", "Impala projection at scale", "Impala", "ecommerce",
            _IA, _IO,
            _variant(_basic_sql(ImpalaEngine, "I-Project-large", _project_query),
                     "I-Project-large", scale_factor=1.4)),
    # Hive TPC-DS cluster (9).
    _define("H-TPC-DS-query3-large", "Hive Q3 at scale", "Hive", "tpcds_web",
            _IA, _HY,
            _variant(tpcds_queries.hive_tpcds_q3, "H-TPC-DS-query3-large", scale_factor=1.6)),
    _define("H-TPC-DS-query8-large", "Hive Q8 at scale", "Hive", "tpcds_web",
            _IA, _HY, _variant(_hive_q8, "H-TPC-DS-query8-large", scale_factor=1.5)),
    _define("H-TPC-DS-query10-large", "Hive Q10 at scale", "Hive", "tpcds_web",
            _IA, _HY, _variant(_hive_q10, "H-TPC-DS-query10-large", scale_factor=1.5)),
    # Spark WordCount / index cluster (8).
    _define("S-WordCount-v2", "Spark word count, other seed", "Spark", "wikipedia",
            _DA, _IO, _variant(kernels.spark_wordcount, "S-WordCount-v2", seed_offset=9)),
    _define("S-WordCount-large", "Spark word count at scale", "Spark", "wikipedia",
            _DA, _IO, _variant(kernels.spark_wordcount, "S-WordCount-large", scale_factor=1.5)),
    _define("S-WordCount-small", "Spark word count, small input", "Spark", "wikipedia",
            _DA, _IO, _variant(kernels.spark_wordcount, "S-WordCount-small", scale_factor=0.6)),
    _define("S-Index-large", "Spark inverted index at scale", "Spark", "wikipedia",
            _DA, _IO, _variant(extra.spark_index, "S-Index-large", scale_factor=1.4)),
    # Impala order-by cluster (7).
    _define("I-OrderBy-large", "Impala sort at scale", "Impala", "ecommerce",
            _IA, _HY, _variant(relational.impala_orderby, "I-OrderBy-large", scale_factor=1.5)),
    _define("I-Aggregation-large", "Impala aggregation at scale", "Impala",
            "ecommerce", _IA, _HY,
            _variant(extra.impala_aggregation, "I-Aggregation-large", scale_factor=1.4)),
    # Hadoop CPU-analysis cluster (7).
    _define("H-Grep-v2", "Hadoop grep, other pattern mix", "Hadoop", "wikipedia",
            _DA, _CPU, _variant(kernels.hadoop_grep, "H-Grep-v2", seed_offset=11)),
    _define("H-Grep-large", "Hadoop grep at scale", "Hadoop", "wikipedia",
            _DA, _CPU, _variant(kernels.hadoop_grep, "H-Grep-large", scale_factor=1.5)),
    # Shark TPC-DS Q10 cluster (4).
    _define("S-TPC-DS-query10-large", "Shark Q10 at scale", "Shark", "tpcds_web",
            _IA, _HY,
            _variant(tpcds_queries.shark_tpcds_q10, "S-TPC-DS-query10-large", scale_factor=1.5)),
    _define("S-Aggregation-large", "Shark aggregation at scale", "Shark",
            "ecommerce", _IA, _HY,
            _variant(extra.shark_aggregation, "S-Aggregation-large", scale_factor=1.4)),
    # Shark project cluster (4).
    _define("S-Project-large", "Shark projection at scale", "Shark", "ecommerce",
            _IA, _IO, _variant(relational.shark_project, "S-Project-large", scale_factor=1.5)),
    _define("S-Project-v2", "Shark projection, other seed", "Shark", "ecommerce",
            _IA, _IO, _variant(relational.shark_project, "S-Project-v2", seed_offset=13)),
    # Shark order-by cluster (3).
    _define("S-OrderBy-large", "Shark sort at scale", "Shark", "ecommerce",
            _IA, _IO, _variant(relational.shark_orderby, "S-OrderBy-large", scale_factor=1.5)),
]

#: The full 77-workload population used for the WCRT reduction.
ALL_WORKLOADS: List[WorkloadDefinition] = (
    REPRESENTATIVE_WORKLOADS + _OTHER_DISTINCT + _VARIANTS
)

_BY_ID: Dict[str, WorkloadDefinition] = {
    definition.workload_id: definition
    for definition in ALL_WORKLOADS + MPI_WORKLOADS
}
if len(_BY_ID) != len(ALL_WORKLOADS) + len(MPI_WORKLOADS):
    from repro.errors import SimulationError

    raise SimulationError(
        "duplicate workload ids in the registry",
        defined=len(ALL_WORKLOADS) + len(MPI_WORKLOADS),
        distinct=len(_BY_ID),
    )


def workload(workload_id: str) -> WorkloadDefinition:
    """Look up any catalog entry (the 77 or the MPI six) by id."""
    try:
        return _BY_ID[workload_id]
    except KeyError:
        from repro.errors import UnknownWorkloadError

        raise UnknownWorkloadError(
            f"unknown workload {workload_id!r}; known ids include "
            f"{sorted(_BY_ID)[:8]}... (see `repro list`)"
        ) from None
