"""The interactive-analysis workloads: basic relational operators.

Table 2 rows 2, 3, 6, 9 and 10: Hive set difference, Impala select
(filter) and order-by, Shark project and order-by — each one of the
five basic relational-algebra operators over the e-commerce transaction
tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.datagen.table import EcommerceTransactions
from repro.stacks.base import KernelTraits, WorkloadResult
from repro.stacks.sql import HiveEngine, ImpalaEngine, Query, SharkEngine

#: Rows in the ORDER table at scale 1 (ITEM rows follow ~6.3x).
BASE_ORDERS = 1500

SQL_KERNEL = KernelTraits(
    code_kb=12.0,
    ilp=2.3,
    loop_fraction=0.38,
    pattern_fraction=0.10,
    data_dependent_fraction=0.52,
    taken_prob=0.05,
    loop_trip=20,
    state_zipf=0.85,
)

SORT_SQL_KERNEL = KernelTraits(
    code_kb=12.0,
    ilp=1.9,
    loop_fraction=0.38,
    pattern_fraction=0.12,
    data_dependent_fraction=0.50,
    taken_prob=0.10,
    loop_trip=20,
    state_zipf=0.70,
)


def ecommerce_tables(scale: float = 1.0, seed: int = 0) -> Dict[str, List[dict]]:
    """The two e-commerce tables as row dicts (Table 1, dataset 5)."""
    generator = EcommerceTransactions(seed=17 + seed)
    n_orders = max(100, int(BASE_ORDERS * scale))
    orders = [
        {
            "order_id": row.key,
            "buyer_id": row.fields[0],
            "create_date": row.fields[1],
            "total": row.fields[2],
        }
        for row in generator.orders(n_orders)
    ]
    items = [
        {
            "item_id": row.key,
            "order_id": row.fields[0],
            "goods_id": row.fields[1],
            "goods_number": row.fields[2],
            "goods_price": row.fields[3],
            "goods_amount": row.fields[4],
        }
        for row in generator.items(n_orders)
    ]
    # A second order table for the set-difference workload: orders from a
    # prior snapshot (overlapping id range).
    old_orders = [dict(row, order_id=row["order_id"]) for row in orders[: n_orders // 2]]
    return {"orders": orders, "items": items, "old_orders": old_orders}


def hive_difference(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """H-Difference: Hive set difference (Table 2 row 2)."""
    tables = ecommerce_tables(scale, seed)
    query = Query("orders").difference("old_orders", "order_id")
    return HiveEngine().execute(
        "H-Difference", query, tables, kernel=SQL_KERNEL,
        state_fraction=0.04, cluster=cluster,
    )


def impala_select_query(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """I-SelectQuery: Impala filter (Table 2 row 3)."""
    tables = ecommerce_tables(scale, seed)
    query = (
        Query("items")
        .filter(lambda row: row["goods_amount"] > 60.0)
        .project(("item_id", "goods_id", "goods_amount"))
    )
    return ImpalaEngine().execute(
        "I-SelectQuery", query, tables, kernel=SQL_KERNEL,
        state_fraction=0.02, cluster=cluster,
    )


def impala_orderby(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """I-OrderBy: Impala sort (Table 2 row 6)."""
    tables = ecommerce_tables(scale, seed)
    query = Query("items").order_by("goods_amount", descending=True)
    return ImpalaEngine().execute(
        "I-OrderBy", query, tables, kernel=SORT_SQL_KERNEL,
        state_fraction=0.03, cluster=cluster,
    )


def shark_project(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-Project: Shark projection (Table 2 row 9)."""
    tables = ecommerce_tables(scale, seed)
    query = Query("items").project(("order_id", "goods_id", "goods_amount"))
    return SharkEngine().execute(
        "S-Project", query, tables,
        kernel=KernelTraits(
            code_kb=10.0, ilp=2.9, loop_fraction=0.45,
            pattern_fraction=0.10, data_dependent_fraction=0.45,
            taken_prob=0.03, loop_trip=24, state_zipf=0.5,
        ),
        state_fraction=0.02, cluster=cluster,
    )


def shark_orderby(
    scale: float = 1.0, cluster: Optional[Cluster] = None, seed: int = 0
) -> WorkloadResult:
    """S-OrderBy: Shark sort (Table 2 row 10)."""
    tables = ecommerce_tables(scale, seed)
    query = Query("items").order_by("goods_amount")
    return SharkEngine().execute(
        "S-OrderBy", query, tables, kernel=SORT_SQL_KERNEL,
        state_fraction=0.035, cluster=cluster,
    )
