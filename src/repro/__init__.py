"""repro — reproduction of "Characterization and Architectural
Implications of Big Data Workloads" (Wang, Zhan, Jia, Han; ISPASS 2016).

Top-level convenience re-exports; the subpackages hold the substance:

- :mod:`repro.core` — WCRT (the paper's contribution)
- :mod:`repro.workloads` — the BigDataBench workload catalog
- :mod:`repro.stacks` — Hadoop/Spark/MPI/SQL/HBase engines
- :mod:`repro.uarch` — the simulated PMU and MARSSx86-style sweeps
- :mod:`repro.cluster` — the discrete-event testbed
- :mod:`repro.datagen` — the BDGS-style data generators
- :mod:`repro.comparison` — SPEC/PARSEC/HPCC/CloudSuite/TPC-C
- :mod:`repro.experiments` — one module per paper table/figure
"""

__version__ = "1.0.0"

from repro.core import Wcrt
from repro.uarch import ATOM_D510, XEON_E5645, characterize
from repro.workloads import (
    ALL_WORKLOADS,
    MPI_WORKLOADS,
    REPRESENTATIVE_WORKLOADS,
    workload,
)

__all__ = [
    "__version__",
    "Wcrt",
    "ATOM_D510",
    "XEON_E5645",
    "characterize",
    "ALL_WORKLOADS",
    "MPI_WORKLOADS",
    "REPRESENTATIVE_WORKLOADS",
    "workload",
]
