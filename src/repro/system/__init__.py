"""System-behaviour measurement and classification (§3.2.1, §3.2.2)."""

from repro.system.classify import (
    SystemCharacterization,
    characterize_system,
)
from repro.workloads.base import (
    DataBehavior,
    DataRatio,
    SystemBehavior,
    classify_system_behavior,
)

__all__ = [
    "SystemCharacterization",
    "characterize_system",
    "DataBehavior",
    "DataRatio",
    "SystemBehavior",
    "classify_system_behavior",
]
