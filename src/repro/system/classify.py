"""Run workloads on the simulated cluster and classify their behaviour.

This is the §3.2 pipeline: execute a workload with the discrete-event
cluster attached, read off CPU utilisation / I/O-wait / weighted disk
I/O time / bandwidths, apply the paper's classification rules, and
derive the data-behaviour buckets from the metered volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster, SystemMetrics
from repro.workloads.base import (
    DataBehavior,
    SystemBehavior,
    WorkloadDefinition,
    classify_system_behavior,
)


@dataclass
class SystemCharacterization:
    """The complete §3.2 characterization of one workload run."""

    workload_id: str
    metrics: SystemMetrics
    system_behavior: SystemBehavior
    data_behavior: DataBehavior
    expected_system_behavior: SystemBehavior

    @property
    def matches_expected(self) -> bool:
        """Whether the measured class equals Table 2's column."""
        return self.system_behavior is self.expected_system_behavior


def characterize_system(
    definition: WorkloadDefinition,
    scale: float = 1.0,
    n_nodes: int = 5,
    seed: int = 0,
) -> SystemCharacterization:
    """Execute ``definition`` on a fresh cluster and classify it."""
    cluster = Cluster(n_nodes=n_nodes)
    result = definition.runner(scale=scale, cluster=cluster, seed=seed)
    metrics = result.system
    if metrics is None:
        # Workloads without cluster scheduling still classify from a
        # synthetic single-wave execution of their meter.
        metrics = SystemMetrics(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    behavior = classify_system_behavior(
        metrics.cpu_utilization,
        metrics.io_wait_ratio,
        metrics.weighted_io_time_ratio,
    )
    return SystemCharacterization(
        workload_id=definition.workload_id,
        metrics=metrics,
        system_behavior=behavior,
        data_behavior=DataBehavior.from_meter(result.meter),
        expected_system_behavior=definition.expected_system_behavior,
    )
