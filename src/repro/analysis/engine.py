"""The lint engine: file walking, suppression, rule dispatch.

One :class:`ModuleContext` per file carries the parsed tree, the
import/scope model, a parent map (for "is this call wrapped in
``sorted(...)``" questions) and the per-line suppression table parsed
from ``# repro: allow[DET001]`` / ``# repro: allow[DET001,DET004]``
comments.  A suppression comment matches findings on its own line or on
the line directly below it (so it can sit above a long statement).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.rules import ALL_RULES, Rule
from repro.analysis.scopes import ModuleModel, scoped_walk
from repro.errors import LintError

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")


def parse_suppressions(source_lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map line number -> rule IDs suppressed on that line.

    A comment suppresses its own line and the next one, so it works
    both inline and as a standalone comment above the statement.
    """
    suppressed: Dict[int, Set[str]] = {}
    for index, line in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        rules.discard("")
        for lineno in (index, index + 1):
            suppressed.setdefault(lineno, set()).update(rules)
    return suppressed


class ModuleContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: str, module: str, source: str):
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.is_package_init = os.path.basename(path) == "__init__.py"
        self.tree = ast.parse(source, filename=path)
        self.model = ModuleModel(self.tree)
        self.suppressions = parse_suppressions(self.lines)
        self.parents: Dict[int, ast.AST] = {}
        self._scoped: Optional[List[Tuple[ast.AST, tuple]]] = None
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[id(child)] = parent

    def scoped_nodes(self) -> List[Tuple[ast.AST, tuple]]:
        """The scope-annotated walk, computed once and shared by rules."""
        if self._scoped is None:
            self._scoped = list(scoped_walk(self.tree))
        return self._scoped

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, lineno: int, rule_id: str) -> bool:
        return rule_id in self.suppressions.get(lineno, ())

    def make_finding(self, rule: Rule, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule_id=rule.rule_id,
            severity=rule.severity,
            module=self.module,
            path=self.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            line_text=self.line_text(lineno),
            fix_hint=rule.fix_hint,
        )


@dataclass
class LintReport:
    """Findings over a tree, plus what was checked and suppressed."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    rules_run: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]


def default_lint_root() -> str:
    """The installed ``repro`` package directory (the default target)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def module_name_for(path: str, root: str) -> str:
    """Dotted module name of ``path`` relative to the lint root.

    The root directory itself is named by its basename (``repro`` for
    the real tree), so rule module scoping keys stay meaningful for
    fixture trees too.
    """
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    parts = [os.path.basename(os.path.abspath(root))]
    rel = rel[: -len(".py")] if rel.endswith(".py") else rel
    for part in rel.split(os.sep):
        if part in (".", ""):
            continue
        parts.append(part)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def lint_file(
    path: str,
    module: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one file; returns (findings, suppressed_count)."""
    chosen = list(rules) if rules is not None else ALL_RULES
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}", path=path)
    try:
        ctx = ModuleContext(path, module, source)
    except SyntaxError as error:
        return [
            Finding(
                rule_id="SYN000",
                severity=ERROR,
                module=module,
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
                message=f"file does not parse: {error.msg}",
                line_text=(error.text or "").rstrip("\n"),
                fix_hint="fix the syntax error; nothing else was checked",
            )
        ], 0
    findings: List[Finding] = []
    suppressed = 0
    for rule in chosen:
        if not rule.applies_to(module):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.line, finding.rule_id):
                suppressed += 1
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings, suppressed


def iter_python_files(root: str) -> Iterator[str]:
    """Every ``.py`` file under ``root``, sorted for stable reports."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in ("__pycache__", ".git") and not d.endswith(".egg-info")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_tree(
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every Python file under ``root`` (default: the repro package)."""
    target = root if root is not None else default_lint_root()
    if not os.path.exists(target):
        raise LintError(f"lint root {target!r} does not exist", root=target)
    chosen = list(rules) if rules is not None else ALL_RULES
    base = target if os.path.isdir(target) else os.path.dirname(target)
    report = LintReport(rules_run=[rule.rule_id for rule in chosen])
    for path in iter_python_files(target):
        module = module_name_for(path, base)
        findings, suppressed = lint_file(path, module, chosen)
        report.findings.extend(findings)
        report.suppressed += suppressed
        report.files_checked += 1
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return report
