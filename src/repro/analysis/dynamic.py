"""The dynamic half of the sanitizer: a hash-seed cross-check.

Static rules catch the *patterns* that produce PYTHONHASHSEED
sensitivity; this module is the runtime oracle that would have caught
the PR-4 shuffle bug in seconds: run one small fixed-seed workload in
two subprocesses under different ``PYTHONHASHSEED`` values and require
the resulting registry records to be byte-for-byte identical after
stripping the fields the determinism contract explicitly quarantines
(``run_id``, ``created_at``, ``timings``).

The probe replays the workload on the simulated cluster (``repro run
--cluster``): the cluster replay consumes *per-task* statistics whose
partition skew is exactly what salted hashing perturbs, whereas the
profile-only path aggregates per-partition work before any metric is
derived and therefore cannot observe a partitioning change.  Hadoop
workloads make the sharpest oracle — their reduce waves inherit each
partition's actual byte counts — so ``H-WordCount`` is the default.

Everything else — every metric, every series row — must match exactly,
because the simulator's contract is bit-reproducibility, not
approximate agreement.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LintError

#: Default hash seeds: distinct, nonzero (0 disables salting entirely).
DEFAULT_HASH_SEEDS = (1, 731)

#: Record fields the determinism contract quarantines (may differ).
VOLATILE_FIELDS = ("run_id", "created_at", "timings")


def canonical_record_bytes(record: Dict[str, object]) -> bytes:
    """A record's comparable bytes: volatile fields zeroed, keys sorted.

    ``provenance`` stays in: seed, scale, platforms and config hash must
    agree or the two runs weren't the same experiment at all.
    """
    reduced = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    return json.dumps(
        reduced, indent=2, sort_keys=True, ensure_ascii=True
    ).encode("utf-8")


def divergent_paths(
    a: Dict[str, object], b: Dict[str, object], prefix: str = ""
) -> List[str]:
    """Dotted paths at which two canonical records differ (sorted)."""
    paths: List[str] = []
    keys = sorted(set(a) | set(b))
    for key in keys:
        here = f"{prefix}.{key}" if prefix else str(key)
        if key not in a or key not in b:
            paths.append(here)
            continue
        va, vb = a[key], b[key]
        if isinstance(va, dict) and isinstance(vb, dict):
            paths.extend(divergent_paths(va, vb, here))
        elif va != vb:
            paths.append(here)
    return paths


@dataclass
class CrossCheckResult:
    """Outcome of one two-hash-seed determinism probe."""

    workload: str
    scale: float
    seed: int
    hash_seeds: Tuple[int, ...]
    identical: bool
    divergent: List[str] = field(default_factory=list)
    records: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "hash_seeds": list(self.hash_seeds),
            "identical": self.identical,
            "divergent": list(self.divergent),
        }

    def render(self) -> str:
        seeds = " vs ".join(str(s) for s in self.hash_seeds)
        head = (
            f"hash-seed cross-check: {self.workload} "
            f"(scale {self.scale:g}, seed {self.seed}) "
            f"under PYTHONHASHSEED {seeds}"
        )
        if self.identical:
            return f"{head}\nidentical: records match byte-for-byte"
        lines = [head, f"DIVERGED at {len(self.divergent)} path(s):"]
        lines.extend(f"  {path}" for path in self.divergent[:25])
        if len(self.divergent) > 25:
            lines.append(f"  ... and {len(self.divergent) - 25} more")
        lines.append(
            "a metric depends on PYTHONHASHSEED — run `repro lint` and "
            "look for DET001/DET004 findings on the paths above"
        )
        return "\n".join(lines)

    def raise_on_divergence(self) -> None:
        if not self.identical:
            from repro.errors import DynamicDivergenceError

            raise DynamicDivergenceError(
                f"registry records diverge under PYTHONHASHSEED "
                f"{self.hash_seeds[0]} vs {self.hash_seeds[1]}",
                workload=self.workload,
                paths=len(self.divergent),
            )


def _source_root() -> str:
    """The directory ``repro`` imports from, for the child PYTHONPATH."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _run_once(
    workload: str,
    scale: float,
    seed: int,
    hash_seed: int,
    runs_dir: str,
    timeout: float,
) -> Dict[str, object]:
    """Run the workload in a child with PYTHONHASHSEED pinned."""
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env["PYTHONPATH"] = _source_root() + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_RUNS_DIR", None)
    command = [
        sys.executable, "-m", "repro",
        "--scale", repr(scale),
        "--runs-dir", runs_dir,
        "run", workload, "--seed", str(seed), "--cluster", "--json",
    ]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=timeout, env=env,
        )
    except subprocess.TimeoutExpired:
        raise LintError(
            f"hash-seed probe timed out after {timeout:g}s",
            workload=workload, hash_seed=hash_seed,
        )
    if proc.returncode != 0:
        raise LintError(
            f"hash-seed probe exited {proc.returncode}: "
            f"{proc.stderr.strip() or proc.stdout.strip()}",
            workload=workload, hash_seed=hash_seed,
        )
    names = sorted(
        name for name in os.listdir(runs_dir) if name.endswith(".json")
    )
    if len(names) != 1:
        raise LintError(
            f"expected exactly one record in {runs_dir}, found {names}",
            workload=workload, hash_seed=hash_seed,
        )
    with open(os.path.join(runs_dir, names[0]), "r", encoding="utf-8") as fh:
        return json.load(fh)


def hashseed_crosscheck(
    workload: str = "H-WordCount",
    scale: float = 0.2,
    seed: int = 0,
    hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
    timeout: float = 600.0,
    work_dir: Optional[str] = None,
) -> CrossCheckResult:
    """Run ``workload`` under each hash seed and diff the records."""
    seeds = tuple(hash_seeds)
    if len(seeds) < 2:
        raise LintError(
            "the cross-check needs at least two hash seeds", seeds=seeds
        )
    records: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(
        prefix="repro-lint-dynamic-", dir=work_dir
    ) as scratch:
        for index, hash_seed in enumerate(seeds):
            runs_dir = os.path.join(scratch, f"hs{index}")
            os.makedirs(runs_dir, exist_ok=True)
            records.append(
                _run_once(workload, scale, seed, hash_seed, runs_dir, timeout)
            )
    blobs = [canonical_record_bytes(record) for record in records]
    identical = all(blob == blobs[0] for blob in blobs[1:])
    divergent: List[str] = []
    if not identical:
        first = json.loads(blobs[0].decode("utf-8"))
        for blob in blobs[1:]:
            other = json.loads(blob.decode("utf-8"))
            divergent.extend(divergent_paths(first, other))
        divergent = sorted(set(divergent))
    return CrossCheckResult(
        workload=workload,
        scale=scale,
        seed=seed,
        hash_seeds=seeds,
        identical=identical,
        divergent=divergent,
        records=records,
    )
