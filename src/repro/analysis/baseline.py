"""Baseline handling: grandfather deliberate findings, gate new ones.

The committed baseline (``tools/lint_baseline.json``) records findings
we reviewed and chose to keep, keyed by ``(rule, module, stripped line
text)`` with a multiplicity — never by line number, so unrelated edits
that shift lines don't invalidate it.  ``repro lint`` then fails only
when the tree contains a finding (or an extra copy of one) that the
baseline doesn't cover.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.errors import LintBaselineError

BASELINE_VERSION = 1

#: Repo-relative location of the committed baseline.
BASELINE_RELPATH = os.path.join("tools", "lint_baseline.json")


def default_baseline_path() -> Optional[str]:
    """Find the committed baseline from the CWD or the checkout.

    Tries ``tools/lint_baseline.json`` relative to the working
    directory first (the common case: running from the repo root), then
    relative to the installed package's checkout.  Returns ``None``
    when neither exists — every finding is then "new".
    """
    if os.path.isfile(BASELINE_RELPATH):
        return BASELINE_RELPATH
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    checkout = os.path.dirname(os.path.dirname(package_dir))
    candidate = os.path.join(checkout, BASELINE_RELPATH)
    if os.path.isfile(candidate):
        return candidate
    return None


def baseline_counts(findings: Sequence[Finding]) -> Counter:
    """Multiset of finding keys, the baseline's comparison unit."""
    return Counter(finding.key() for finding in findings)


def load_baseline(path: str) -> Counter:
    """Read a baseline file into a key-multiset.

    Raises :class:`LintBaselineError` (a usage error: exit 2) when the
    file is missing, unreadable or malformed — a silently empty
    baseline would make CI fail on every grandfathered finding.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise LintBaselineError(f"cannot read baseline {path}: {error}")
    except json.JSONDecodeError as error:
        raise LintBaselineError(f"baseline {path} is not valid JSON: {error}")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise LintBaselineError(
            f"unsupported baseline version {version!r} in {path} "
            f"(this build reads {BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in data.get("findings", []):
        try:
            key = (entry["rule"], entry["module"], entry["line_text"])
            counts[key] += int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as error:
            raise LintBaselineError(
                f"malformed baseline entry in {path}: {entry!r} ({error})"
            )
    return counts


def save_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Write the current findings as the new baseline; returns count."""
    counts = baseline_counts(findings)
    entries = [
        {
            "rule": rule,
            "module": module,
            "line_text": line_text,
            "count": count,
        }
        for (rule, module, line_text), count in sorted(counts.items())
    ]
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Findings reviewed and deliberately kept; regenerate with "
            "`repro lint --update-baseline`.  Matched by (rule, module, "
            "line text), so line-number shifts don't invalidate entries."
        ),
        "findings": entries,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return sum(counts.values())


def new_findings(
    findings: Sequence[Finding], baseline: Counter
) -> List[Finding]:
    """Findings not covered by the baseline multiset.

    When the tree has more copies of a key than the baseline allows,
    the *later* occurrences (by file order) are the new ones.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        key = finding.key()
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def stale_entries(
    findings: Sequence[Finding], baseline: Counter
) -> List[Tuple[str, str, str]]:
    """Baseline keys the tree no longer produces (candidates to drop)."""
    current = baseline_counts(findings)
    stale: List[Tuple[str, str, str]] = []
    for key, count in sorted(baseline.items()):
        excess = count - current.get(key, 0)
        if excess > 0:
            stale.extend([key] * excess)
    return stale
