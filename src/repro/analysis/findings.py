"""Finding and rule-documentation records shared by the lint pass.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` deliberately excludes the line *number*: the
baseline matches findings by (rule, module, stripped source text) so
unrelated edits that shift lines don't invalidate a grandfathered
finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Finding severities.  ``error`` findings are determinism hazards that
#: can move a metric; ``warning`` findings are hygiene (typed errors,
#: dead imports, module state) that make hazards easier to introduce.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    module: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""
    fix_hint: str = ""

    def key(self) -> tuple:
        """Baseline identity: stable across pure line-number shifts."""
        return (self.rule_id, self.module, self.line_text.strip())

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text.strip(),
            "fix_hint": self.fix_hint,
        }

    def render(self) -> str:
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
        if self.fix_hint:
            text += f"\n    fix: {self.fix_hint}"
        if self.line_text.strip():
            text += f"\n    > {self.line_text.strip()}"
        return text


@dataclass(frozen=True)
class RuleDoc:
    """Human documentation for one rule, shown by ``repro lint --rules``."""

    rule_id: str
    severity: str
    title: str
    rationale: str
    fix_hint: str
    exempt_modules: tuple = field(default=())
    only_modules: tuple = field(default=())

    def render(self) -> str:
        lines = [f"{self.rule_id} [{self.severity}] {self.title}"]
        lines.append(f"    why: {self.rationale}")
        lines.append(f"    fix: {self.fix_hint}")
        if self.exempt_modules:
            lines.append(
                "    exempt modules: " + ", ".join(self.exempt_modules)
            )
        if self.only_modules:
            lines.append(
                "    applies only to: " + ", ".join(self.only_modules)
            )
        lines.append(
            f"    suppress one line with: # repro: allow[{self.rule_id}]"
        )
        return "\n".join(lines)
