"""Static determinism/purity analysis for the simulator's own source.

The metrics pipeline promises bit-reproducibility: anchors, ``repro
diff``'s regression gate and the parallel sweep's merge validation all
assume that a fixed (seed, scale, platform) cell produces byte-identical
records in any process.  Both of the worst bugs so far were violations
of exactly that promise, found late and at runtime:

- the PYTHONHASHSEED-salted builtin ``hash()`` in shuffle partitioning
  (fixed in the run-registry PR by :func:`repro.stacks.base.stable_hash`);
- the primary/speculative double-commit race (fixed in the chaos PR).

``repro.analysis`` moves that bug class to the source level: an AST
lint pass (stdlib :mod:`ast`, no dependencies) over ``src/repro`` with
a small catalogue of determinism rules (:mod:`repro.analysis.rules`),
a per-line suppression syntax (``# repro: allow[DET001]``), a committed
baseline that grandfathers deliberate findings
(:mod:`repro.analysis.baseline`), and a dynamic cross-check that runs
one fixed-seed workload under two ``PYTHONHASHSEED`` values and diffs
the registry records byte-for-byte (:mod:`repro.analysis.dynamic`).

Surfaced as ``repro lint`` (and ``repro lint --dynamic``) plus a CI
gate that fails on any finding not in the baseline.
"""

from repro.analysis.baseline import (
    baseline_counts,
    default_baseline_path,
    load_baseline,
    new_findings,
    save_baseline,
)
from repro.analysis.dynamic import (
    CrossCheckResult,
    canonical_record_bytes,
    hashseed_crosscheck,
)
from repro.analysis.engine import (
    LintReport,
    default_lint_root,
    lint_file,
    lint_tree,
)
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, rule_catalog

__all__ = [
    "ALL_RULES",
    "ERROR",
    "WARNING",
    "CrossCheckResult",
    "Finding",
    "LintReport",
    "baseline_counts",
    "canonical_record_bytes",
    "default_baseline_path",
    "default_lint_root",
    "hashseed_crosscheck",
    "lint_file",
    "lint_tree",
    "load_baseline",
    "new_findings",
    "render_json",
    "render_text",
    "rule_catalog",
    "save_baseline",
]
