"""The determinism/purity rule catalogue.

Every rule has an ID, a severity, a rationale and a fix hint; the two
motivating case studies are real bugs this repo shipped and later fixed:

- **DET001** is exactly the shuffle-partitioning bug: builtin ``hash()``
  is salted per-process for str/bytes (PYTHONHASHSEED), so partition
  sizes — and every downstream scheduler/IO metric — differed between
  otherwise identical runs until ``stable_hash`` replaced it.
- **ERR001** exists because the double-commit race was debuggable only
  once typed invariant errors replaced anonymous ``RuntimeError``s.

Rules are flow-insensitive AST checks built on
:class:`repro.analysis.scopes.ModuleModel`; they prefer a rare false
positive (suppressible with ``# repro: allow[ID]`` or the committed
baseline) over a missed hazard, because the downstream consumer is a
bit-reproducibility guarantee.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import ERROR, WARNING, Finding, RuleDoc

#: ``random`` module-level functions that draw from the process-global,
#: implicitly seeded RNG.  Using them makes determinism depend on import
#: order and every other caller of the global stream.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

#: Wall-clock reads (reading the clock *now*, not formatting a value).
_WALL_CLOCK_FNS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``time`` functions that read the clock only when called with no args.
_WALL_CLOCK_IF_NO_ARGS = frozenset({
    "time.gmtime", "time.localtime", "time.ctime", "time.asctime",
})

#: Filesystem enumerations whose order the OS does not define.
_FS_LISTING_FNS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Sinks for which set iteration order is provably irrelevant.
_ORDER_INSENSITIVE_SINKS = frozenset({
    "len", "any", "all", "min", "max", "set", "frozenset", "sorted",
    "isdisjoint", "issubset", "issuperset",
})

#: Methods that mutate a list/dict/set in place (PUR001 write detection).
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})


class Rule:
    """One lint rule.  Subclasses implement :meth:`check`."""

    rule_id: str = ""
    severity: str = ERROR
    title: str = ""
    rationale: str = ""
    fix_hint: str = ""
    #: Module-prefix strings this rule never fires in (quarantine).
    exempt_modules: Tuple[str, ...] = ()
    #: If non-empty, the rule fires *only* in modules with these prefixes.
    only_modules: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        dotted = module + "."
        for prefix in self.exempt_modules:
            if dotted.startswith(prefix) or module == prefix.rstrip("."):
                return False
        if self.only_modules:
            return any(
                dotted.startswith(prefix) or module == prefix.rstrip(".")
                for prefix in self.only_modules
            )
        return True

    def doc(self) -> RuleDoc:
        return RuleDoc(
            rule_id=self.rule_id,
            severity=self.severity,
            title=self.title,
            rationale=self.rationale,
            fix_hint=self.fix_hint,
            exempt_modules=self.exempt_modules,
            only_modules=self.only_modules,
        )

    def check(self, ctx) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx, node: ast.AST, message: str) -> Finding:
        return ctx.make_finding(self, node, message)


def _enclosing_function_names(scopes: Tuple[ast.AST, ...]) -> Set[str]:
    return {
        scope.name
        for scope in scopes
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class BuiltinHashRule(Rule):
    """DET001 — builtin ``hash()`` is PYTHONHASHSEED-salted for str/bytes."""

    rule_id = "DET001"
    severity = ERROR
    title = "builtin hash() in simulation code"
    rationale = (
        "hash() is salted per-process for str/bytes, so any partition, "
        "bucket or sampling decision built on it differs between runs "
        "(the PR-4 shuffle-partitioning bug)."
    )
    fix_hint = (
        "use repro.stacks.base.stable_hash (crc32 of repr) or hashlib "
        "for content addressing"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node, scopes in ctx.scoped_nodes():
            if not isinstance(node, ast.Call):
                continue
            if ctx.model.resolve(node.func, scopes) != "builtins.hash":
                continue
            # stable_hash itself is the sanctioned wrapper.
            if "stable_hash" in _enclosing_function_names(scopes):
                continue
            # hash() of a numeric literal is unsalted and harmless.
            if (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, (int, float))
                and not isinstance(node.args[0].value, bool)
            ):
                continue
            yield self.finding(
                ctx, node,
                "builtin hash() depends on PYTHONHASHSEED for str/bytes",
            )


class UnseededRandomRule(Rule):
    """DET002 — the global ``random`` stream, or an unseeded ``Random()``."""

    rule_id = "DET002"
    severity = ERROR
    title = "unseeded / process-global randomness"
    rationale = (
        "random.<fn> draws from the process-global stream (seeded from "
        "the OS), and random.Random()/default_rng() without a seed is "
        "OS entropy: the run is unreproducible either way."
    )
    fix_hint = (
        "construct random.Random(seed) / numpy default_rng(seed) from "
        "the run's seed and pass it down"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node, scopes in ctx.scoped_nodes():
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.model.resolve(node.func, scopes)
            if origin is None:
                continue
            if origin == "random.Random" or origin == "random.SystemRandom":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"{origin.split('.')[-1]}() constructed without a "
                        f"seed draws OS entropy",
                    )
                continue
            if (
                origin.startswith("random.")
                and origin.split(".", 1)[1] in _GLOBAL_RANDOM_FNS
            ):
                yield self.finding(
                    ctx, node,
                    f"{origin}() uses the process-global random stream",
                )
                continue
            if origin == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "default_rng() without a seed draws OS entropy",
                    )
                continue
            if origin.startswith("numpy.random.") and origin.split(".")[-1] in (
                "rand", "randn", "randint", "random", "choice", "shuffle",
                "permutation", "seed", "uniform", "normal",
            ):
                yield self.finding(
                    ctx, node,
                    f"{origin}() uses numpy's process-global random state",
                )


class WallClockRule(Rule):
    """DET003 — wall-clock reads outside the quarantined timing modules."""

    rule_id = "DET003"
    severity = ERROR
    title = "wall-clock read in simulation code"
    rationale = (
        "wall time is hardware noise; the registry quarantines it in "
        "the timings field precisely so metrics never depend on it.  A "
        "clock read anywhere else can leak into a metric or an ordering."
    )
    fix_hint = (
        "use the simulated clock (Simulation.now), or move the "
        "measurement into the quarantined profiler/telemetry modules"
    )
    exempt_modules = (
        "repro.obs.profiler",
        "repro.obs.metrics",
        "repro.obs.hostprof",
        "repro.obs.stream",
        "repro.obs.perf",
        "repro.exec.supervisor",
        "repro.exec.pool",
        "repro.exec.tracing",
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node, scopes in ctx.scoped_nodes():
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.model.resolve(node.func, scopes)
            if origin is None:
                continue
            # "from datetime import datetime" gives datetime.now etc.
            if origin.startswith("datetime.") and not origin.startswith(
                "datetime.datetime."
            ) and origin.split(".")[-1] in ("now", "utcnow", "today"):
                origin = "datetime.datetime." + origin.split(".")[-1]
            if origin in _WALL_CLOCK_FNS:
                yield self.finding(
                    ctx, node, f"{origin}() reads the wall clock"
                )
            elif origin in _WALL_CLOCK_IF_NO_ARGS and not node.args:
                yield self.finding(
                    ctx, node,
                    f"{origin}() with no argument reads the wall clock",
                )


class SetOrderRule(Rule):
    """DET004 — iteration order of a set leaking into results."""

    rule_id = "DET004"
    severity = ERROR
    title = "order-sensitive consumption of a set"
    rationale = (
        "set iteration order follows the element hashes, which are "
        "salted for strings: a list, dict or float accumulation built "
        "by iterating a set can differ between processes."
    )
    fix_hint = "iterate sorted(<the set>) instead"

    def check(self, ctx) -> Iterator[Finding]:
        set_names = self._set_valued_names(ctx)

        def name_is_set(name: str, scopes: Tuple[ast.AST, ...]) -> bool:
            # The innermost scope that *binds* the name decides: a
            # set-typed local in one function never taints another
            # function's parameter of the same name.
            for scope in reversed(scopes):
                if name in ctx.model.bindings(scope):
                    return name in set_names.get(id(scope), ())
            return False

        def is_set_valued(expr: ast.AST, scopes) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if isinstance(expr, ast.Call):
                origin = ctx.model.resolve(expr.func, scopes)
                if origin in ("builtins.set", "builtins.frozenset"):
                    return True
                if (
                    isinstance(expr.func, ast.Attribute)
                    and expr.func.attr in (
                        "union", "intersection", "difference",
                        "symmetric_difference",
                    )
                    and is_set_valued(expr.func.value, scopes)
                ):
                    return True
                return False
            if isinstance(expr, ast.BinOp) and isinstance(
                expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ):
                return is_set_valued(expr.left, scopes) or is_set_valued(
                    expr.right, scopes
                )
            if isinstance(expr, ast.Name):
                return name_is_set(expr.id, scopes)
            return False

        parents = ctx.parents
        for node, scopes in ctx.scoped_nodes():
            iterables: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "sum")
                and len(node.args) == 1
                and is_set_valued(node.args[0], scopes)
            ):
                # list()/tuple() emit the salted order; sum() of floats
                # accumulates in it.
                yield self.finding(
                    ctx, node,
                    f"{node.func.id}() over a set emits salted ordering",
                )
                continue
            else:
                continue
            for iterable in iterables:
                if not is_set_valued(iterable, scopes):
                    continue
                if self._order_insensitive_sink(node, parents, ctx):
                    continue
                yield self.finding(
                    ctx, iterable,
                    "iterating a set in an order-sensitive position",
                )

    @staticmethod
    def _order_insensitive_sink(node: ast.AST, parents, ctx) -> bool:
        """True when the iteration's result order provably can't leak."""
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            parent = parents.get(id(node))
            if isinstance(parent, ast.Call) and isinstance(
                parent.func, ast.Name
            ):
                if parent.func.id in _ORDER_INSENSITIVE_SINKS:
                    return True
        if isinstance(node, ast.SetComp):
            return True
        return False

    @staticmethod
    def _set_valued_names(ctx) -> Dict[int, Set[str]]:
        """Per-scope names assigned a set-typed value: id(scope) -> names.

        Scope-keyed so a set-typed local in one function never taints a
        same-named parameter elsewhere.  One propagation round catches
        ``a = set(); b = a | other``; flow-insensitivity within a scope
        (a name rebound to a list later still counts) is an acceptable
        bias for a lint whose findings are suppressible.
        """
        names: Dict[int, Set[str]] = {}

        def is_set_expr(value: ast.AST, local: Set[str]) -> bool:
            if isinstance(value, (ast.Set, ast.SetComp)):
                return True
            if isinstance(value, ast.Call) and isinstance(
                value.func, ast.Name
            ) and value.func.id in ("set", "frozenset"):
                return True
            if isinstance(value, ast.BinOp) and isinstance(
                value.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
            ):
                return any(
                    (isinstance(side, ast.Name) and side.id in local)
                    or is_set_expr(side, local)
                    for side in (value.left, value.right)
                )
            if isinstance(value, ast.IfExp):
                return any(
                    is_set_expr(branch, local)
                    for branch in (value.body, value.orelse)
                )
            return False

        for _round in range(2):
            for node, scopes in ctx.scoped_nodes():
                value: Optional[ast.AST] = None
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                if value is None or not scopes:
                    continue
                scope_names = names.setdefault(id(scopes[-1]), set())
                if not is_set_expr(value, scope_names):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        scope_names.add(target.id)
        return names


class ListingOrderRule(Rule):
    """DET005 — directory listings consumed in OS-defined order."""

    rule_id = "DET005"
    severity = ERROR
    title = "unsorted filesystem listing"
    rationale = (
        "os.listdir/glob/iterdir order is filesystem-dependent; any "
        "loop, merge or report built on the raw order differs between "
        "machines and even between runs on the same machine."
    )
    fix_hint = "wrap the listing in sorted(...) before consuming it"

    def check(self, ctx) -> Iterator[Finding]:
        for node, scopes in ctx.scoped_nodes():
            if not isinstance(node, ast.Call):
                continue
            hit = False
            origin = ctx.model.resolve(node.func, scopes)
            if origin in _FS_LISTING_FNS:
                hit = True
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_LISTING_METHODS
                and origin is None  # not glob.glob-style module call
                and not isinstance(node.func.value, ast.Constant)
            ):
                # Heuristic for pathlib: any .iterdir()/.glob()/.rglob().
                # String .glob() methods don't exist, so this is safe.
                hit = True
            if not hit:
                continue
            # Climb through comprehension plumbing so the common safe
            # idiom sorted(n for n in os.listdir(d) if ...) passes.
            parent = ctx.parents.get(id(node))
            while isinstance(
                parent,
                (ast.comprehension, ast.GeneratorExp, ast.ListComp),
            ):
                parent = ctx.parents.get(id(parent))
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ("sorted", "len", "set", "frozenset")
            ):
                continue
            yield self.finding(
                ctx, node,
                "filesystem listing consumed without sorted(...)",
            )


class ModuleStateRule(Rule):
    """PUR001 — module-level mutable state written from engine code."""

    rule_id = "PUR001"
    severity = WARNING
    title = "module-level mutable state written from engine code"
    rationale = (
        "a module-global written by engine/scheduler code survives "
        "across runs in one process but not across processes, so serial "
        "and parallel sweeps can see different state (and chaos replays "
        "stop being self-contained)."
    )
    fix_hint = (
        "thread the state through the object graph (Simulation, "
        "Cluster, the scheduler) instead of the module namespace"
    )
    only_modules = (
        "repro.cluster.",
        "repro.stacks.",
        "repro.uarch.",
        "repro.chaos.",
    )

    def check(self, ctx) -> Iterator[Finding]:
        mutable_globals = self._mutable_globals(ctx)
        if not mutable_globals:
            return
        for node, scopes in ctx.scoped_nodes():
            in_function = any(
                isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
                for s in scopes
            )
            if not in_function:
                continue
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name in mutable_globals:
                        yield self.finding(
                            ctx, node,
                            f"function rebinds module global {name!r}",
                        )
                continue
            target: Optional[str] = None
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATING_METHODS and isinstance(
                node.func.value, ast.Name
            ):
                target = node.func.value.id
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript) and isinstance(
                        tgt.value, ast.Name
                    ):
                        target = tgt.value.id
            if target is None or target not in mutable_globals:
                continue
            if ctx.model.shadowed(target, scopes):
                continue
            yield self.finding(
                ctx, node,
                f"function mutates module global {target!r}",
            )

    @staticmethod
    def _mutable_globals(ctx) -> Set[str]:
        names: Set[str] = set()
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = (
                stmt.value if isinstance(stmt, ast.Assign) else stmt.value
            )
            if value is None:
                continue
            mutable = isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in (
                    "list", "dict", "set", "defaultdict", "deque", "Counter",
                )
            )
            if not mutable:
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names


class TypedErrorsRule(Rule):
    """ERR001 — bare ``except:``/``raise RuntimeError`` where typed errors exist."""

    rule_id = "ERR001"
    severity = WARNING
    title = "untyped error handling"
    rationale = (
        "repro.errors gives every failure mode a type; a bare except "
        "swallows Interrupted/KeyboardInterrupt, and an anonymous "
        "RuntimeError can't be told apart from a substrate bug (the "
        "double-commit race hid behind exactly that)."
    )
    fix_hint = (
        "raise a repro.errors type (SimulationError, InvariantViolation, "
        "UsageError, ...) and except the narrowest type that applies"
    )
    exempt_modules = ("repro.errors",)

    def check(self, ctx) -> Iterator[Finding]:
        for node, scopes in ctx.scoped_nodes():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node, "bare except: catches everything"
                )
            elif isinstance(node, ast.Raise) and isinstance(
                node.exc, ast.Call
            ) and ctx.model.resolve(
                node.exc.func, scopes
            ) == "builtins.RuntimeError":
                yield self.finding(
                    ctx, node,
                    "raise RuntimeError where repro.errors has typed "
                    "alternatives",
                )


class SwallowedIORule(Rule):
    """ERR002 — durable-write modules silently discarding I/O errors."""

    rule_id = "ERR002"
    severity = ERROR
    title = "silently swallowed I/O error in a durable-write module"
    rationale = (
        "the storage tier's durability contract is 'fail loudly or "
        "count the loss': an `except OSError: pass` in a writer turns "
        "ENOSPC into silent data loss that fsck and the crash campaign "
        "can no longer prove absent.  Best-effort writers must count "
        "drops (repro.fsio.BestEffortWriter); durable writers must "
        "propagate."
    )
    fix_hint = (
        "route the write through repro.fsio (BestEffortWriter counts, "
        "write_json_atomic/JournalWriter propagate), re-raise a typed "
        "error, or annotate a sanctioned swallow with # repro: "
        "allow[ERR002] and a justification"
    )
    #: The modules that make up the durable-write storage tier.
    only_modules = (
        "repro.fsio",
        "repro.obs.registry",
        "repro.obs.stream",
        "repro.obs.fsck",
        "repro.exec.checkpoint",
        "repro.exec.tracing",
    )

    #: Caught types broad enough to hide an I/O failure.  Narrow
    #: control-flow types (FileNotFoundError, FileExistsError) are
    #: legitimate protocol, not error swallowing.
    _BROAD = frozenset({
        "builtins.OSError", "builtins.IOError",
        "builtins.EnvironmentError", "builtins.PermissionError",
        "builtins.Exception", "builtins.BaseException",
    })

    def check(self, ctx) -> Iterator[Finding]:
        for node, scopes in ctx.scoped_nodes():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._caught(ctx, node, scopes) & self._BROAD:
                continue
            if self._handles_error(node):
                continue
            yield self.finding(
                ctx, node,
                "handler discards a broad I/O error without re-raising "
                "or recording it",
            )

    @staticmethod
    def _caught(ctx, node: ast.ExceptHandler, scopes) -> Set[str]:
        """Resolved origins of every type the handler catches."""
        if node.type is None:
            return {"builtins.BaseException"}
        exprs = (
            list(node.type.elts)
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        caught: Set[str] = set()
        for expr in exprs:
            origin = ctx.model.resolve(expr, scopes)
            if origin is not None:
                caught.add(origin)
        return caught

    @staticmethod
    def _handles_error(node: ast.ExceptHandler) -> bool:
        """True when the handler routes the error somewhere visible.

        Routing means: re-raising (any ``raise``, including a typed
        wrapper), or referencing the bound exception name (it reached
        a counter, a message, or a finding).
        """
        for stmt in node.body:
            for child in ast.walk(stmt):
                if isinstance(child, ast.Raise):
                    return True
                if (
                    node.name
                    and isinstance(child, ast.Name)
                    and child.id == node.name
                ):
                    return True
        return False


class UnusedImportRule(Rule):
    """IMP001 — imports never referenced in the module."""

    rule_id = "IMP001"
    severity = WARNING
    title = "unused import"
    rationale = (
        "dead imports hide real dependencies and make the determinism "
        "rules' import table lie about what a module can reach."
    )
    fix_hint = "delete the import (or re-export it via __all__)"
    #: Package __init__ modules re-export by importing; skip them.
    exempt_modules = ()

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.module.endswith("__init__") or ctx.is_package_init:
            return
        imported: Dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imported[local] = node
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported[alias.asname or alias.name] = node
        if not imported:
            return
        used: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node.value
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                # names in __all__ / string annotations
                used.add(node.value)
        for name in sorted(imported):
            if name not in used:
                yield self.finding(
                    ctx, imported[name], f"{name!r} imported but unused"
                )


#: The rule set ``repro lint`` runs by default, in report order.
ALL_RULES: List[Rule] = [
    BuiltinHashRule(),
    UnseededRandomRule(),
    WallClockRule(),
    SetOrderRule(),
    ListingOrderRule(),
    ModuleStateRule(),
    TypedErrorsRule(),
    SwallowedIORule(),
    UnusedImportRule(),
]


def rule_catalog() -> List[RuleDoc]:
    """Documentation records for every rule, in report order."""
    return [rule.doc() for rule in ALL_RULES]
