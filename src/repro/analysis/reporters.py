"""Text and JSON renderers for lint results.

The text form is for humans at a terminal; the JSON form is what CI
consumes (``repro lint --json``) and what the acceptance tests assert
rule IDs against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.baseline import stale_entries
from repro.analysis.engine import LintReport
from repro.analysis.findings import Finding


def render_text(
    report: LintReport,
    new: Sequence[Finding],
    baseline_path: Optional[str],
    baseline=None,
) -> str:
    """Human-readable findings + summary."""
    lines: List[str] = []
    for finding in new:
        lines.append(finding.render())
    counts = report.by_rule()
    summary = (
        f"checked {report.files_checked} file(s): "
        f"{len(report.findings)} finding(s)"
    )
    if counts:
        summary += (
            " ("
            + ", ".join(f"{rule} x{n}" for rule, n in sorted(counts.items()))
            + ")"
        )
    if report.suppressed:
        summary += f", {report.suppressed} suppressed inline"
    if baseline_path:
        grandfathered = len(report.findings) - len(new)
        summary += (
            f", {grandfathered} grandfathered by {baseline_path}"
        )
    summary += f", {len(new)} new"
    lines.append(summary)
    if baseline is not None:
        stale = stale_entries(report.findings, baseline)
        if stale:
            lines.append(
                f"note: {len(stale)} baseline entr"
                f"{'y is' if len(stale) == 1 else 'ies are'} stale "
                f"(fixed in the tree); refresh with --update-baseline"
            )
    if new:
        lines.append(
            "new findings fail the build: fix them, suppress a line with "
            "`# repro: allow[RULE]`, or (deliberately) re-baseline"
        )
    return "\n".join(lines)


def render_json(
    report: LintReport,
    new: Sequence[Finding],
    baseline_path: Optional[str],
    baseline=None,
) -> dict:
    """The machine-readable result ``repro lint --json`` emits."""
    payload = {
        "files_checked": report.files_checked,
        "rules_run": list(report.rules_run),
        "findings": [finding.to_dict() for finding in report.findings],
        "new": [finding.to_dict() for finding in new],
        "counts": report.by_rule(),
        "suppressed": report.suppressed,
        "baseline": baseline_path,
        "ok": not new,
    }
    if baseline is not None:
        payload["stale_baseline_entries"] = [
            {"rule": rule, "module": module, "line_text": line_text}
            for rule, module, line_text in stale_entries(
                report.findings, baseline
            )
        ]
    return payload
