"""A lightweight scope/import model over one module's AST.

The rules need to answer "what does this call actually call?" without a
real type checker.  :class:`ModuleModel` provides just enough:

- an import table mapping local names to dotted origins, so
  ``from random import Random as R`` still resolves ``R()`` to
  ``random.Random``, and ``import numpy as np`` resolves
  ``np.random.default_rng`` to ``numpy.random.default_rng``;
- per-function bound-name sets, so a parameter or local assignment
  named ``hash`` or ``time`` shadows the builtin/module and stops the
  corresponding rule from firing;
- a scope-aware walk (:func:`scoped_walk`) yielding every node with its
  chain of enclosing function/class scopes.

This is deliberately flow-insensitive: a name bound *anywhere* in a
scope shadows for the whole scope.  That trades a little precision for
zero false resolutions, which is the right bias for a CI gate.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Node types that open a new binding scope.
SCOPE_NODES = (
    ast.Module,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)

_BUILTIN_NAMES = frozenset(dir(builtins))


def _target_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by one assignment/loop/with target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def bound_names(scope: ast.AST) -> Set[str]:
    """Names bound directly in ``scope`` (not in nested scopes).

    Covers arguments, assignments, ``for``/``with`` targets, ``import``
    bindings, exception-handler names, and nested def/class names.
    ``global``/``nonlocal`` declarations *remove* the name: writes there
    rebind an outer scope, they don't shadow it.
    """
    names: Set[str] = set()
    passthrough: Set[str] = set()

    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = scope.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, SCOPE_NODES):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    names.add(child.name)
                continue  # nested scope binds its own names
            if isinstance(child, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    names.update(_target_names(target))
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                names.update(_target_names(child.target))
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        names.update(_target_names(item.optional_vars))
            elif isinstance(child, (ast.Import, ast.ImportFrom)):
                for alias in child.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name.split(".")[0]
                    names.add(local)
            elif isinstance(child, ast.ExceptHandler) and child.name:
                names.add(child.name)
            elif isinstance(child, (ast.Global, ast.Nonlocal)):
                passthrough.update(child.names)
            elif isinstance(child, (ast.comprehension,)):
                names.update(_target_names(child.target))
            elif isinstance(child, ast.NamedExpr):
                names.update(_target_names(child.target))
            visit(child)
    visit(scope)
    return names - passthrough


def scoped_walk(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Depth-first walk yielding ``(node, enclosing_scopes)``.

    ``enclosing_scopes`` is outermost-first and includes the module;
    the node itself is included in the chain when it opens a scope.
    """
    def visit(node: ast.AST, chain: Tuple[ast.AST, ...]):
        if isinstance(node, SCOPE_NODES):
            chain = chain + (node,)
        yield node, chain
        for child in ast.iter_child_nodes(node):
            yield from visit(child, chain)

    yield from visit(tree, ())


class ModuleModel:
    """Import table + shadowing info for one parsed module."""

    def __init__(self, tree: ast.Module):
        self.tree = tree
        #: local name -> dotted origin ("random", "random.Random", ...)
        self.imports: Dict[str, str] = {}
        self._scope_bindings: Dict[int, Set[str]] = {}
        self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: origin unknowable here
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def bindings(self, scope: ast.AST) -> Set[str]:
        key = id(scope)
        if key not in self._scope_bindings:
            self._scope_bindings[key] = bound_names(scope)
        return self._scope_bindings[key]

    def shadowed(self, name: str, scopes: Tuple[ast.AST, ...]) -> bool:
        """Is ``name`` rebound by a non-module scope around this node?"""
        for scope in scopes:
            if isinstance(scope, ast.Module):
                continue
            if name in self.bindings(scope):
                return True
        return False

    def resolve(
        self, expr: ast.AST, scopes: Tuple[ast.AST, ...]
    ) -> Optional[str]:
        """Resolve a name/attribute expression to its dotted origin.

        Returns e.g. ``"builtins.hash"``, ``"random.Random"``,
        ``"numpy.random.default_rng"``,
        ``"repro.stacks.base.stable_hash"`` — or ``None`` when the
        expression is shadowed, relative, or not a plain dotted chain.
        """
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        if self.shadowed(name, scopes):
            return None
        if name in self.imports:
            base = self.imports[name]
        elif name in self.bindings(self.tree):
            return None  # a module-level def/assignment, not an import
        elif name in _BUILTIN_NAMES:
            base = f"builtins.{name}"
        else:
            return None
        return ".".join([base] + list(reversed(parts)))
